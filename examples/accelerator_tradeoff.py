"""Should you tape out that accelerator? (Sec. 6.4, cost of specialization)

A design team with a general-purpose core ready for tapeout considers
adding a SPIRAL-class accelerator block. The accelerator wins big on
cycles — but it adds unique transistors, which cost tapeout weeks and
dollars, at their worst on the most advanced node. This example weighs
speed-up against tapeout delay and cost across nodes.

Run with:  python examples/accelerator_tradeoff.py
"""

from repro import TTMModel
from repro.analysis import format_table
from repro.cost import block_tapeout_cost_usd
from repro.design.library import ACCELERATORS, ariane_with_accelerator
from repro.perf.accel import evaluate_speedup
from repro.units import format_usd

NODES = ("28nm", "14nm", "7nm", "5nm")
N_CHIPS = 1e6


def main() -> None:
    model = TTMModel.nominal()
    technology = model.foundry.technology

    print("Accelerator performance (2048-element blocks):\n")
    perf_rows = [
        [
            spec.display_name,
            f"{evaluate_speedup(spec).speedup:.2f}x",
            f"{spec.transistors / 1e6:.1f}M",
        ]
        for spec in ACCELERATORS
    ]
    print(format_table(["block", "speed-up", "transistors"], perf_rows))

    print("\nTapeout cost of adding each block, by node:\n")
    cost_rows = []
    for spec in ACCELERATORS:
        row = [spec.display_name]
        for node_name in NODES:
            node = technology[node_name]
            row.append(format_usd(block_tapeout_cost_usd(spec.transistors, node)))
        cost_rows.append(row)
    print(format_table(["block"] + list(NODES), cost_rows))

    print("\nTTM impact of integrating the streaming sorter, by node:\n")
    sorter = next(s for s in ACCELERATORS if s.key == "sorting-stream")
    ttm_rows = []
    for node_name in NODES:
        baseline = ariane_with_accelerator(
            node_name, sorter.block(), name="with-accel"
        )
        # Compare against the same chip without the accelerator block.
        from repro.design.library import ariane_manycore

        plain = ariane_manycore(node_name, cores=1)
        delta = model.total_weeks(baseline, N_CHIPS) - model.total_weeks(
            plain, N_CHIPS
        )
        ttm_rows.append([node_name, f"+{delta:.2f} wk"])
    print(format_table(["node", "TTM delta"], ttm_rows))
    print(
        "\nReading: at 5 nm the accelerator adds weeks of tapeout and"
        "\nmillions in NRE; during a crunch, a quickly taped-out manycore"
        "\nmay be the wiser trade (Sec. 6.4)."
    )


if __name__ == "__main__":
    main()
