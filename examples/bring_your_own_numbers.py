"""Bring your own numbers: custom nodes, serialized designs, linting.

The paper open-sources its framework so designers and manufacturers can
"easily plug in their values". This example shows the full workflow a
user with private data follows:

1. describe a chip in a plain dictionary (as it would live in a JSON
   config under version control) and load it;
2. extend the technology database with an in-house node (a "22nm"
   specialty process) and lint the result for unit mistakes;
3. evaluate TTM / CAS / cost on the extended database.

Run with:  python examples/bring_your_own_numbers.py
"""

from repro import CostModel, TTMModel, chip_agility_score
from repro.design import design_from_dict
from repro.market import Foundry, MarketConditions
from repro.technology import TechnologyDatabase, lint_database

# 1. A design as it would live in a config file. ---------------------------
DESIGN_CONFIG = {
    "version": 1,
    "name": "sensor-hub",
    "dies": [
        {
            "name": "hub-die",
            "process": "22nm",
            "blocks": [
                {"name": "dsp-core", "transistors": 4.0e6, "instances": 2},
                {
                    "name": "sram",
                    "transistors": 5.0e7,
                    "unique_transistors": 0,
                },
                {"name": "analog-frontend", "transistors": 1.5e6},
            ],
            "top_level_transistors": 4.0e5,
            "min_area_mm2": 1.0,
        }
    ],
}

N_CHIPS = 50e6


def build_technology() -> TechnologyDatabase:
    """The default roadmap plus an in-house 22 nm specialty node."""
    base = TechnologyDatabase.default()
    template = base["28nm"]
    custom = template.with_overrides(
        name="22nm",
        nanometers=22.0,
        index=template.index,  # sits beside 28 nm on the effort curves
        density_mtr_per_mm2=16.5,
        wafer_rate_kwpm=55.0,  # a specialty line, not a megafab
        wafer_cost_usd=2900.0,
    )
    return base.override({}, extra_nodes=[custom])


def main() -> None:
    design = design_from_dict(DESIGN_CONFIG)
    technology = build_technology()

    findings = lint_database(technology)
    print(f"lint: {len(findings)} finding(s)")
    for finding in findings:
        print(f"  {finding}")

    model = TTMModel(
        foundry=Foundry(
            technology=technology, conditions=MarketConditions.nominal()
        )
    )
    result = model.time_to_market(design, N_CHIPS)
    print(f"\n{design.name} on the in-house 22nm line, {N_CHIPS:g} units:")
    for phase, weeks in result.phase_breakdown():
        print(f"  {phase:<12} {weeks:6.1f} wk")
    print(f"  {'TOTAL':<12} {result.total_weeks:6.1f} wk")

    cas = chip_agility_score(model, design, N_CHIPS)
    print(f"  CAS {cas.normalized:.0f} (the specialty line's modest "
          "wafer rate caps agility)")

    cost = CostModel(technology=technology).chip_creation_cost(design, N_CHIPS)
    print(f"  cost ${cost.total_usd / 1e6:.0f}M "
          f"(${cost.usd_per_chip:.2f}/chip)")

    # Compare against second-sourcing on the public 28 nm node.
    public = design_from_dict(
        {**DESIGN_CONFIG, "dies": [
            {**DESIGN_CONFIG["dies"][0], "process": "28nm"}
        ]}
    )
    public_result = model.time_to_market(public, N_CHIPS)
    print(f"\nSame chip on public 28nm: {public_result.total_weeks:.1f} wk, "
          f"CAS {chip_agility_score(model, public, N_CHIPS).normalized:.0f}")


if __name__ == "__main__":
    main()
