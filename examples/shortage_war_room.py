"""Shortage war room: stress a product portfolio against market scenarios.

The 2020-2023 chip crunch forced firms to ask: which of our designs can
still ship on time if a node's capacity drops or lead times explode? This
example runs three library designs (the A11-class SoC, the Zen-2-class
chiplet, the Raven-class MCU) through the preset scenarios using the
portfolio-assessment API and prints the slip matrix a planning review
wants, plus each product's agility and worst-case exposure.

Run with:  python examples/shortage_war_room.py
"""

from repro import TTMModel
from repro.analysis import PortfolioEntry, assess_portfolio
from repro.design.library import a11, raven_multicore, zen2
from repro.market import scenarios

PORTFOLIO = {
    "A11-class SoC @28nm": PortfolioEntry(design=a11("28nm"), n_chips=10e6),
    "Zen2-class chiplet": PortfolioEntry(design=zen2(), n_chips=10e6),
    "Raven-class MCU @180nm": PortfolioEntry(
        design=raven_multicore("180nm"), n_chips=100e6
    ),
}

SCENARIOS = {
    "shortage_2021": scenarios.shortage_2021(),
    "advanced_drought": scenarios.advanced_drought(),
    "legacy_crunch": scenarios.legacy_crunch(),
    "fab_fire_28nm": scenarios.fab_fire("28nm"),
}


def main() -> None:
    model = TTMModel.nominal()
    assessment = assess_portfolio(model, PORTFOLIO, SCENARIOS)
    print("TTM slips under market scenarios (weeks vs nominal):\n")
    print(assessment.table())
    print()
    for product in assessment.products:
        worst = assessment.worst_scenario_for(product)
        print(
            f"{product}: worst case is {worst} "
            f"(+{assessment.delta(product, worst):.1f} wk)"
        )
    print(
        "\nReading: the MCU rides out advanced-node droughts untouched, the"
        "\nSoC is exposed to its single node, and the mixed-process chiplet"
        "\nis hit by disruptions on either of its nodes."
    )


if __name__ == "__main__":
    main()
