"""Second-source manufacturing strategy for a mass-produced MCU (Sec. 7).

An automotive-grade microcontroller must ship one billion units and keep
shipping through the next shortage. This example sweeps two-process
production splits of a Raven-class MCU, finds the CAS-optimal split per
node pair, and prints the decision the paper's methodology recommends.

Run with:  python examples/second_source_strategy.py
"""

from repro import CostModel, TTMModel
from repro.analysis import format_table
from repro.design.library import raven_multicore
from repro.multiprocess import headline_comparison, run_split_study

N_CHIPS = 1e9
CANDIDATES = ("180nm", "130nm", "65nm", "40nm", "28nm", "14nm")


def main() -> None:
    model = TTMModel.nominal()
    costs = CostModel.nominal()
    study = run_split_study(
        raven_multicore,
        CANDIDATES,
        model,
        costs,
        N_CHIPS,
        split_grid=tuple(s / 50 for s in range(1, 51)),
    )

    rows = []
    for (primary, secondary), pair in sorted(study.pairs.items()):
        best = pair.best
        rows.append(
            [
                primary if pair.is_single_process else f"{primary}+{secondary}",
                f"{best.split:.0%}",
                f"{best.ttm_weeks:.1f}",
                f"${best.cost_usd / 1e9:.2f}B",
                f"{best.cas_normalized:.0f}",
            ]
        )
    print(f"CAS-optimal production splits for {N_CHIPS:g} MCUs:\n")
    print(format_table(["nodes", "primary share", "TTM wk", "cost", "CAS"], rows))

    fastest = study.fastest()
    headline = headline_comparison(study)
    print(
        f"\nRecommendation: split production "
        f"{fastest.best.split:.0%}/{1 - fastest.best.split:.0%} across "
        f"{fastest.primary} and {fastest.secondary}."
    )
    print(
        f"Versus the cheapest single process this ships "
        f"{headline['ttm_gain_vs_cheapest']:.1%} sooner for "
        f"{headline['cost_increase']:+.1%} cost, and is "
        f"{headline['agility_gain']:+.1%} more agile than the fastest "
        "single process."
    )


if __name__ == "__main__":
    main()
