"""Living through a demand shock, week by week.

The static model answers "what is my TTM under these conditions?". This
example uses the dynamic foundry-queue substrate to play out a COVID-
style demand surge on the 7 nm node, derive the lead time the foundry
would quote each week, and show how the *same* chip order's total TTM
balloons depending on when in the crisis it is placed — the timing
dimension behind the paper's Sec. 6.3 queue study.

Run with:  python examples/demand_shock_timeline.py
"""

from repro import TTMModel
from repro.analysis import format_table
from repro.design.library import a11
from repro.market.dynamics import DemandScript, lead_time_trace, summarize
from repro.market.dynamics import FoundryQueue, simulate

PROCESS = "7nm"
N_CHIPS = 10e6
HORIZON_WEEKS = 52


def main() -> None:
    model = TTMModel.nominal()
    node = model.foundry.technology[PROCESS]
    rate = node.max_wafer_rate_per_week

    # Baseline demand at 92% utilization; a 30-week surge to 115%.
    script = DemandScript.steady(HORIZON_WEEKS, rate * 0.92)
    script = script.with_demand_surge(start=8, duration=30, multiplier=1.25)

    quotes = lead_time_trace(rate, int(node.fab_latency_weeks), script)
    queue = FoundryQueue(
        capacity_per_week=rate,
        fab_latency_weeks=int(node.fab_latency_weeks),
    )
    summary = summarize(simulate(queue, script))
    print(
        f"Simulated {PROCESS} line: peak quoted lead time "
        f"{summary['peak_lead_time_weeks']:.1f} weeks, "
        f"utilization {summary['utilization']:.0%}.\n"
    )

    design = a11(PROCESS)
    rows = []
    for order_week in (0, 8, 16, 24, 32, 40, 48):
        quote = quotes[order_week]
        conditions = model.foundry.conditions.with_queue(PROCESS, quote)
        quoted_model = model.with_foundry(
            model.foundry.with_conditions(conditions)
        )
        total = quoted_model.total_weeks(design, N_CHIPS)
        rows.append(
            [order_week, f"{quote:.1f}", f"{total:.1f}",
             f"{order_week + total:.1f}"]
        )
    print("Ordering 10M A11-class chips during the crisis:\n")
    print(
        format_table(
            ["order week", "quoted queue wk", "TTM wk", "delivery week"],
            rows,
        )
    )
    print(
        "\nReading: every week of hesitation before the surge costs more"
        "\nthan a week of delivery (the order also inherits the growing"
        "\nbacklog), and mid-peak orders pay the full quote on top --"
        "\nsupply-chain timing is a design input, not an afterthought."
    )


if __name__ == "__main__":
    main()
