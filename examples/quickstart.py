"""Quickstart: evaluate a chip design's time-to-market, agility and cost.

Builds a small two-die chiplet design from scratch, then asks the three
questions the framework answers:

1. How long until my chips arrive? (TTM, Eq. 1)
2. How resilient is the design to production-side disruptions? (CAS, Eq. 8)
3. What does the production run cost? (Moonwalk-derived cost model)

Run with:  python examples/quickstart.py
"""

from repro import Block, ChipDesign, CostModel, Die, TTMModel, ip_block
from repro import chip_agility_score
from repro.units import format_usd, format_weeks

N_CHIPS = 20e6


def build_design() -> ChipDesign:
    """A 4-core compute die at 7 nm plus an I/O die at 14 nm."""
    compute = Die(
        name="compute",
        process="7nm",
        blocks=(
            Block(name="cpu-core", transistors=450e6, instances=4),
            ip_block("l3-sram", 900e6),
        ),
        top_level_transistors=30e6,
    )
    io = Die(
        name="io",
        process="14nm",
        blocks=(
            Block(name="io-hub", transistors=800e6, unique_transistors=200e6),
        ),
    )
    return ChipDesign(name="demo-chiplet", dies=(compute, io))


def main() -> None:
    design = build_design()
    model = TTMModel.nominal()
    costs = CostModel.nominal()

    result = model.time_to_market(design, N_CHIPS)
    print(f"=== {design.name}: {N_CHIPS:g} final chips ===")
    for phase, weeks in result.phase_breakdown():
        print(f"  {phase:<12} {format_weeks(weeks)}")
    print(f"  {'TOTAL':<12} {format_weeks(result.total_weeks)}")
    print(f"  bottleneck process: {result.bottleneck_process}")
    print(f"  wafers ordered:     {result.total_wafers:,.0f}")

    agility = chip_agility_score(model, design, N_CHIPS)
    print(f"\nChip Agility Score: {agility.normalized:.1f} "
          f"(dominated by {agility.dominant_process})")

    bill = costs.chip_creation_cost(design, N_CHIPS)
    print(f"\nChip creation cost: {format_usd(bill.total_usd)} "
          f"({format_usd(bill.usd_per_chip)} per chip)")
    print(f"  NRE            {format_usd(bill.nre_usd)}")
    print(f"  manufacturing  {format_usd(bill.manufacturing_usd)}")

    # What if a disruption cuts 7 nm to a tenth of its capacity?
    disrupted = model.with_foundry(
        model.foundry.with_conditions(
            model.foundry.conditions.with_capacity("7nm", 0.1)
        )
    )
    delta = disrupted.total_weeks(design, N_CHIPS) - result.total_weeks
    print(f"\nIf 7 nm drops to 10% capacity, delivery slips by "
          f"{format_weeks(delta)}.")


if __name__ == "__main__":
    main()
