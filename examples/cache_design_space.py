"""Cache design-space exploration under time-to-market pressure (Sec. 6.1).

Sweeps the L1 capacities of a 16-core Ariane-class chip at 14 nm for a
100 M-unit production run, then contrasts three answers to "which caches
should I build?":

* max IPC            (classic performance-only architecture),
* max IPC per week   (the paper's supply-chain-aware metric),
* max IPC per dollar (classic cost-aware architecture),

and prints the two-objective Pareto front.

Run with:  python examples/cache_design_space.py
"""

from repro.analysis import format_table, pareto_front
from repro.experiments import fig05_ipc_tradeoffs


def main() -> None:
    result = fig05_ipc_tradeoffs.run()
    points = result.points

    best_ipc = max(points, key=lambda p: p.ipc)
    best_per_week = result.best_ipc_per_ttm
    best_per_dollar = result.best_ipc_per_cost

    rows = []
    for label, p in (
        ("max IPC", best_ipc),
        ("max IPC/week", best_per_week),
        ("max IPC/$", best_per_dollar),
    ):
        rows.append(
            [
                label,
                f"{p.icache_kb}K/{p.dcache_kb}K",
                f"{p.ipc:.3f}",
                f"{p.ttm_weeks:.1f}wk",
                f"${p.cost_usd / 1e9:.2f}B",
            ]
        )
    print("Optima under three figures of merit (100M chips @14nm):\n")
    print(format_table(["objective", "I$/D$", "IPC", "TTM", "cost"], rows))

    front = pareto_front(
        points,
        objectives=lambda p: (p.ipc, -p.ttm_weeks),
        maximize=(True, True),
    )
    front.sort(key=lambda p: p.ttm_weeks)
    print(f"\nIPC-vs-TTM Pareto front ({len(front)} of {len(points)} configs):")
    print(
        format_table(
            ["I$ KB", "D$ KB", "IPC", "TTM wk"],
            [[p.icache_kb, p.dcache_kb, p.ipc, p.ttm_weeks] for p in front],
        )
    )
    cost_loss, ttm_loss = result.cross_penalties()
    print(
        f"\nPicking the IPC/week optimum forfeits {cost_loss:.1%} of the best"
        f"\nIPC/$; picking the IPC/$ optimum forfeits {ttm_loss:.1%} of the"
        "\nbest IPC/week — in a race to market, optimize for time."
    )


if __name__ == "__main__":
    main()
