"""Performance substrate: cache/IPC models and accelerator cycle models."""

from .ipc import IPCModel, ipc_bounds
from .measured import MeasuredMPKI, measure_mpki, measured_ipc, measured_sweep

__all__ = [
    "IPCModel",
    "MeasuredMPKI",
    "ipc_bounds",
    "measure_mpki",
    "measured_ipc",
    "measured_sweep",
]
