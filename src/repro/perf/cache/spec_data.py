"""SPEC2000-shaped miss-rate curves for the cache-sizing study.

The paper sweeps instruction/data caches from 1 KB to 1 MB using SPEC
CPU2000 aggregate miss rates (Cantin & Hill [18]). This module ships an
analytic stand-in with the same structure — misses per kilo-instruction
(MPKI) falling as a power of capacity with a compulsory-miss floor:

    MPKI_I(s) = 45 * s^-0.95 + 0.45      (s in KB)
    MPKI_D(s) = 60 * s^-0.75 + 1.40

The exponents encode the classic behaviours: instruction working sets
fall off faster (loops fit quickly), data curves have a heavier tail
(heap/stream misses persist). The trace-driven simulator in
:mod:`repro.perf.cache.simulator` regenerates curves of this shape from
synthetic workloads; a test asserts the agreement.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...errors import InvalidParameterError

#: Capacities tabulated by the study (KB).
CACHE_SIZES_KB: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Instruction-side power-law parameters.
ICACHE_SCALE = 45.0
ICACHE_EXPONENT = 0.95
ICACHE_FLOOR = 0.45

#: Data-side power-law parameters.
DCACHE_SCALE = 60.0
DCACHE_EXPONENT = 0.75
DCACHE_FLOOR = 1.40


def icache_mpki(size_kb: float) -> float:
    """Instruction-cache misses per kilo-instruction at ``size_kb``."""
    _check_size(size_kb)
    return ICACHE_SCALE * size_kb ** (-ICACHE_EXPONENT) + ICACHE_FLOOR


def dcache_mpki(size_kb: float) -> float:
    """Data-cache misses per kilo-instruction at ``size_kb``."""
    _check_size(size_kb)
    return DCACHE_SCALE * size_kb ** (-DCACHE_EXPONENT) + DCACHE_FLOOR


def mpki_table() -> Dict[int, Tuple[float, float]]:
    """{size KB: (I-MPKI, D-MPKI)} over the standard sweep."""
    return {
        size: (icache_mpki(size), dcache_mpki(size)) for size in CACHE_SIZES_KB
    }


def _check_size(size_kb: float) -> None:
    if size_kb <= 0.0:
        raise InvalidParameterError(
            f"cache size must be positive, got {size_kb} KB"
        )
