"""Trace-driven set-associative cache simulator.

The cache-sizing case study (Sec. 6.1) consumes miss-rate-vs-capacity
curves. The paper takes them from SPEC CPU2000 measurements (Cantin &
Hill [18]); since that raw dataset is not redistributable, this simulator
regenerates curves of the same shape from synthetic traces with SPEC-like
locality (see :mod:`repro.perf.cache.traces`), and the shipped analytic
table in :mod:`repro.perf.cache.spec_data` is validated against it.

The model is a single-level, physically indexed, set-associative cache
with true-LRU replacement — the standard configuration of the Cantin-Hill
study. Only hit/miss accounting matters here; no data is stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ...errors import InvalidParameterError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 4

    def __post_init__(self) -> None:
        for name, value in (
            ("size_bytes", self.size_bytes),
            ("line_bytes", self.line_bytes),
            ("associativity", self.associativity),
        ):
            if not _is_power_of_two(value):
                raise InvalidParameterError(
                    f"{name} must be a positive power of two, got {value}"
                )
        if self.size_bytes < self.line_bytes * self.associativity:
            raise InvalidParameterError(
                f"cache of {self.size_bytes} B cannot hold "
                f"{self.associativity} ways of {self.line_bytes} B lines"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def size_kb(self) -> float:
        """Capacity in KB."""
        return self.size_bytes / 1024.0

    def set_index(self, address: int) -> int:
        """Set an address maps to."""
        return (address // self.line_bytes) % self.num_sets

    def tag(self, address: int) -> int:
        """Tag bits of an address."""
        return address // (self.line_bytes * self.num_sets)


@dataclass
class CacheStats:
    """Access counters."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """Number of hits."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0 for an untouched cache)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction for a run of ``instructions``."""
        if instructions <= 0:
            raise InvalidParameterError(
                f"instruction count must be positive, got {instructions}"
            )
        return 1000.0 * self.misses / instructions


@dataclass
class Cache:
    """A set-associative LRU cache; call :meth:`access` per reference."""

    config: CacheConfig
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        # One LRU-ordered list of tags per set; index 0 is most recent.
        self._sets: Dict[int, List[int]] = {}

    def access(self, address: int) -> bool:
        """Reference one address; returns True on hit.

        LRU update on hit, LRU eviction on conflict miss.
        """
        if address < 0:
            raise InvalidParameterError(f"address must be >= 0, got {address}")
        self.stats.accesses += 1
        index = self.config.set_index(address)
        tag = self.config.tag(address)
        ways = self._sets.setdefault(index, [])
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            return True
        self.stats.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.config.associativity:
            ways.pop()
        return False

    def run(self, trace: Iterable[int]) -> CacheStats:
        """Feed a whole address trace; returns the accumulated stats."""
        for address in trace:
            self.access(address)
        return self.stats

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._sets.clear()
        self.stats = CacheStats()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently cached (for invariant tests)."""
        return sum(len(ways) for ways in self._sets.values())


def simulate_miss_ratio(
    trace: Iterable[int],
    size_kb: float,
    line_bytes: int = 64,
    associativity: int = 4,
) -> float:
    """Miss ratio of one trace on one cache geometry (convenience)."""
    config = CacheConfig(
        size_bytes=int(size_kb * 1024),
        line_bytes=line_bytes,
        associativity=associativity,
    )
    cache = Cache(config)
    materialized = list(trace)
    if not materialized:
        raise InvalidParameterError("trace must contain at least one access")
    return cache.run(materialized).miss_ratio
