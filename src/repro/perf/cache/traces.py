"""Synthetic address traces with SPEC-like locality.

SPEC CPU2000's cache behaviour (Cantin & Hill [18]) is characterized by
miss ratios that fall roughly geometrically as capacity doubles (the
"square-root-of-two rule") until the working set fits. Traces with a
power-law reuse-distance profile reproduce exactly that curve shape, so
the generators here are:

* :func:`instruction_trace` — loops over basic blocks chosen from a
  Zipf-distributed set of functions (hot loops dominate, long tail of
  cold code), touching sequential lines within a block.
* :func:`data_trace` — a mixture of sequential streaming, a Zipf-hot
  heap, and a cold region, mimicking array sweeps plus hot structures.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from ...errors import InvalidParameterError

#: Bytes per generated "instruction" slot.
INSTRUCTION_BYTES = 4

#: Default Zipf skew; ~1.2 gives SPEC-like hot/cold contrast.
DEFAULT_ZIPF_EXPONENT = 1.2


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _zipf_ranks(
    rng: np.random.Generator, n_items: int, count: int, exponent: float
) -> np.ndarray:
    """``count`` draws from a bounded Zipf distribution over ranks."""
    weights = 1.0 / np.arange(1, n_items + 1, dtype=float) ** exponent
    weights /= weights.sum()
    return rng.choice(n_items, size=count, p=weights)


def instruction_trace(
    n_accesses: int,
    n_functions: int = 512,
    block_instructions: int = 24,
    function_bytes: int = 1024,
    exponent: float = DEFAULT_ZIPF_EXPONENT,
    seed: int = 1,
) -> Iterator[int]:
    """Instruction-fetch addresses: hot loops plus a cold-code tail.

    Each step picks a function by Zipf rank, then fetches a sequential
    run of ``block_instructions`` starting at a random block within it.
    """
    _validate_positive(
        n_accesses=n_accesses,
        n_functions=n_functions,
        block_instructions=block_instructions,
        function_bytes=function_bytes,
    )
    rng = _rng(seed)
    # Round the block count up; the emit loop truncates to n_accesses.
    n_blocks = max(-(-n_accesses // block_instructions), 1)
    functions = _zipf_ranks(rng, n_functions, n_blocks, exponent)
    offsets = rng.integers(
        0, max(function_bytes // INSTRUCTION_BYTES - block_instructions, 1),
        size=n_blocks,
    )
    emitted = 0
    for function, offset in zip(functions, offsets):
        base = int(function) * function_bytes + int(offset) * INSTRUCTION_BYTES
        for i in range(block_instructions):
            if emitted >= n_accesses:
                return
            yield base + i * INSTRUCTION_BYTES
            emitted += 1


def data_trace(
    n_accesses: int,
    hot_objects: int = 4096,
    object_bytes: int = 64,
    stream_fraction: float = 0.3,
    cold_fraction: float = 0.05,
    exponent: float = DEFAULT_ZIPF_EXPONENT,
    seed: int = 2,
) -> Iterator[int]:
    """Data addresses: Zipf-hot heap + streaming sweeps + cold region."""
    _validate_positive(
        n_accesses=n_accesses, hot_objects=hot_objects, object_bytes=object_bytes
    )
    if not 0.0 <= stream_fraction <= 1.0 or not 0.0 <= cold_fraction <= 1.0:
        raise InvalidParameterError("fractions must be in [0, 1]")
    if stream_fraction + cold_fraction > 1.0:
        raise InvalidParameterError(
            "stream_fraction + cold_fraction must not exceed 1"
        )
    rng = _rng(seed)
    heap_base = 1 << 28
    stream_base = 1 << 29
    cold_base = 1 << 30
    kinds = rng.random(n_accesses)
    hot_picks = _zipf_ranks(rng, hot_objects, n_accesses, exponent)
    cold_picks = rng.integers(0, 1 << 20, size=n_accesses)
    stream_cursor = 0
    for i in range(n_accesses):
        kind = kinds[i]
        if kind < stream_fraction:
            address = stream_base + stream_cursor * object_bytes
            stream_cursor += 1
        elif kind < stream_fraction + cold_fraction:
            address = cold_base + int(cold_picks[i]) * object_bytes
        else:
            address = heap_base + int(hot_picks[i]) * object_bytes
        yield address


def sequential_trace(
    n_accesses: int, stride_bytes: int = 4, base: int = 0
) -> Iterator[int]:
    """A pure streaming sweep (worst case for any finite cache)."""
    _validate_positive(n_accesses=n_accesses, stride_bytes=stride_bytes)
    for i in range(n_accesses):
        yield base + i * stride_bytes


def looping_trace(
    n_accesses: int, working_set_bytes: int, stride_bytes: int = 4
) -> Iterator[int]:
    """Repeated sweeps over a fixed working set (fits-or-thrashes)."""
    _validate_positive(
        n_accesses=n_accesses,
        working_set_bytes=working_set_bytes,
        stride_bytes=stride_bytes,
    )
    period = max(working_set_bytes // stride_bytes, 1)
    for i in range(n_accesses):
        yield (i % period) * stride_bytes


def materialize(trace: Iterator[int], limit: int) -> List[int]:
    """First ``limit`` addresses of a trace as a list (test helper)."""
    if limit <= 0:
        raise InvalidParameterError(f"limit must be positive, got {limit}")
    out: List[int] = []
    for address in trace:
        out.append(address)
        if len(out) >= limit:
            break
    return out


def _validate_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise InvalidParameterError(
                f"{name} must be positive, got {value}"
            )
