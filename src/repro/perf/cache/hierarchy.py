"""Two-level cache hierarchy simulation.

The single-level simulator backs the paper's L1 sweep; real Ariane-class
SoCs add a shared L2, and the CPI stack splits an L1 miss into "hit in
L2" and "go to memory". This module composes the level-one caches with a
shared second level:

* L1I and L1D are private; the L2 is unified and shared;
* the hierarchy is *inclusive by construction for lookups*: every L1
  miss performs an L2 access (fill on miss), so L2 contents are a
  superset of recently missed lines;
* statistics are kept per level, letting the extended IPC model charge
  ``l2_hit_cycles`` for L1 misses that hit L2 and ``memory_cycles`` for
  global misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from ...errors import InvalidParameterError
from .simulator import Cache, CacheConfig, CacheStats


@dataclass(frozen=True)
class HierarchyStats:
    """Per-level statistics of one simulation run."""

    l1i: CacheStats
    l1d: CacheStats
    l2: CacheStats
    instructions: int

    @property
    def l1_misses(self) -> int:
        """Total level-one misses (instruction + data)."""
        return self.l1i.misses + self.l1d.misses

    @property
    def l2_hit_ratio(self) -> float:
        """Fraction of L1 misses served by the L2."""
        if self.l2.accesses == 0:
            return 0.0
        return self.l2.hits / self.l2.accesses

    @property
    def memory_accesses(self) -> int:
        """References that left the chip (global misses)."""
        return self.l2.misses

    def mpki(self) -> Tuple[float, float, float]:
        """(L1I, L1D, L2->memory) misses per kilo-instruction."""
        if self.instructions <= 0:
            raise InvalidParameterError("run recorded no instructions")
        scale = 1000.0 / self.instructions
        return (
            self.l1i.misses * scale,
            self.l1d.misses * scale,
            self.l2.misses * scale,
        )


@dataclass
class CacheHierarchy:
    """Private L1I/L1D over a shared unified L2."""

    l1i: Cache
    l1d: Cache
    l2: Cache
    _instructions: int = 0

    @classmethod
    def build(
        cls,
        l1i_kb: int,
        l1d_kb: int,
        l2_kb: int,
        line_bytes: int = 64,
        l1_associativity: int = 4,
        l2_associativity: int = 8,
    ) -> "CacheHierarchy":
        """Construct a hierarchy from capacities in KB."""
        if l2_kb < max(l1i_kb, l1d_kb):
            raise InvalidParameterError(
                f"L2 ({l2_kb} KB) must be at least as large as each L1 "
                f"({l1i_kb}/{l1d_kb} KB)"
            )
        make = lambda kb, ways: Cache(  # noqa: E731
            CacheConfig(
                size_bytes=kb * 1024,
                line_bytes=line_bytes,
                associativity=ways,
            )
        )
        return cls(
            l1i=make(l1i_kb, l1_associativity),
            l1d=make(l1d_kb, l1_associativity),
            l2=make(l2_kb, l2_associativity),
        )

    def fetch(self, address: int) -> bool:
        """Instruction fetch; returns True on an L1I hit."""
        self._instructions += 1
        hit = self.l1i.access(address)
        if not hit:
            self.l2.access(address)
        return hit

    def load_store(self, address: int) -> bool:
        """Data reference; returns True on an L1D hit."""
        hit = self.l1d.access(address)
        if not hit:
            self.l2.access(address)
        return hit

    def run(
        self,
        instruction_addresses: Iterable[int],
        data_addresses: Iterable[int],
    ) -> HierarchyStats:
        """Interleave an instruction stream with a data stream.

        Data references are issued round-robin against instructions at
        the streams' natural ratio (both are consumed fully).
        """
        data_iter = iter(data_addresses)
        pending = list(data_iter)
        i_stream = list(instruction_addresses)
        if not i_stream:
            raise InvalidParameterError("instruction stream must be non-empty")
        ratio = len(pending) / len(i_stream)
        issued = 0.0
        consumed = 0
        for address in i_stream:
            self.fetch(address)
            issued += ratio
            while consumed < int(issued):
                self.load_store(pending[consumed])
                consumed += 1
        while consumed < len(pending):
            self.load_store(pending[consumed])
            consumed += 1
        return self.stats()

    def stats(self) -> HierarchyStats:
        """Current per-level statistics."""
        return HierarchyStats(
            l1i=self.l1i.stats,
            l1d=self.l1d.stats,
            l2=self.l2.stats,
            instructions=self._instructions,
        )


@dataclass(frozen=True)
class HierarchyIPCModel:
    """CPI stack with an L2 between the L1s and memory.

    CPI = base + (L1-miss, L2-hit rate) * l2_hit_cycles / 1000
               + (L2-miss rate)         * memory_cycles / 1000
    """

    base_cpi: float = 3.6
    l2_hit_cycles: float = 18.0
    memory_cycles: float = 90.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0.0:
            raise InvalidParameterError("base CPI must be positive")
        if self.l2_hit_cycles < 0.0 or self.memory_cycles < 0.0:
            raise InvalidParameterError("penalties must be >= 0")
        if self.memory_cycles < self.l2_hit_cycles:
            raise InvalidParameterError(
                "memory must cost at least as much as an L2 hit"
            )

    def ipc(self, stats: HierarchyStats) -> float:
        """IPC for a measured run."""
        l1i_mpki, l1d_mpki, memory_mpki = stats.mpki()
        l1_miss_mpki = l1i_mpki + l1d_mpki
        l2_hit_mpki = max(l1_miss_mpki - memory_mpki, 0.0)
        cpi = (
            self.base_cpi
            + l2_hit_mpki * self.l2_hit_cycles / 1000.0
            + memory_mpki * self.memory_cycles / 1000.0
        )
        return 1.0 / cpi
