"""Cache substrate: simulator, hierarchy, traces, SPEC-shaped curves."""

from .hierarchy import CacheHierarchy, HierarchyIPCModel, HierarchyStats
from .simulator import Cache, CacheConfig, CacheStats, simulate_miss_ratio
from .spec_data import (
    CACHE_SIZES_KB,
    dcache_mpki,
    icache_mpki,
    mpki_table,
)
from .traces import (
    data_trace,
    instruction_trace,
    looping_trace,
    materialize,
    sequential_trace,
)

__all__ = [
    "CACHE_SIZES_KB",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyIPCModel",
    "HierarchyStats",
    "data_trace",
    "dcache_mpki",
    "icache_mpki",
    "instruction_trace",
    "looping_trace",
    "materialize",
    "mpki_table",
    "sequential_trace",
    "simulate_miss_ratio",
]
