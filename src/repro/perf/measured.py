"""Simulator-backed IPC: derive MPKI from traces instead of the fit.

The cache study's default path uses the analytic SPEC2000-shaped curves
in :mod:`repro.perf.cache.spec_data`. This module provides the
measurement path: run the synthetic instruction/data traces through the
set-associative simulator at the requested capacities and convert the
observed miss ratios to MPKI, so the IPC model can consume *measured*
numbers. A test asserts the two paths agree on orderings — the analytic
curve is the fast stand-in, the simulator is the ground truth of this
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import InvalidParameterError
from .cache.simulator import Cache, CacheConfig
from .cache.traces import data_trace, instruction_trace
from .ipc import IPCModel

#: Data references per instruction on a load/store ISA (RISC-V class).
DATA_REFS_PER_INSTRUCTION = 0.35

#: Default trace length (instructions) for measurements.
DEFAULT_INSTRUCTIONS = 60_000


@dataclass(frozen=True)
class MeasuredMPKI:
    """Simulator-observed miss rates for one cache configuration."""

    icache_kb: int
    dcache_kb: int
    instructions: int
    icache_mpki: float
    dcache_mpki: float


def _simulate(trace: List[int], size_kb: int) -> float:
    config = CacheConfig(size_bytes=size_kb * 1024)
    cache = Cache(config)
    return cache.run(trace).miss_ratio


def measure_mpki(
    icache_kb: int,
    dcache_kb: int,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 1,
) -> MeasuredMPKI:
    """Run the synthetic workload through both caches.

    Instruction fetches are one per instruction; data references follow
    the load/store density of a RISC ISA.
    """
    if instructions <= 0:
        raise InvalidParameterError(
            f"instruction count must be positive, got {instructions}"
        )
    i_trace = list(instruction_trace(instructions, seed=seed))
    n_data = max(int(instructions * DATA_REFS_PER_INSTRUCTION), 1)
    d_trace = list(data_trace(n_data, seed=seed + 1))
    i_miss_ratio = _simulate(i_trace, icache_kb)
    d_miss_ratio = _simulate(d_trace, dcache_kb)
    return MeasuredMPKI(
        icache_kb=icache_kb,
        dcache_kb=dcache_kb,
        instructions=instructions,
        icache_mpki=1000.0 * i_miss_ratio,
        dcache_mpki=1000.0 * DATA_REFS_PER_INSTRUCTION * d_miss_ratio,
    )


def measured_ipc(
    icache_kb: int,
    dcache_kb: int,
    model: IPCModel = IPCModel(),
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 1,
) -> float:
    """IPC from simulator-observed miss rates."""
    mpki = measure_mpki(icache_kb, dcache_kb, instructions, seed)
    return model.ipc_from_mpki(mpki.icache_mpki, mpki.dcache_mpki)


def measured_sweep(
    sizes_kb: Tuple[int, ...],
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = 1,
) -> List[MeasuredMPKI]:
    """Measure the diagonal of the cache grid (I$ = D$ = size)."""
    if not sizes_kb:
        raise InvalidParameterError("need at least one cache size")
    return [
        measure_mpki(size, size, instructions, seed) for size in sizes_kb
    ]
