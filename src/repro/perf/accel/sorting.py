"""Bitonic sorting networks: functional model + cycle models (Sec. 6.4).

The paper benchmarks SPIRAL-generated fixed-point sorting networks
(Zuluaga et al. [130]) in two styles:

* **streaming** — the full O(log^2 n)-stage network is instantiated and
  pipelined; data streams through with the merge rounds overlapped. We
  model throughput as one element per cycle per merge round:
  ``cycles = n * log2(n) + depth`` with depth = the number of
  compare-exchange stages.
* **iterative** — a single compare-exchange stage is instantiated and
  reused across all ``log2(n) * (log2(n)+1) / 2`` passes:
  ``cycles = stages * n``.

:func:`bitonic_sort` and :func:`bitonic_compare_exchange_pairs` are a
real, tested implementation of the network, so the cycle models are
grounded in the exact stage structure they charge for.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ...errors import InvalidParameterError


def _check_size(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise InvalidParameterError(
            f"sorting networks need a power-of-two size >= 2, got {n}"
        )
    return int(math.log2(n))


def bitonic_stage_count(n: int) -> int:
    """Compare-exchange stages in a bitonic network of size ``n``.

    The classic log2(n) * (log2(n) + 1) / 2.
    """
    log_n = _check_size(n)
    return log_n * (log_n + 1) // 2


def bitonic_compare_exchange_pairs(n: int) -> List[List[Tuple[int, int]]]:
    """The network structure: one list of (i, j) pairs per stage.

    Pairs within a stage are disjoint (they can run in parallel), which a
    test asserts — that property is what the streaming/iterative cycle
    models rely on.
    """
    _check_size(n)
    stages: List[List[Tuple[int, int]]] = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stage: List[Tuple[int, int]] = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    # Direction of the comparison follows the bitonic
                    # merge pattern: ascending iff bit k of i is 0.
                    ascending = (i & k) == 0
                    stage.append((i, partner) if ascending else (partner, i))
            stages.append(stage)
            j //= 2
        k *= 2
    return stages


def bitonic_sort(values: Sequence[float]) -> List[float]:
    """Sort by running the actual network (functional reference)."""
    data = list(values)
    n = len(data)
    _check_size(n)
    for stage in bitonic_compare_exchange_pairs(n):
        for low, high in stage:
            if data[low] > data[high]:
                data[low], data[high] = data[high], data[low]
    return data


def streaming_sort_cycles(n: int) -> float:
    """Cycles for the streaming network to sort one ``n``-element block."""
    log_n = _check_size(n)
    return float(n * log_n + bitonic_stage_count(n))


def iterative_sort_cycles(n: int) -> float:
    """Cycles for the single-stage iterative implementation."""
    return float(bitonic_stage_count(n) * n)
