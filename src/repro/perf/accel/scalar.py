"""Scalar in-order core baseline for the accelerator study (Sec. 6.4).

The paper's baseline is Ariane running software sorting and FFT on
2048-element blocks. We model the core with per-operation cycle costs on
the algorithms' O(n log n) operation counts:

* sorting (merge sort): ``SORT_CYCLES_PER_OP`` cycles per element-compare
  step — loads, compare, branch, stores on a single-issue in-order core;
* DFT (software radix-2 FFT): ``FFT_CYCLES_PER_OP`` cycles per butterfly
  *sample* step — complex MACs on a core without an FPU fused pipeline.

The constants are calibrated so the resulting speed-ups match Table 3's
shape (streaming sorting ~16x, iterative sorting ~3x, streaming DFT
~56x, iterative DFT ~20x); see EXPERIMENTS.md for measured-vs-paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ...errors import InvalidParameterError

#: Cycles per n*log2(n) unit for in-order software merge sort.
SORT_CYCLES_PER_OP = 16.0

#: Cycles per n*log2(n) unit for in-order software FFT.
FFT_CYCLES_PER_OP = 28.0


def _check_size(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise InvalidParameterError(
            f"block size must be a power of two >= 2, got {n}"
        )
    return int(math.log2(n))


@dataclass(frozen=True)
class ScalarCoreModel:
    """Cycle model of the general-purpose baseline core."""

    sort_cycles_per_op: float = SORT_CYCLES_PER_OP
    fft_cycles_per_op: float = FFT_CYCLES_PER_OP

    def __post_init__(self) -> None:
        if self.sort_cycles_per_op <= 0.0 or self.fft_cycles_per_op <= 0.0:
            raise InvalidParameterError("per-op cycle costs must be positive")

    def sort_cycles(self, n: int) -> float:
        """Cycles to sort an ``n``-element block in software."""
        log_n = _check_size(n)
        return self.sort_cycles_per_op * n * log_n

    def fft_cycles(self, n: int) -> float:
        """Cycles to transform an ``n``-element block in software."""
        log_n = _check_size(n)
        return self.fft_cycles_per_op * n * log_n


def merge_sort(values: Sequence[float]) -> List[float]:
    """Functional reference of the software baseline (tested vs sorted())."""
    data = list(values)
    if len(data) <= 1:
        return data
    middle = len(data) // 2
    left = merge_sort(data[:middle])
    right = merge_sort(data[middle:])
    merged: List[float] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged
