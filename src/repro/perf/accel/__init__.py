"""Accelerator substrate: sorting networks, FFT, scalar baseline."""

from .fft import (
    ITERATIVE_II,
    STREAMING_PIPELINE_DEPTH,
    bit_reverse_permutation,
    butterfly_count,
    dft_direct,
    fft,
    iterative_fft_cycles,
    streaming_fft_cycles,
)
from .scalar import ScalarCoreModel, merge_sort
from .sorting import (
    bitonic_compare_exchange_pairs,
    bitonic_sort,
    bitonic_stage_count,
    iterative_sort_cycles,
    streaming_sort_cycles,
)
from .speedup import (
    SpeedupResult,
    accelerator_cycles,
    evaluate_speedup,
    scalar_cycles,
)

__all__ = [
    "ITERATIVE_II",
    "STREAMING_PIPELINE_DEPTH",
    "ScalarCoreModel",
    "SpeedupResult",
    "accelerator_cycles",
    "bit_reverse_permutation",
    "bitonic_compare_exchange_pairs",
    "bitonic_sort",
    "bitonic_stage_count",
    "butterfly_count",
    "dft_direct",
    "evaluate_speedup",
    "fft",
    "iterative_fft_cycles",
    "iterative_sort_cycles",
    "merge_sort",
    "scalar_cycles",
    "streaming_fft_cycles",
    "streaming_sort_cycles",
]
