"""Radix-2 FFT: functional model + cycle models (Sec. 6.4).

The paper's DFT accelerators are SPIRAL-generated (Milder et al. [79]);
like the sorting networks they come in streaming and iterative flavors:

* **streaming** — one butterfly column per FFT stage, fully pipelined;
  each of the log2(n) stages processes n/2 butterflies at one butterfly
  per cycle: ``cycles = (n/2) * log2(n) + depth``.
* **iterative** — a single butterfly unit reused across all stages,
  bottlenecked by its dual-ported working memory: each butterfly needs
  two reads and two writes through limited ports, giving an effective
  initiation interval of ``ITERATIVE_II`` cycles per butterfly:
  ``cycles = (n/2) * log2(n) * ITERATIVE_II``.

:func:`fft` is a real iterative Cooley-Tukey implementation (tested
against a direct DFT), so the stage/butterfly counts the cycle models
charge for are the ones actually executed.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence

from ...errors import InvalidParameterError

#: Pipeline fill of the streaming datapath (butterfly + twiddle ROM).
STREAMING_PIPELINE_DEPTH = 96

#: Effective cycles per butterfly for the memory-limited iterative unit
#: (2 reads + 2 writes through shared ports, partially overlapped).
ITERATIVE_II = 2.75


def _check_size(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise InvalidParameterError(
            f"radix-2 FFT needs a power-of-two size >= 2, got {n}"
        )
    return int(math.log2(n))


def bit_reverse_permutation(n: int) -> List[int]:
    """Input permutation of the iterative radix-2 FFT."""
    bits = _check_size(n)
    result = []
    for i in range(n):
        reversed_index = 0
        for b in range(bits):
            if i & (1 << b):
                reversed_index |= 1 << (bits - 1 - b)
        result.append(reversed_index)
    return result


def fft(values: Sequence[complex]) -> List[complex]:
    """Iterative radix-2 Cooley-Tukey FFT (functional reference)."""
    n = len(values)
    _check_size(n)
    order = bit_reverse_permutation(n)
    data = [complex(values[i]) for i in order]
    half = 1
    while half < n:
        step = cmath.exp(-1j * math.pi / half)
        for start in range(0, n, 2 * half):
            twiddle = 1.0 + 0.0j
            for offset in range(half):
                i = start + offset
                j = i + half
                product = data[j] * twiddle
                data[j] = data[i] - product
                data[i] = data[i] + product
                twiddle *= step
        half *= 2
    return data


def dft_direct(values: Sequence[complex]) -> List[complex]:
    """O(n^2) reference DFT used to validate :func:`fft` in tests."""
    n = len(values)
    if n == 0:
        raise InvalidParameterError("DFT input must be non-empty")
    out = []
    for k in range(n):
        total = 0.0 + 0.0j
        for t, value in enumerate(values):
            total += complex(value) * cmath.exp(-2j * math.pi * k * t / n)
        out.append(total)
    return out


def butterfly_count(n: int) -> int:
    """Total butterflies executed: (n/2) * log2(n)."""
    log_n = _check_size(n)
    return (n // 2) * log_n


def streaming_fft_cycles(n: int) -> float:
    """Cycles for the streaming pipeline to transform one block."""
    return float(butterfly_count(n) + STREAMING_PIPELINE_DEPTH)


def iterative_fft_cycles(n: int) -> float:
    """Cycles for the single-butterfly iterative implementation."""
    return float(butterfly_count(n)) * ITERATIVE_II
