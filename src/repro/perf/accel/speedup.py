"""Accelerator speed-up evaluation (Table 3's performance column).

Combines the scalar baseline with the accelerator cycle models. The
dispatch is keyed on the :class:`~repro.design.library.accelerators.
AcceleratorSpec`'s ``kind``/``style`` fields so the tapeout-facing specs
and the performance models stay in one-to-one correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ...design.library.accelerators import ACCELERATOR_BLOCK_SIZE, AcceleratorSpec
from ...errors import InvalidParameterError
from .fft import iterative_fft_cycles, streaming_fft_cycles
from .scalar import ScalarCoreModel
from .sorting import iterative_sort_cycles, streaming_sort_cycles

_ACCEL_CYCLES: Dict[Tuple[str, str], Callable[[int], float]] = {
    ("sorting", "stream"): streaming_sort_cycles,
    ("sorting", "iterative"): iterative_sort_cycles,
    ("dft", "stream"): streaming_fft_cycles,
    ("dft", "iterative"): iterative_fft_cycles,
}


@dataclass(frozen=True)
class SpeedupResult:
    """Cycle counts and the resulting speed-up for one accelerator."""

    accelerator: str
    block_size: int
    scalar_cycles: float
    accelerator_cycles: float

    @property
    def speedup(self) -> float:
        """cycles(scalar) / cycles(accelerator), Table 3's metric."""
        return self.scalar_cycles / self.accelerator_cycles


def accelerator_cycles(spec: AcceleratorSpec, block_size: int) -> float:
    """Cycles for ``spec`` to process one ``block_size`` block."""
    try:
        model = _ACCEL_CYCLES[(spec.kind, spec.style)]
    except KeyError:
        raise InvalidParameterError(
            f"no cycle model for accelerator kind={spec.kind!r} "
            f"style={spec.style!r}"
        ) from None
    return model(block_size)


def scalar_cycles(
    spec: AcceleratorSpec, block_size: int, core: ScalarCoreModel
) -> float:
    """Cycles for the baseline core on the same task."""
    if spec.kind == "sorting":
        return core.sort_cycles(block_size)
    if spec.kind == "dft":
        return core.fft_cycles(block_size)
    raise InvalidParameterError(f"unknown accelerator kind {spec.kind!r}")


def evaluate_speedup(
    spec: AcceleratorSpec,
    block_size: int = ACCELERATOR_BLOCK_SIZE,
    core: ScalarCoreModel = ScalarCoreModel(),
) -> SpeedupResult:
    """Speed-up of one accelerator over the scalar baseline."""
    return SpeedupResult(
        accelerator=spec.key,
        block_size=block_size,
        scalar_cycles=scalar_cycles(spec, block_size, core),
        accelerator_cycles=accelerator_cycles(spec, block_size),
    )
