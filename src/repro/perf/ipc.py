"""Analytic IPC model for the cache-sizing study (Sec. 6.1).

A classic in-order CPI decomposition:

    CPI = CPI_base + (MPKI_I + MPKI_D) * miss_penalty / 1000
    IPC = 1 / CPI

with MPKI curves from :mod:`repro.perf.cache.spec_data`. The defaults
place IPC in the paper's Fig. 4 range (~0.10 at 1 KB/1 KB up to ~0.27 at
1 MB/1 MB for an application-class in-order core like Ariane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import InvalidParameterError
from .cache.spec_data import dcache_mpki, icache_mpki


@dataclass(frozen=True)
class IPCModel:
    """CPI-stack IPC estimator for one core.

    Attributes
    ----------
    base_cpi:
        Cycles per instruction with perfect L1s (issue/execute/stall
        structure of the in-order pipeline).
    miss_penalty_cycles:
        Average penalty of one L1 miss (next-level + memory mix).
    """

    base_cpi: float = 3.6
    miss_penalty_cycles: float = 45.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0.0:
            raise InvalidParameterError(
                f"base CPI must be positive, got {self.base_cpi}"
            )
        if self.miss_penalty_cycles < 0.0:
            raise InvalidParameterError(
                f"miss penalty must be >= 0, got {self.miss_penalty_cycles}"
            )

    def cpi(self, icache_kb: float, dcache_kb: float) -> float:
        """Cycles per instruction at the given L1 capacities."""
        mpki = icache_mpki(icache_kb) + dcache_mpki(dcache_kb)
        return self.base_cpi + mpki * self.miss_penalty_cycles / 1000.0

    def ipc(self, icache_kb: float, dcache_kb: float) -> float:
        """Instructions per cycle at the given L1 capacities."""
        return 1.0 / self.cpi(icache_kb, dcache_kb)

    def ipc_from_mpki(self, mpki_i: float, mpki_d: float) -> float:
        """IPC from externally supplied MPKI values (simulator output)."""
        if mpki_i < 0.0 or mpki_d < 0.0:
            raise InvalidParameterError("MPKI values must be >= 0")
        return 1.0 / (
            self.base_cpi + (mpki_i + mpki_d) * self.miss_penalty_cycles / 1000.0
        )


def ipc_bounds(model: IPCModel) -> Tuple[float, float]:
    """(worst, best) IPC over the standard 1 KB..1 MB sweep."""
    worst = model.ipc(1, 1)
    best = model.ipc(1024, 1024)
    return worst, best
