"""Ariane-based multicore designs (cache-sizing case study, Sec. 6.1).

The paper evaluates a 16-core chip built from Ariane [129] (originally a
16 KB instruction cache and 32 KB data cache per core) while sweeping both
caches from 1 KB to 1 MB. Transistor budgets follow the standard 6T SRAM
bit cell for caches; the core-logic budget is calibrated so the reference
(16 KB, 32 KB) configuration matches Table 3's "area relative to Ariane"
column (45.62 M / 18.18x ~= 2.51 M transistors per core).
"""

from __future__ import annotations

from typing import Tuple

from ...errors import InvalidDesignError
from ..block import Block, ip_block
from ..chip import ChipDesign
from ..die import Die

#: Transistors in one SRAM bit cell (6T).
TRANSISTORS_PER_SRAM_BIT = 6

#: Ariane core logic (everything but the L1 caches), calibrated against
#: Table 3's area-relative-to-Ariane column for the original (16, 32) KB
#: configuration.
ARIANE_LOGIC_TRANSISTORS = 151_000.0

#: Original Ariane cache configuration (KB): 16 KB I$, 32 KB D$.
DEFAULT_ICACHE_KB = 16
DEFAULT_DCACHE_KB = 32

#: Shared uncore (NoC routers, L2 slices, IO) of the 16-core chip.
UNCORE_TRANSISTORS = 2_000_000.0

#: Top-level integration logic taped out after the blocks synchronize.
TOP_LEVEL_TRANSISTORS = 500_000.0

#: Cache capacities swept in Figs. 4-6.
CACHE_SWEEP_KB: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def cache_transistors(capacity_kb: float) -> float:
    """Transistors in a ``capacity_kb`` SRAM array (6T bit cells)."""
    if capacity_kb < 0.0:
        raise InvalidDesignError(
            f"cache capacity must be >= 0 KB, got {capacity_kb}"
        )
    return capacity_kb * 1024.0 * 8.0 * TRANSISTORS_PER_SRAM_BIT


def ariane_core_transistors(
    icache_kb: float = DEFAULT_ICACHE_KB,
    dcache_kb: float = DEFAULT_DCACHE_KB,
) -> float:
    """Transistors in one Ariane core with the given L1 capacities."""
    return (
        ARIANE_LOGIC_TRANSISTORS
        + cache_transistors(icache_kb)
        + cache_transistors(dcache_kb)
    )


def ariane_manycore(
    process: str,
    cores: int = 16,
    icache_kb: float = DEFAULT_ICACHE_KB,
    dcache_kb: float = DEFAULT_DCACHE_KB,
    name: str = "",
) -> ChipDesign:
    """A ``cores``-core Ariane chip on one process node.

    The core is one reusable block (tapeout effort paid once, Sec. 3.2);
    the uncore and top level are unique. Caches ride inside the core block
    but are *not* marked pre-verified: resizing a cache re-opens its
    timing closure, so cache bits count toward NUT exactly once (per the
    core block), matching the case study's "larger caches cost area, not
    extra tapeout" framing.
    """
    if cores < 1:
        raise InvalidDesignError(f"core count must be >= 1, got {cores}")
    core = Block(
        name="ariane-core",
        transistors=ariane_core_transistors(icache_kb, dcache_kb),
        instances=cores,
    )
    uncore = Block(name="uncore", transistors=UNCORE_TRANSISTORS)
    die = Die(
        name="ariane-die",
        process=process,
        blocks=(core, uncore),
        top_level_transistors=TOP_LEVEL_TRANSISTORS,
    )
    display = name or (
        f"Ariane {cores}-core ({icache_kb:g}K I$/{dcache_kb:g}K D$) @ {process}"
    )
    return ChipDesign(name=display, dies=(die,))


def ariane_manycore_salvage(
    process: str,
    cores: int = 16,
    required_cores: int = 14,
    icache_kb: float = DEFAULT_ICACHE_KB,
    dcache_kb: float = DEFAULT_DCACHE_KB,
    name: str = "",
) -> ChipDesign:
    """An Ariane manycore sold with core salvage (binning).

    Dies with up to ``cores - required_cores`` defective cores still ship
    as a cut-down SKU, raising the sellable yield above Eq. 6 — the
    binning practice the paper mentions in Sec. 2.1, made quantitative by
    :mod:`repro.technology.salvage`.
    """
    from ...technology.salvage import SalvageSpec

    base = ariane_manycore(
        process, cores=cores, icache_kb=icache_kb, dcache_kb=dcache_kb
    )
    die = base.dies[0]
    core_transistors = ariane_core_transistors(icache_kb, dcache_kb) * cores
    spec = SalvageSpec(
        n_units=cores,
        required_units=required_cores,
        unit_area_fraction=core_transistors / die.ntt,
    )
    salvaged = Die(
        name=die.name,
        process=die.process,
        blocks=die.blocks,
        top_level_transistors=die.top_level_transistors,
        salvage=spec,
    )
    display = name or (
        f"Ariane {cores}-core (sell >= {required_cores}) @ {process}"
    )
    return ChipDesign(name=display, dies=(salvaged,))


def ariane_with_accelerator(
    process: str,
    accelerator: Block,
    cores: int = 1,
    name: str = "",
) -> ChipDesign:
    """An Ariane chip with an accelerator block bolted on (Sec. 6.4)."""
    base = ariane_manycore(process, cores=cores)
    die = base.dies[0]
    extended = Die(
        name=die.name,
        process=die.process,
        blocks=die.blocks + (accelerator,),
        top_level_transistors=die.top_level_transistors,
    )
    display = name or f"Ariane + {accelerator.name} @ {process}"
    return ChipDesign(name=display, dies=(extended,))


def soft_ip_filler(name: str, transistors: float) -> Block:
    """Pre-verified filler IP (contributes area and NTT, zero NUT)."""
    return ip_block(name, transistors)
