"""Raven/PicoRV32-style microcontroller (multi-process study, Sec. 7).

The paper models a multicore design inspired by efabless' Raven
(a PicoSoC around the PicoRV32 RISC-V core [28]), previously taped out at
180 nm; "performance and chip area are akin to a low-end ARM Cortex-M IP
commonly used in automotive and cross-market microcontrollers". The
minimum die area is 1 mm^2 (pad-limited), which dominates at every modern
node — exactly why the Sec. 7 study is driven by wafer rates and
latencies rather than density.
"""

from __future__ import annotations

from ..block import Block, ip_block
from ..chip import ChipDesign
from ..die import Die

#: Node Raven originally taped out on.
RAVEN_ORIGINAL_PROCESS = "180nm"

#: Pad-ring floor from Sec. 7.
RAVEN_MIN_AREA_MM2 = 1.0

#: One PicoRV32 core plus its peripherals (per instance).
PICORV32_CORE_TRANSISTORS = 60_000.0

#: On-die memory: pre-verified SRAM + embedded-NVM macros. Cross-market
#: MCUs are memory-dominated (~1 MB of code/data storage), which is what
#: makes legacy-node production volumes non-trivial in Fig. 14.
RAVEN_SRAM_TRANSISTORS = 5.8e7

#: Shared bus fabric, IO, housekeeping.
RAVEN_UNCORE_TRANSISTORS = 200_000.0


def raven_multicore(
    process: str = RAVEN_ORIGINAL_PROCESS,
    cores: int = 16,
    name: str = "",
) -> ChipDesign:
    """A ``cores``-core Raven-inspired microcontroller at ``process``."""
    core = Block(
        name="picorv32",
        transistors=PICORV32_CORE_TRANSISTORS,
        instances=cores,
    )
    sram = ip_block("sram-macro", RAVEN_SRAM_TRANSISTORS)
    uncore = Block(name="uncore", transistors=RAVEN_UNCORE_TRANSISTORS)
    die = Die(
        name="raven-die",
        process=process,
        blocks=(core, sram, uncore),
        min_area_mm2=RAVEN_MIN_AREA_MM2,
    )
    return ChipDesign(
        name=name or f"Raven {cores}-core @ {process}", dies=(die,)
    )
