"""Generic parametric designs.

Helpers for studies that only need aggregate transistor counts — the
sensitivity analysis perturbs NTT/NUT directly, and the synthetic Chip A /
Chip B of Fig. 3 are defined purely by size and node.
"""

from __future__ import annotations

from ...errors import InvalidDesignError
from ..block import Block
from ..chip import ChipDesign
from ..die import Die


def monolithic_design(
    name: str,
    process: str,
    ntt: float,
    nut: float,
    min_area_mm2: float = 0.0,
) -> ChipDesign:
    """A single-die design with explicit NTT / NUT totals."""
    if nut > ntt:
        raise InvalidDesignError(
            f"design {name!r}: NUT ({nut:g}) cannot exceed NTT ({ntt:g})"
        )
    block = Block(name="logic", transistors=ntt, unique_transistors=nut)
    die = Die(
        name=f"{name}-die",
        process=process,
        blocks=(block,),
        min_area_mm2=min_area_mm2,
    )
    return ChipDesign(name=name, dies=(die,))


def demo_chip_a(process: str = "40nm") -> ChipDesign:
    """Fig. 3's "Chip A": a large die on a busy node.

    Many wafers per unit of production rate make its TTM steep against
    capacity loss — the *less* agile of the demonstration pair.
    """
    return monolithic_design("Chip A", process, ntt=8.0e9, nut=3.0e8)


def demo_chip_b(process: str = "7nm") -> ChipDesign:
    """Fig. 3's "Chip B": a small advanced-node die.

    Longer baseline TTM (tapeout + latency) but far fewer wafers, so its
    TTM barely moves when capacity drops — the *more* agile design.
    """
    return monolithic_design("Chip B", process, ntt=2.0e9, nut=2.0e8)
