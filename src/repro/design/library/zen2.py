"""Zen-2-like chiplet designs (mixed-process case study, Sec. 6.5).

The study uses a Zen-2-inspired chip: two compute dies (7 nm) plus one
central I/O die (GlobalFoundries "12 nm"), optionally on a 65 nm silicon
interposer, compared against single-process chiplet and monolithic
equivalents. Die data comes from the paper's Table 4 (asterisks there mark
numbers taken directly from ISSCC publications [86, 105]):

    Compute die: NTT 3.8 B, NUT 475 M, area 206 mm^2 @14nm / 74 mm^2 @7nm
    I/O die:     NTT 2.1 B, NUT 523 M, area 125 mm^2 @14nm / 38 mm^2 @7nm

Our roadmap has no 12 nm entry; the paper's 12 nm maps to our 14 nm node
(same role: the trailing FinFET node the I/O die stays on).

Interposers follow Sec. 6.5: fabricated at 65 nm by default, area 120% of
the combined chiplet area, passive with an optimistic 99.99% yield.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...errors import InvalidDesignError
from ..block import Block
from ..chip import ChipDesign
from ..die import Die

#: The node standing in for the paper's "12 nm" I/O process.
IO_PROCESS = "14nm"

#: The compute dies' native node.
COMPUTE_PROCESS = "7nm"

#: Default interposer node (Sec. 6.5, citing [90]).
INTERPOSER_PROCESS = "65nm"

#: Interposer area relative to the chiplet area it carries.
INTERPOSER_AREA_RATIO = 1.2

#: Passive-interposer yield assumed by the paper.
INTERPOSER_YIELD = 0.9999

COMPUTE_NTT = 3.8e9
COMPUTE_NUT = 4.75e8
IO_NTT = 2.1e9
IO_NUT = 5.23e8

#: Published die areas (mm^2) per node, from Table 4.
COMPUTE_AREA_MM2: Dict[str, float] = {"14nm": 206.0, "7nm": 74.0}
IO_AREA_MM2: Dict[str, float] = {"14nm": 125.0, "7nm": 38.0}


def compute_die(process: str = COMPUTE_PROCESS, count: int = 2) -> Die:
    """A Zen-2-like compute chiplet (one unique core block, 8 instances)."""
    core = Block(
        name="zen2-core-complex",
        transistors=COMPUTE_NTT / 8.0,
        instances=8,
        unique_transistors=COMPUTE_NUT,
    )
    return Die(
        name="compute",
        process=process,
        blocks=(core,),
        count=count,
        area_mm2=COMPUTE_AREA_MM2.get(process),
    )


def io_die(process: str = IO_PROCESS) -> Die:
    """The central I/O die (~25% of its transistors unique, per [115])."""
    logic = Block(
        name="io-complex",
        transistors=IO_NTT,
        unique_transistors=IO_NUT,
    )
    return Die(
        name="io",
        process=process,
        blocks=(logic,),
        area_mm2=IO_AREA_MM2.get(process),
    )


def interposer_die(
    carried_area_mm2: float, process: str = INTERPOSER_PROCESS
) -> Die:
    """A passive interposer sized for the chiplets it carries."""
    if carried_area_mm2 <= 0.0:
        raise InvalidDesignError(
            f"carried chiplet area must be positive, got {carried_area_mm2}"
        )
    return Die(
        name="interposer",
        process=process,
        blocks=(),
        area_mm2=carried_area_mm2 * INTERPOSER_AREA_RATIO,
        yield_override=INTERPOSER_YIELD,
    )


def _chiplet_area(dies: Tuple[Die, ...], areas: Dict[str, float]) -> float:
    return sum(areas[die.name] * die.count for die in dies)


def zen2(
    io_process: str = IO_PROCESS,
    compute_process: str = COMPUTE_PROCESS,
    interposer: bool = False,
    interposer_process: str = INTERPOSER_PROCESS,
    name: str = "",
) -> ChipDesign:
    """A Zen-2-like chiplet design, optionally on an interposer.

    The interposer's area is 120% of the combined *published* chiplet
    areas at their chosen nodes (falling back to 14 nm-class sizes for
    nodes without a published area, which the case study never needs).
    """
    compute = compute_die(compute_process)
    io = io_die(io_process)
    dies: Tuple[Die, ...] = (compute, io)
    if interposer:
        areas = {
            "compute": COMPUTE_AREA_MM2.get(compute_process, COMPUTE_AREA_MM2["14nm"]),
            "io": IO_AREA_MM2.get(io_process, IO_AREA_MM2["14nm"]),
        }
        dies = dies + (
            interposer_die(_chiplet_area((compute, io), areas), interposer_process),
        )
    if not name:
        processes = {compute_process, io_process}
        flavor = "mixed" if len(processes) > 1 else next(iter(processes))
        suffix = " w/ interposer" if interposer else ""
        name = f"Zen 2 ({flavor} chiplets){suffix}"
    return ChipDesign(name=name, dies=dies)


def zen2_monolithic(process: str, name: str = "") -> ChipDesign:
    """The monolithic equivalent: both compute dies + I/O merged into one.

    The merged die keeps the same blocks (the core complex is still one
    reusable block; the I/O complex still has 523 M unique transistors)
    and the area is the sum of the published per-die areas at the node.
    """
    if process not in COMPUTE_AREA_MM2:
        raise InvalidDesignError(
            f"monolithic Zen 2 has published areas only at "
            f"{sorted(COMPUTE_AREA_MM2)}, got {process!r}"
        )
    core = Block(
        name="zen2-core-complex",
        transistors=COMPUTE_NTT / 8.0,
        instances=16,
        unique_transistors=COMPUTE_NUT,
    )
    logic = Block(
        name="io-complex",
        transistors=IO_NTT,
        unique_transistors=IO_NUT,
    )
    die = Die(
        name="monolithic",
        process=process,
        blocks=(core, logic),
        area_mm2=2.0 * COMPUTE_AREA_MM2[process] + IO_AREA_MM2[process],
    )
    return ChipDesign(name=name or f"Zen 2 monolithic @ {process}", dies=(die,))


def fig13_variants() -> Tuple[ChipDesign, ...]:
    """The eight designs compared in Fig. 13, in the paper's legend order."""
    return (
        zen2(name="Zen 2"),
        zen2(interposer=True, name="Zen 2 w/ interposer"),
        zen2("7nm", "7nm", name="7nm chiplet"),
        zen2("7nm", "7nm", interposer=True, name="7nm chiplet w/ interposer"),
        zen2_monolithic("7nm", name="7nm monolithic"),
        zen2("14nm", "14nm", name="12nm-class chiplet"),
        zen2(
            "14nm",
            "14nm",
            interposer=True,
            name="12nm-class chiplet w/ interposer",
        ),
        zen2_monolithic("14nm", name="12nm-class monolithic"),
    )
