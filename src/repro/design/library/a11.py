"""Apple-A11-like design (re-release case study, Sec. 6.2).

Known architecture (from the paper, citing AnandTech [35]): two big CPU
cores, four little CPU cores, three GPU cores, one neural processing unit,
all custom; 4.3 B transistors on an 88 mm^2 die at TSMC 10 nm. The paper
estimates the unique/unverified transistor count at ~514 M from the block
area estimates, treating the rest of the die as pre-verified memory and
third-party soft IP.

The block split below reproduces those aggregates exactly:

    NTT = 2x170M + 4x50M + 3x75M + 180M + 39M (top) + 3.316B (IP) = 4.3 B
    NUT = 170M + 50M + 75M + 180M + 39M = 514 M

Blocks tape out in parallel (100-engineer team each) and synchronize at
the 39 M-transistor top level, per the paper's calendar conversion.
"""

from __future__ import annotations

from ..block import Block, ip_block
from ..chip import ChipDesign
from ..die import Die

#: Total transistors on the die (paper Sec. 6.2).
A11_TOTAL_TRANSISTORS = 4.3e9

#: Unique/unverified transistors (paper estimate, Sec. 6.2).
A11_UNIQUE_TRANSISTORS = 5.14e8

#: The node the A11 originally shipped on.
A11_ORIGINAL_PROCESS = "10nm"

_BIG_CPU = 170e6
_LITTLE_CPU = 50e6
_GPU_CORE = 75e6
_NPU = 180e6
_TOP_LEVEL = 39e6
_SOFT_IP = A11_TOTAL_TRANSISTORS - (
    2 * _BIG_CPU + 4 * _LITTLE_CPU + 3 * _GPU_CORE + _NPU + _TOP_LEVEL
)


def a11(process: str = A11_ORIGINAL_PROCESS, name: str = "") -> ChipDesign:
    """The A11-like design targeted at ``process``.

    Re-targeting to any node only changes the die's implied area (via that
    node's transistor density) and the per-node effort coefficients — the
    architecture, NTT and NUT stay fixed, exactly the paper's re-release
    scenario.
    """
    blocks = (
        Block(name="big-cpu", transistors=_BIG_CPU, instances=2),
        Block(name="little-cpu", transistors=_LITTLE_CPU, instances=4),
        Block(name="gpu-core", transistors=_GPU_CORE, instances=3),
        Block(name="npu", transistors=_NPU),
        ip_block("memory-and-soft-ip", _SOFT_IP),
    )
    die = Die(
        name="a11-die",
        process=process,
        blocks=blocks,
        top_level_transistors=_TOP_LEVEL,
    )
    return ChipDesign(name=name or f"A11 @ {process}", dies=(die,))
