"""Accelerator blocks for the cost-of-specialization study (Sec. 6.4).

The paper benchmarks SPIRAL-generated fixed-point sorting networks [130]
and floating-point FFT accelerators [79] against Ariane on 2048-element
blocks, with unique transistor counts from commercial synthesis runs
"assuming that non-memory transistors are unique" — which makes the
accelerators' NUT equal their NTT in Table 3. The transistor counts below
are Table 3's, verbatim; the matching *performance* models (which actually
sort and actually compute DFTs) live in :mod:`repro.perf.accel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..block import Block

#: Problem size used throughout the study.
ACCELERATOR_BLOCK_SIZE = 2048


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static description of one accelerator variant (Table 3 row)."""

    key: str
    display_name: str
    kind: str  # "sorting" or "dft"
    style: str  # "stream" or "iterative"
    transistors: float

    def block(self) -> Block:
        """The tapeout-facing design block (fully unique, per the paper)."""
        return Block(name=self.key, transistors=self.transistors)


#: Table 3 rows, in the paper's order.
ACCELERATORS: Tuple[AcceleratorSpec, ...] = (
    AcceleratorSpec(
        key="sorting-stream",
        display_name="Sorting Stream",
        kind="sorting",
        style="stream",
        transistors=45.62e6,
    ),
    AcceleratorSpec(
        key="sorting-iterative",
        display_name="Sorting Iterative",
        kind="sorting",
        style="iterative",
        transistors=18.90e6,
    ),
    AcceleratorSpec(
        key="dft-stream",
        display_name="DFT Stream",
        kind="dft",
        style="stream",
        transistors=37.31e6,
    ),
    AcceleratorSpec(
        key="dft-iterative",
        display_name="DFT Iterative",
        kind="dft",
        style="iterative",
        transistors=18.18e6,
    ),
)


def accelerator_by_key(key: str) -> AcceleratorSpec:
    """Look up a Table 3 accelerator by its key."""
    for spec in ACCELERATORS:
        if spec.key == key:
            return spec
    known = ", ".join(spec.key for spec in ACCELERATORS)
    raise KeyError(f"unknown accelerator {key!r} (known: {known})")
