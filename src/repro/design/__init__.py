"""Chip design representation: blocks, dies, chips, and a design library."""

from .block import Block, ip_block
from .chip import ChipDesign
from .die import Die
from .serialize import design_from_dict, design_to_dict

__all__ = [
    "Block",
    "ChipDesign",
    "Die",
    "design_from_dict",
    "design_to_dict",
    "ip_block",
]
