"""Dies: the unit of fabrication and yield.

A :class:`Die` binds a set of blocks to a process node, plus everything the
fabrication and packaging phases need: count per package (chiplets), an
optional explicit area (for dies whose area is published rather than
derived from density, and for passive interposers), a minimum area (pad
ring / IO limit, used by the Raven study's 1 mm^2 floor), and an optional
yield override (the paper assumes a 99.99%-yield passive interposer).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..errors import InvalidDesignError
from ..technology.node import ProcessNode
from ..technology.salvage import SalvageSpec, salvage_yield
from ..technology.yield_model import DEFAULT_ALPHA, negative_binomial_yield
from .block import Block


@dataclass(frozen=True)
class Die:
    """One die type within a chip design.

    Attributes
    ----------
    name:
        Identifier, unique within the design.
    process:
        Process-node name the die is fabricated on.
    blocks:
        The blocks laid out on the die. May be empty only when
        ``area_mm2`` is given explicitly (passive interposers).
    count:
        Dies of this type per final package (N_die,package contribution).
    top_level_transistors:
        Interconnect/top-level logic that must tape out *after* the blocks
        (the synchronization step in Sec. 6.2). Always unverified.
    area_mm2:
        Explicit die area override; ``None`` derives area from the node's
        transistor density.
    min_area_mm2:
        Lower bound on the derived area (pad-limited designs; the Raven
        study floors dies at 1 mm^2).
    yield_override:
        Fixed die yield replacing Eq. 6 (e.g. 0.9999 for a passive
        interposer); ``None`` uses the negative-binomial model.
    salvage:
        Optional core-salvage ("binning") specification: dies with a
        defective unit can still sell if enough units survive, which
        raises the effective yield above Eq. 6. Mutually exclusive with
        ``yield_override``.
    """

    name: str
    process: str
    blocks: Tuple[Block, ...] = ()
    count: int = 1
    top_level_transistors: float = 0.0
    area_mm2: Optional[float] = None
    min_area_mm2: float = 0.0
    yield_override: Optional[float] = None
    salvage: Optional[SalvageSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidDesignError("die name must be non-empty")
        if not self.process:
            raise InvalidDesignError(f"die {self.name!r}: process must be set")
        object.__setattr__(self, "blocks", tuple(self.blocks))
        names = [block.name for block in self.blocks]
        if len(set(names)) != len(names):
            raise InvalidDesignError(
                f"die {self.name!r}: duplicate block names {names}"
            )
        if self.count < 1:
            raise InvalidDesignError(
                f"die {self.name!r}: count must be >= 1, got {self.count}"
            )
        if self.top_level_transistors < 0.0:
            raise InvalidDesignError(
                f"die {self.name!r}: top-level transistors must be >= 0"
            )
        if self.area_mm2 is not None and self.area_mm2 <= 0.0:
            raise InvalidDesignError(
                f"die {self.name!r}: explicit area must be positive"
            )
        if self.min_area_mm2 < 0.0:
            raise InvalidDesignError(
                f"die {self.name!r}: minimum area must be >= 0"
            )
        if not self.blocks and self.area_mm2 is None and self.min_area_mm2 <= 0.0:
            raise InvalidDesignError(
                f"die {self.name!r}: a die with no blocks needs an explicit "
                "or minimum area"
            )
        if self.yield_override is not None and not 0.0 < self.yield_override <= 1.0:
            raise InvalidDesignError(
                f"die {self.name!r}: yield override must be in (0, 1]"
            )
        if self.yield_override is not None and self.salvage is not None:
            raise InvalidDesignError(
                f"die {self.name!r}: yield override and salvage are "
                "mutually exclusive"
            )

    # -- Transistor accounting ------------------------------------------------

    @property
    def ntt(self) -> float:
        """Total transistors on one die (N_TT,die in Eq. 7)."""
        return (
            sum(block.total_transistors for block in self.blocks)
            + self.top_level_transistors
        )

    @property
    def nut(self) -> float:
        """Unique/unverified transistors (N_UT in Eq. 2)."""
        return sum(block.nut for block in self.blocks) + self.top_level_transistors

    @property
    def is_passive(self) -> bool:
        """True for dies with no transistors (passive interposers)."""
        return self.ntt == 0.0

    # -- Geometry and yield ----------------------------------------------------

    def area_on(self, node: ProcessNode) -> float:
        """Die area in mm^2 at the given node (A_die in Eqs. 6 and 7)."""
        self._check_node(node)
        if self.area_mm2 is not None:
            return max(self.area_mm2, self.min_area_mm2)
        derived = self.ntt / node.density_transistors_per_mm2
        return max(derived, self.min_area_mm2)

    def yield_on(self, node: ProcessNode, alpha: float = DEFAULT_ALPHA) -> float:
        """Sellable-die yield: Eq. 6, a fixed override, or salvage."""
        if self.yield_override is not None:
            return self.yield_override
        self._check_node(node)
        if self.salvage is not None:
            return salvage_yield(
                self.area_on(node),
                node.defect_density_per_cm2,
                self.salvage,
                alpha=alpha,
            )
        return negative_binomial_yield(
            self.area_on(node), node.defect_density_per_cm2, alpha=alpha
        )

    # -- Derivation -------------------------------------------------------------

    def retarget(self, process: str) -> "Die":
        """This die ported to another process node.

        An explicit ``area_mm2`` override is dropped because it was only
        valid at the original node; the retargeted die derives its area
        from the new node's density (the paper's porting assumption).
        """
        return replace(self, process=process, area_mm2=None)

    def with_count(self, count: int) -> "Die":
        """This die with a different per-package count."""
        return replace(self, count=count)

    def _check_node(self, node: ProcessNode) -> None:
        if node.name != self.process:
            raise InvalidDesignError(
                f"die {self.name!r} targets {self.process!r} but was "
                f"evaluated with node {node.name!r}"
            )
