"""Chip designs: the ``d`` in TTM(c, d, n, p).

A :class:`ChipDesign` is a set of die types (each with a per-package
count), plus the per-design constant for the design-and-implementation
phase (Sec. 3.1). It answers the aggregate questions the models ask —
which process nodes are used, NUT per node (Eq. 2), dies per package
(Eq. 7) — without knowing anything about market conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..errors import InvalidDesignError
from .die import Die


@dataclass(frozen=True)
class ChipDesign:
    """A complete chip design.

    Attributes
    ----------
    name:
        Display name, e.g. ``"A11"`` or ``"Zen 2 (7nm + 12nm)"``.
    dies:
        The die types packaged into one final chip. Monolithic designs
        have exactly one entry with ``count == 1``.
    design_weeks:
        The per-design constant modeling T_design+implementation
        (Sec. 3.1). Independent of supply-chain conditions; defaults to 0
        so results isolate the supply-chain-dependent phases, matching the
        paper's figures.
    """

    name: str
    dies: Tuple[Die, ...]
    design_weeks: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidDesignError("design name must be non-empty")
        object.__setattr__(self, "dies", tuple(self.dies))
        if not self.dies:
            raise InvalidDesignError(
                f"design {self.name!r}: needs at least one die"
            )
        names = [die.name for die in self.dies]
        if len(set(names)) != len(names):
            raise InvalidDesignError(
                f"design {self.name!r}: duplicate die names {names}"
            )
        if self.design_weeks < 0.0:
            raise InvalidDesignError(
                f"design {self.name!r}: design weeks must be >= 0"
            )

    # -- Aggregate structure -----------------------------------------------------

    @property
    def processes(self) -> Tuple[str, ...]:
        """Distinct process nodes used, in first-appearance order."""
        seen: Dict[str, None] = {}
        for die in self.dies:
            seen.setdefault(die.process, None)
        return tuple(seen)

    @property
    def is_multi_process(self) -> bool:
        """True when dies span more than one process node."""
        return len(self.processes) > 1

    @property
    def dies_per_package(self) -> int:
        """N_die,package: total dies assembled into one final chip."""
        return sum(die.count for die in self.dies)

    @property
    def is_chiplet(self) -> bool:
        """True when more than one die is packaged per chip."""
        return self.dies_per_package > 1

    @property
    def ntt_per_chip(self) -> float:
        """Total transistors in one final chip, across all dies."""
        return sum(die.ntt * die.count for die in self.dies)

    def nut_by_process(self) -> Dict[str, float]:
        """NUT(d, p) per node (the per-node sums feeding Eq. 2)."""
        totals: Dict[str, float] = {}
        for die in self.dies:
            totals[die.process] = totals.get(die.process, 0.0) + die.nut
        return totals

    def dies_on(self, process: str) -> Tuple[Die, ...]:
        """Die types fabricated on the given node."""
        return tuple(die for die in self.dies if die.process == process)

    def die(self, name: str) -> Die:
        """Look up a die type by name."""
        for candidate in self.dies:
            if candidate.name == name:
                return candidate
        raise InvalidDesignError(
            f"design {self.name!r}: no die named {name!r}"
        )

    # -- Derivation -----------------------------------------------------------------

    def retarget(self, process: str, name: str = "") -> "ChipDesign":
        """This design with *every* die ported to one process node.

        Used by the A11 study (re-release a 10 nm design on each candidate
        node) and by single-process chiplet variants in the Zen-2 study.
        """
        dies = tuple(die.retarget(process) for die in self.dies)
        return replace(
            self, name=name or f"{self.name} @ {process}", dies=dies
        )

    def with_die(self, die: Die) -> "ChipDesign":
        """This design with an extra die appended (e.g. an interposer)."""
        return replace(self, dies=self.dies + (die,))

    def renamed(self, name: str) -> "ChipDesign":
        """This design under a different display name."""
        return replace(self, name=name)
