"""Design blocks: the unit of tapeout reuse.

Chips are built in block-level increments (paper Sec. 3.2): a block only
completes the tapeout phase once, no matter how many times it is
instantiated, and pre-verified soft/IP blocks skip tapeout entirely. A
:class:`Block` therefore carries both a *total* transistor count (per
instance, contributing to NTT, die area, and testing time) and a *unique*
transistor count (counted once, contributing to NUT and tapeout effort).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import InvalidDesignError


@dataclass(frozen=True)
class Block:
    """A reusable design block.

    Attributes
    ----------
    name:
        Human-readable identifier, unique within a die.
    transistors:
        Total transistors of *one instance* of the block (contributes to
        NTT ``instances`` times).
    instances:
        How many copies of the block the die contains (e.g. 16 identical
        cores). Unique transistors are counted once regardless.
    unique_transistors:
        NUT contribution: transistors that must complete the tapeout phase.
        ``None`` (default) means the whole block is new and unverified
        (NUT = transistors); ``0`` marks a pre-verified IP block.
    """

    name: str
    transistors: float
    instances: int = 1
    unique_transistors: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidDesignError("block name must be non-empty")
        if self.transistors < 0.0:
            raise InvalidDesignError(
                f"block {self.name!r}: transistors must be >= 0, "
                f"got {self.transistors}"
            )
        if self.instances < 1:
            raise InvalidDesignError(
                f"block {self.name!r}: instances must be >= 1, "
                f"got {self.instances}"
            )
        if self.unique_transistors is not None:
            if self.unique_transistors < 0.0:
                raise InvalidDesignError(
                    f"block {self.name!r}: unique transistors must be >= 0"
                )
            if self.unique_transistors > self.transistors:
                raise InvalidDesignError(
                    f"block {self.name!r}: unique transistors "
                    f"({self.unique_transistors:g}) cannot exceed total "
                    f"transistors ({self.transistors:g})"
                )

    @property
    def total_transistors(self) -> float:
        """NTT contribution across all instances."""
        return self.transistors * self.instances

    @property
    def nut(self) -> float:
        """NUT contribution (counted once across instances)."""
        if self.unique_transistors is None:
            return self.transistors
        return self.unique_transistors

    @property
    def is_verified(self) -> bool:
        """Whether the block skips tapeout entirely (NUT == 0)."""
        return self.nut == 0.0


def ip_block(name: str, transistors: float, instances: int = 1) -> Block:
    """A pre-verified IP block: contributes area/NTT but no tapeout effort."""
    return Block(
        name=name,
        transistors=transistors,
        instances=instances,
        unique_transistors=0.0,
    )
