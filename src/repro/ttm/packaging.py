"""Packaging phase model (paper Sec. 3.4, Eq. 7).

    T_package = L_TAP
              + sum_die (n * count / Y_die) * NTT_die * E_testing(p_die)
              + n * sum_die count * A_die * E_package(p_die)

The first term is the TAP line's baseline latency; the second is testing
time — every fabricated die is tested and die-yield loss means more than
``n`` dies flow through the testers; the third is assembly time, growing
with die area (pin count) and with the number of dies per package
(chiplet alignment effort, Sec. 3.4).

The paper's Eq. 7 is written for a single die type; the sums generalize it
to chiplets exactly as the Zen-2 case study requires. Passive interposers
have NTT = 0, so they skip testing but still pay assembly area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..technology.database import TechnologyDatabase, TAP_LATENCY_WEEKS
from ..technology.yield_model import DEFAULT_ALPHA


@dataclass(frozen=True)
class PackagingBreakdown:
    """The three Eq. 7 terms, in weeks."""

    latency_weeks: float
    testing_weeks: float
    assembly_weeks: float

    @property
    def total_weeks(self) -> float:
        """T_package."""
        return self.latency_weeks + self.testing_weeks + self.assembly_weeks


def packaging_breakdown(
    design: ChipDesign,
    technology: TechnologyDatabase,
    n_chips: float,
    tap_latency_weeks: float = TAP_LATENCY_WEEKS,
    alpha: float = DEFAULT_ALPHA,
) -> PackagingBreakdown:
    """Evaluate Eq. 7 for a (possibly multi-die) design."""
    if n_chips < 0.0:
        raise InvalidParameterError(f"chip count must be >= 0, got {n_chips}")
    if tap_latency_weeks < 0.0:
        raise InvalidParameterError(
            f"TAP latency must be >= 0, got {tap_latency_weeks}"
        )
    testing = 0.0
    assembly = 0.0
    for die in design.dies:
        node = technology[die.process]
        die_yield = die.yield_on(node, alpha=alpha)
        dies_tested = n_chips * die.count / die_yield
        testing += dies_tested * die.ntt * node.testing_effort
        assembly += (
            n_chips * die.count * die.area_on(node) * node.packaging_effort
        )
    return PackagingBreakdown(
        latency_weeks=tap_latency_weeks,
        testing_weeks=testing,
        assembly_weeks=assembly,
    )


def packaging_weeks(
    design: ChipDesign,
    technology: TechnologyDatabase,
    n_chips: float,
    tap_latency_weeks: float = TAP_LATENCY_WEEKS,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """T_package (Eq. 7) as a single number."""
    return packaging_breakdown(
        design, technology, n_chips, tap_latency_weeks, alpha
    ).total_weeks


def packaging_terms(
    design: ChipDesign,
    technology: TechnologyDatabase,
    n_chips: float,
    tap_latency_weeks: float = TAP_LATENCY_WEEKS,
    alpha: float = DEFAULT_ALPHA,
) -> Tuple[float, float, float]:
    """(latency, testing, assembly) weeks — convenience for tables."""
    breakdown = packaging_breakdown(
        design, technology, n_chips, tap_latency_weeks, alpha
    )
    return (
        breakdown.latency_weeks,
        breakdown.testing_weeks,
        breakdown.assembly_weeks,
    )
