"""Tapeout phase model (paper Sec. 3.2, Eq. 2).

Engineering effort is ``NUT(d, p) * E_tapeout(p)`` engineer-weeks per node
(Eq. 2). Calendar conversion divides by a fixed team size (100 engineers
in the A11 study, Sec. 6.2). Two block-scheduling policies are supported:

* **serial** (default): the team works through the die's unique blocks one
  after another — calendar weeks = NUT_die * E / engineers. This is the
  literal Eq. 2 reading and reproduces Table 4's tapeout columns.
* **block-parallel**: every block gets its own full-size team and the
  top-level integration runs after the slowest block —
  calendar weeks = (max_block NUT + NUT_top) * E / engineers. This is the
  Sec. 6.2 "each individual block can be done in parallel and then
  synchronized for the top-level tapeout" reading.

Pre-verified blocks (NUT = 0) contribute nothing under either policy —
reuse is free, exactly the incentive the paper highlights.
"""

from __future__ import annotations

from typing import Dict

from ..design.chip import ChipDesign
from ..design.die import Die
from ..errors import InvalidParameterError
from ..technology.database import TechnologyDatabase
from ..technology.effort import engineering_weeks_to_calendar_weeks
from ..technology.node import ProcessNode


def die_tapeout_engineer_weeks(die: Die, node: ProcessNode) -> float:
    """Total engineering effort for one die type, in engineer-weeks."""
    _check(die, node)
    return die.nut * node.tapeout_effort


def die_tapeout_calendar_weeks(
    die: Die,
    node: ProcessNode,
    engineers: int,
    block_parallel: bool = False,
) -> float:
    """Calendar weeks for one die's tapeout.

    Serial policy (default) burns the die's whole NUT on one team; the
    block-parallel policy staffs each block independently and serializes
    only the top-level integration after the slowest block.
    """
    _check(die, node)
    if engineers <= 0:
        raise InvalidParameterError(f"team size must be positive, got {engineers}")
    if not die.blocks and die.top_level_transistors == 0.0:
        return 0.0
    if block_parallel:
        slowest_block = max((block.nut for block in die.blocks), default=0.0)
        nut = slowest_block + die.top_level_transistors
    else:
        nut = die.nut
    return engineering_weeks_to_calendar_weeks(nut * node.tapeout_effort, engineers)


def design_tapeout_engineer_weeks(
    design: ChipDesign, technology: TechnologyDatabase
) -> float:
    """T_tapeout in engineer-weeks, exactly Eq. 2: sum over nodes."""
    return sum(
        nut * technology[process].tapeout_effort
        for process, nut in design.nut_by_process().items()
    )


def node_tapeout_calendar_weeks(
    design: ChipDesign,
    technology: TechnologyDatabase,
    engineers: int,
    block_parallel: bool = False,
) -> Dict[str, float]:
    """Per-node calendar tapeout time: slowest die on each node.

    Dies on the same node are assumed to tape out in parallel (separate
    teams per die type, as in the Zen-2 study where compute and I/O dies
    proceed independently), so the node is ready when its slowest die is.
    """
    per_node: Dict[str, float] = {}
    for die in design.dies:
        node = technology[die.process]
        weeks = die_tapeout_calendar_weeks(
            die, node, engineers, block_parallel=block_parallel
        )
        per_node[die.process] = max(per_node.get(die.process, 0.0), weeks)
    return per_node


def sequential_tapeout_calendar_weeks(
    design: ChipDesign,
    technology: TechnologyDatabase,
    engineers: int,
) -> float:
    """Strict Eq. 1/2 reading: all tapeout effort serialized on one team."""
    effort = design_tapeout_engineer_weeks(design, technology)
    return engineering_weeks_to_calendar_weeks(effort, engineers)


def _check(die: Die, node: ProcessNode) -> None:
    if die.process != node.name:
        raise InvalidParameterError(
            f"die {die.name!r} targets {die.process!r}, got node {node.name!r}"
        )
