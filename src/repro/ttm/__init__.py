"""Time-to-market model (paper Sec. 3): tapeout, fabrication, packaging."""

from .fabrication import (
    NodeFabrication,
    die_wafer_demand,
    fabrication_weeks,
    node_fabrication,
    wafer_demand_by_node,
)
from .model import DEFAULT_ENGINEERS, TTMModel
from .packaging import PackagingBreakdown, packaging_breakdown, packaging_weeks
from .result import NodeSchedule, TTMResult
from .tapeout import (
    design_tapeout_engineer_weeks,
    die_tapeout_calendar_weeks,
    die_tapeout_engineer_weeks,
    node_tapeout_calendar_weeks,
    sequential_tapeout_calendar_weeks,
)

__all__ = [
    "DEFAULT_ENGINEERS",
    "NodeFabrication",
    "NodeSchedule",
    "PackagingBreakdown",
    "TTMModel",
    "TTMResult",
    "design_tapeout_engineer_weeks",
    "die_tapeout_calendar_weeks",
    "die_tapeout_engineer_weeks",
    "die_wafer_demand",
    "fabrication_weeks",
    "node_fabrication",
    "node_tapeout_calendar_weeks",
    "packaging_breakdown",
    "packaging_weeks",
    "sequential_tapeout_calendar_weeks",
    "wafer_demand_by_node",
]
