"""Fabrication phase model (paper Sec. 3.3, Eqs. 3–5).

The phase splits into a queuing stage (Eq. 4, from the foundry's quoted
lead time) and a production stage (Eq. 5): wafer count over production
rate, plus the node's pipeline latency L_fab. Wafer counts include the
yield overhead — enough wafers are ordered that the *expected* number of
good dies covers the order (Sec. 3.3).

Die types sharing a node share that node's production rate: their wafer
demands add before dividing by mu_W. Across nodes, fabrication proceeds in
parallel and packaging waits for the slowest node (the max in Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..design.chip import ChipDesign
from ..design.die import Die
from ..errors import InvalidParameterError
from ..market.foundry import Foundry
from ..technology.node import ProcessNode
from ..technology.wafer import wafers_required
from ..technology.yield_model import DEFAULT_ALPHA


@dataclass(frozen=True)
class NodeFabrication:
    """Fabrication-stage summary for one process node."""

    process: str
    wafers: float
    queue_weeks: float
    production_weeks: float
    latency_weeks: float

    @property
    def total_weeks(self) -> float:
        """Queue + production + latency (the per-node term in Eq. 3)."""
        return self.queue_weeks + self.production_weeks + self.latency_weeks


def die_wafer_demand(
    die: Die,
    node: ProcessNode,
    n_chips: float,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
) -> float:
    """Wafers to order for one die type: N_W(d, n, p) in Eq. 5."""
    if n_chips < 0.0:
        raise InvalidParameterError(f"chip count must be >= 0, got {n_chips}")
    dies_needed = n_chips * die.count
    return wafers_required(
        dies_needed,
        die.area_on(node),
        die.yield_on(node, alpha=alpha),
        wafer_diameter_mm=node.wafer_diameter_mm,
        edge_corrected=edge_corrected,
    )


def wafer_demand_by_node(
    design: ChipDesign,
    foundry: Foundry,
    n_chips: float,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
) -> Dict[str, float]:
    """Total wafers ordered per node, across all die types on that node."""
    demand: Dict[str, float] = {}
    for die in design.dies:
        node = foundry.node(die.process)
        wafers = die_wafer_demand(
            die, node, n_chips, alpha=alpha, edge_corrected=edge_corrected
        )
        demand[die.process] = demand.get(die.process, 0.0) + wafers
    return demand


def node_fabrication(
    design: ChipDesign,
    foundry: Foundry,
    n_chips: float,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
) -> Tuple[NodeFabrication, ...]:
    """Per-node fabrication stages (queue, production, latency).

    Each node used by the design must currently be in production; the
    foundry raises :class:`NodeUnavailableError` otherwise.
    """
    demand = wafer_demand_by_node(
        design, foundry, n_chips, alpha=alpha, edge_corrected=edge_corrected
    )
    stages = []
    for process, wafers in demand.items():
        rate = foundry.wafer_rate_per_week(process)
        node = foundry.node(process)
        stages.append(
            NodeFabrication(
                process=process,
                wafers=wafers,
                queue_weeks=foundry.queue_weeks(process),
                production_weeks=wafers / rate,
                latency_weeks=node.fab_latency_weeks,
            )
        )
    return tuple(stages)


def fabrication_weeks(
    design: ChipDesign,
    foundry: Foundry,
    n_chips: float,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
) -> float:
    """T_fab (Eq. 3): the slowest node's queue + production + latency."""
    stages = node_fabrication(
        design, foundry, n_chips, alpha=alpha, edge_corrected=edge_corrected
    )
    return max(stage.total_weeks for stage in stages)
