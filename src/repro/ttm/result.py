"""Result types returned by the TTM model.

These are plain frozen dataclasses so experiments can serialize, tabulate,
and compare them without touching the model. All times are calendar weeks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class NodeSchedule:
    """Per-process-node timeline of a design's creation.

    Attributes
    ----------
    process:
        Node name.
    tapeout_weeks:
        Calendar weeks the node's dies spend in the tapeout phase
        (blocks in parallel, synchronized at the top level).
    queue_weeks:
        T_fab,queue (Eq. 4) under current conditions.
    production_weeks:
        Wafer production time N_W / mu_W (first term of Eq. 5).
    latency_weeks:
        Foundry assembly-line latency L_fab (second term of Eq. 5).
    wafers:
        Total wafers ordered on this node (all die types combined).
    ready_weeks:
        When this node's dies reach the packaging house, measured from
        the start of tapeout (pipelined schedule).
    """

    process: str
    tapeout_weeks: float
    queue_weeks: float
    production_weeks: float
    latency_weeks: float
    wafers: float
    ready_weeks: float

    @property
    def fabrication_weeks(self) -> float:
        """Queue + production + latency on this node."""
        return self.queue_weeks + self.production_weeks + self.latency_weeks


@dataclass(frozen=True)
class TTMResult:
    """Complete time-to-market breakdown for one (design, n) evaluation.

    ``total_weeks`` is the headline TTM (Eq. 1). The phase fields are the
    stacked components plotted in Fig. 7; per-node details live in
    ``nodes`` keyed by process name.
    """

    design: str
    n_chips: float
    schedule: str
    design_weeks: float
    tapeout_weeks: float
    fabrication_weeks: float
    packaging_weeks: float
    nodes: Mapping[str, NodeSchedule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", dict(self.nodes))

    @property
    def total_weeks(self) -> float:
        """Time-to-market (Eq. 1)."""
        return (
            self.design_weeks
            + self.tapeout_weeks
            + self.fabrication_weeks
            + self.packaging_weeks
        )

    @property
    def supply_dependent_weeks(self) -> float:
        """Fabrication + packaging: the phases downstream of tapeout.

        CAS only differentiates these (Sec. 4): design and tapeout are
        upstream of the production rate.
        """
        return self.fabrication_weeks + self.packaging_weeks

    @property
    def total_wafers(self) -> float:
        """Wafers ordered across all nodes."""
        return sum(node.wafers for node in self.nodes.values())

    @property
    def bottleneck_process(self) -> str:
        """The node whose dies arrive at packaging last."""
        return max(self.nodes.values(), key=lambda node: node.ready_weeks).process

    def phase_breakdown(self) -> Tuple[Tuple[str, float], ...]:
        """(phase, weeks) pairs in pipeline order, for tables and plots."""
        return (
            ("design", self.design_weeks),
            ("tapeout", self.tapeout_weeks),
            ("fabrication", self.fabrication_weeks),
            ("packaging", self.packaging_weeks),
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline numbers (for CSV-ish output)."""
        return {
            "design_weeks": self.design_weeks,
            "tapeout_weeks": self.tapeout_weeks,
            "fabrication_weeks": self.fabrication_weeks,
            "packaging_weeks": self.packaging_weeks,
            "total_weeks": self.total_weeks,
            "total_wafers": self.total_wafers,
        }
