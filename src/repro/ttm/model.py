"""The top-level time-to-market model (paper Eq. 1).

:class:`TTMModel` composes the phase models into a single evaluation:

    TTM = T_design+impl + T_tapeout + T_fabrication + T_package

Two scheduling semantics are supported (see DESIGN.md):

* ``"pipelined"`` (default): each node's dies move to fabrication as soon
  as their tapeout finishes; packaging starts when the slowest node's dies
  arrive. This matches the case-study narrative ("once the 12 nm I/O
  design finishes its tapeout, it can move forward to the fabrication
  phase independent of the 7 nm compute die", Sec. 6.5) and reduces to the
  strict Eq. 1 sum for single-node designs.
* ``"sequential"``: the strict Eq. 1 sum — tapeout effort across all nodes
  is serialized on one team, then fabrication (Eq. 3 max), then packaging.
  Provided for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..market.foundry import Foundry
from ..technology.database import TechnologyDatabase, TAP_LATENCY_WEEKS
from ..technology.yield_model import DEFAULT_ALPHA
from .fabrication import node_fabrication, wafer_demand_by_node
from .packaging import packaging_breakdown
from .result import NodeSchedule, TTMResult
from .tapeout import node_tapeout_calendar_weeks, sequential_tapeout_calendar_weeks

#: Team size used by the paper's A11 conversion (Sec. 6.2).
DEFAULT_ENGINEERS = 100

_SCHEDULES = ("pipelined", "sequential")


@dataclass(frozen=True)
class TTMModel:
    """Evaluates TTM(c, d, n) for chip designs under market conditions.

    Attributes
    ----------
    foundry:
        Technology database + market conditions.
    engineers:
        Tapeout team size for the engineering-effort -> calendar-weeks
        conversion (default 100, per the paper).
    tap_latency_weeks:
        L_TAP baseline (default 6 weeks for all nodes, per Sec. 5).
    alpha:
        Yield-model cluster parameter (default 3).
    edge_corrected:
        Use the edge-corrected dies-per-wafer estimator instead of the
        paper's plain area ratio.
    schedule:
        ``"pipelined"`` or ``"sequential"`` (see module docstring).
    block_parallel:
        Tape out each die's blocks on independent teams (Sec. 6.2's
        parallel reading) instead of serially on one team.
    """

    foundry: Foundry
    engineers: int = DEFAULT_ENGINEERS
    tap_latency_weeks: float = TAP_LATENCY_WEEKS
    alpha: float = DEFAULT_ALPHA
    edge_corrected: bool = False
    schedule: str = "pipelined"
    block_parallel: bool = False

    def __post_init__(self) -> None:
        if self.engineers <= 0:
            raise InvalidParameterError(
                f"engineers must be positive, got {self.engineers}"
            )
        if self.schedule not in _SCHEDULES:
            raise InvalidParameterError(
                f"schedule must be one of {_SCHEDULES}, got {self.schedule!r}"
            )

    # -- Construction helpers ----------------------------------------------------

    @classmethod
    def nominal(
        cls,
        technology: Optional[TechnologyDatabase] = None,
        **overrides: object,
    ) -> "TTMModel":
        """A model at full capacity with empty queues."""
        return cls(foundry=Foundry.nominal(technology), **overrides)  # type: ignore[arg-type]

    def with_foundry(self, foundry: Foundry) -> "TTMModel":
        """This model pointed at a different foundry state."""
        return TTMModel(
            foundry=foundry,
            engineers=self.engineers,
            tap_latency_weeks=self.tap_latency_weeks,
            alpha=self.alpha,
            edge_corrected=self.edge_corrected,
            schedule=self.schedule,
            block_parallel=self.block_parallel,
        )

    def at_capacity(self, fraction: float) -> "TTMModel":
        """This model with every node at ``fraction`` of max capacity."""
        return self.with_foundry(self.foundry.at_capacity(fraction))

    # -- Evaluation -----------------------------------------------------------------

    def time_to_market(self, design: ChipDesign, n_chips: float) -> TTMResult:
        """Full TTM breakdown for producing ``n_chips`` final chips."""
        if n_chips <= 0.0:
            raise InvalidParameterError(
                f"number of final chips must be positive, got {n_chips}"
            )
        tapeout_by_node = node_tapeout_calendar_weeks(
            design,
            self.foundry.technology,
            self.engineers,
            block_parallel=self.block_parallel,
        )
        fabrication = {
            stage.process: stage
            for stage in node_fabrication(
                design,
                self.foundry,
                n_chips,
                alpha=self.alpha,
                edge_corrected=self.edge_corrected,
            )
        }
        packaging = packaging_breakdown(
            design,
            self.foundry.technology,
            n_chips,
            tap_latency_weeks=self.tap_latency_weeks,
            alpha=self.alpha,
        )

        nodes: Dict[str, NodeSchedule] = {}
        for process, stage in fabrication.items():
            tapeout_weeks = tapeout_by_node.get(process, 0.0)
            nodes[process] = NodeSchedule(
                process=process,
                tapeout_weeks=tapeout_weeks,
                queue_weeks=stage.queue_weeks,
                production_weeks=stage.production_weeks,
                latency_weeks=stage.latency_weeks,
                wafers=stage.wafers,
                ready_weeks=tapeout_weeks + stage.total_weeks,
            )

        if self.schedule == "pipelined":
            ready = max(node.ready_weeks for node in nodes.values())
            tapeout_weeks = max(node.tapeout_weeks for node in nodes.values())
            fabrication_weeks = ready - tapeout_weeks
        else:
            tapeout_weeks = sequential_tapeout_calendar_weeks(
                design, self.foundry.technology, self.engineers
            )
            fabrication_weeks = max(
                node.fabrication_weeks for node in nodes.values()
            )

        return TTMResult(
            design=design.name,
            n_chips=n_chips,
            schedule=self.schedule,
            design_weeks=design.design_weeks,
            tapeout_weeks=tapeout_weeks,
            fabrication_weeks=fabrication_weeks,
            packaging_weeks=packaging.total_weeks,
            nodes=nodes,
        )

    def total_weeks(self, design: ChipDesign, n_chips: float) -> float:
        """Shorthand for ``time_to_market(...).total_weeks``."""
        return self.time_to_market(design, n_chips).total_weeks

    def wafer_demand(self, design: ChipDesign, n_chips: float) -> Dict[str, float]:
        """Wafers ordered per node (inputs to the cost model and CAS)."""
        return wafer_demand_by_node(
            design,
            self.foundry,
            n_chips,
            alpha=self.alpha,
            edge_corrected=self.edge_corrected,
        )
