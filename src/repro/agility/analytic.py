"""Closed-form CAS for single-node designs.

For a design fabricated entirely on one node with no synchronization
kinks, Eq. 8 has an exact closed form. Total TTM depends on the wafer
rate mu only through

    T_queue + T_prod = (N_ahead + N_W) / mu        (Eqs. 4-5)

so |dTTM/dmu| = (N_ahead + N_W) / mu^2 and

    CAS = mu^2 / (N_ahead + N_W).

This module provides that closed form both as a cross-check for the
numeric differentiator (the test suite asserts agreement to ~0.1%) and
as a fast path for large sweeps. It also exposes the two qualitative
consequences the paper draws from it:

* CAS scales *quadratically* with capacity fraction (Figs. 9/12/13c all
  bend down-left), and
* a quoted backlog enters the denominator at full weight, which is why
  one quoted week can halve-or-worse the max CAS (Fig. 12).
"""

from __future__ import annotations

from typing import Optional

from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel


def single_node_cas(
    wafer_rate_per_week: float,
    wafers_for_design: float,
    wafers_ahead: float = 0.0,
) -> float:
    """Closed-form Eq. 8 for one node: mu^2 / (N_ahead + N_W)."""
    if wafer_rate_per_week <= 0.0:
        raise InvalidParameterError(
            f"wafer rate must be positive, got {wafer_rate_per_week}"
        )
    if wafers_for_design < 0.0 or wafers_ahead < 0.0:
        raise InvalidParameterError("wafer counts must be >= 0")
    total_wafers = wafers_for_design + wafers_ahead
    if total_wafers <= 0.0:
        raise InvalidParameterError(
            "CAS is unbounded for a design that needs no wafers"
        )
    return wafer_rate_per_week**2 / total_wafers


def analytic_cas(
    model: TTMModel,
    design: ChipDesign,
    n_chips: float,
    capacity_fraction: Optional[float] = None,
) -> float:
    """Closed-form CAS of a single-node design under a model's conditions.

    Raises for multi-node designs — their max() synchronization makes the
    derivative piecewise and the numeric path in
    :func:`repro.agility.cas.chip_agility_score` is the right tool.
    """
    processes = design.processes
    if len(processes) != 1:
        raise InvalidParameterError(
            f"analytic CAS needs a single-node design, got {processes}"
        )
    process = processes[0]
    foundry = model.foundry
    fraction = (
        capacity_fraction
        if capacity_fraction is not None
        else foundry.conditions.capacity_for(process)
    )
    if fraction <= 0.0:
        raise InvalidParameterError(
            f"capacity fraction must be positive, got {fraction}"
        )
    node = foundry.technology.require_production(process)
    rate = node.max_wafer_rate_per_week * fraction
    wafers = model.wafer_demand(design, n_chips)[process]
    backlog = foundry.wafers_ahead(process)
    return single_node_cas(rate, wafers, backlog)


def queue_cas_penalty(
    wafers_for_design: float, wafers_ahead: float
) -> float:
    """Fractional max-CAS loss caused by a quoted backlog.

    From the closed form: 1 - N_W / (N_W + N_ahead). Independent of the
    wafer rate — the quote's damage is set purely by how the backlog
    compares to the design's own wafer demand.
    """
    if wafers_for_design <= 0.0:
        raise InvalidParameterError(
            f"design wafer count must be positive, got {wafers_for_design}"
        )
    if wafers_ahead < 0.0:
        raise InvalidParameterError(
            f"backlog must be >= 0, got {wafers_ahead}"
        )
    return wafers_ahead / (wafers_for_design + wafers_ahead)
