"""Chip Agility Score (paper Sec. 4, Eq. 8).

    CAS = ( sum_{p in d} | d TTM(c, d, n, p) / d mu_W(p) | ) ^ -1

A higher CAS means the design's time-to-market is less sensitive to
production-rate changes on the nodes it uses — it is more resilient to
production-side supply chain disruptions. CAS is measured in wafers per
week squared; the figures report it in "normalized wafers/week^2", which
this module implements as kilo-wafers/week^2 (a fixed unit scale, so
designs remain directly comparable across figures).

CAS deliberately ignores the design and tapeout phases (they are upstream
of production rates); this falls out automatically because those phases do
not depend on mu_W.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel
from .derivative import DEFAULT_RELATIVE_STEP, ttm_rate_sensitivity

#: Raw wafers/week^2 per one "normalized" CAS unit used in the figures.
WAFERS_PER_NORMALIZED_UNIT = 1000.0


@dataclass(frozen=True)
class CASResult:
    """Chip Agility Score with per-node sensitivities.

    ``sensitivity`` maps node name -> |dTTM/dmu_W| (weeks per wafer/week);
    ``cas`` is the Eq. 8 inverse sum in wafers/week^2.
    """

    design: str
    n_chips: float
    cas: float
    sensitivity: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sensitivity", dict(self.sensitivity))

    @property
    def normalized(self) -> float:
        """CAS in normalized (kilo-wafer) units, as plotted in the paper."""
        return self.cas / WAFERS_PER_NORMALIZED_UNIT

    @property
    def dominant_process(self) -> str:
        """The node contributing the largest TTM sensitivity."""
        return max(self.sensitivity.items(), key=lambda item: item[1])[0]


def chip_agility_score(
    model: TTMModel,
    design: ChipDesign,
    n_chips: float,
    relative_step: float = DEFAULT_RELATIVE_STEP,
) -> CASResult:
    """Evaluate Eq. 8 at the model's current market conditions.

    For every node the design uses, the node's capacity is perturbed by
    ``relative_step`` in both directions (all other nodes held fixed) and
    the TTM slope against the node's absolute wafer rate is measured.
    """
    conditions = model.foundry.conditions
    sensitivities: Dict[str, float] = {}
    for process in design.processes:
        node = model.foundry.technology.require_production(process)
        fraction = conditions.capacity_for(process)
        if fraction <= 0.0:
            raise InvalidParameterError(
                f"cannot evaluate CAS with zero capacity on {process!r}"
            )
        max_rate = node.max_wafer_rate_per_week

        def ttm_at_rate(rate: float, _process: str = process) -> float:
            perturbed = model.with_foundry(
                model.foundry.with_conditions(
                    conditions.with_capacity(_process, rate / max_rate)
                )
            )
            return perturbed.total_weeks(design, n_chips)

        sensitivities[process] = ttm_rate_sensitivity(
            ttm_at_rate, fraction * max_rate, relative_step
        )

    total = sum(sensitivities.values())
    if total <= 0.0:
        raise InvalidParameterError(
            f"design {design.name!r} has zero TTM sensitivity on all nodes; "
            "CAS is unbounded (check the production volume is non-trivial)"
        )
    return CASResult(
        design=design.name,
        n_chips=n_chips,
        cas=1.0 / total,
        sensitivity=sensitivities,
    )


def cas_curve(
    model: TTMModel,
    design: ChipDesign,
    n_chips: float,
    fractions: Sequence[float],
    relative_step: float = DEFAULT_RELATIVE_STEP,
) -> Tuple[Tuple[float, CASResult], ...]:
    """CAS swept over global capacity fractions (Figs. 3, 9, 12, 13c).

    Every node is scaled to the same fraction of its maximum rate; queue
    backlogs stay pinned to their quoted (full-rate) wafer counts, which is
    what makes queued designs lose agility as capacity drops (Fig. 12).
    """
    results = []
    for fraction in fractions:
        if fraction <= 0.0:
            raise InvalidParameterError(
                f"capacity fractions must be positive, got {fraction}"
            )
        swept = model.at_capacity(fraction)
        results.append(
            (fraction, chip_agility_score(swept, design, n_chips, relative_step))
        )
    return tuple(results)


def ttm_curve(
    model: TTMModel,
    design: ChipDesign,
    n_chips: float,
    fractions: Sequence[float],
) -> Tuple[Tuple[float, float], ...]:
    """Total TTM swept over global capacity fractions (Figs. 3 and 11)."""
    results = []
    for fraction in fractions:
        if fraction <= 0.0:
            raise InvalidParameterError(
                f"capacity fractions must be positive, got {fraction}"
            )
        results.append(
            (fraction, model.at_capacity(fraction).total_weeks(design, n_chips))
        )
    return tuple(results)
