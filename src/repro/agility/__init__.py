"""Chip Agility Score (Eq. 8) and supporting numerics."""

from .analytic import analytic_cas, queue_cas_penalty, single_node_cas
from .cas import (
    CASResult,
    WAFERS_PER_NORMALIZED_UNIT,
    cas_curve,
    chip_agility_score,
    ttm_curve,
)
from .derivative import DEFAULT_RELATIVE_STEP, central_difference, ttm_rate_sensitivity

__all__ = [
    "CASResult",
    "DEFAULT_RELATIVE_STEP",
    "WAFERS_PER_NORMALIZED_UNIT",
    "analytic_cas",
    "cas_curve",
    "central_difference",
    "chip_agility_score",
    "queue_cas_penalty",
    "single_node_cas",
    "ttm_curve",
    "ttm_rate_sensitivity",
]
