"""Numeric differentiation of TTM with respect to wafer production rate.

CAS (Eq. 8) needs |d TTM / d mu_W(p)| for every node p a design uses. The
TTM model is piecewise smooth — max() synchronization points (Eq. 3)
introduce kinks, which are not artifacts but the behaviour behind the
Zen-2 CAS cliff (Fig. 13c) — so we use a central difference with a small
relative step. Across a kink the central difference returns the average of
the one-sided slopes, which is the correct "sensitivity to small
disturbances in either direction" reading for an agility metric.
"""

from __future__ import annotations

from typing import Callable

from ..errors import InvalidParameterError

#: Default relative perturbation applied to a node's capacity fraction.
DEFAULT_RELATIVE_STEP = 1.0e-3


def central_difference(
    function: Callable[[float], float],
    at: float,
    step: float,
) -> float:
    """Symmetric difference quotient ``(f(x+h) - f(x-h)) / (2h)``."""
    if step <= 0.0:
        raise InvalidParameterError(f"step must be positive, got {step}")
    upper = function(at + step)
    lower = function(at - step)
    return (upper - lower) / (2.0 * step)


def ttm_rate_sensitivity(
    ttm_at_rate: Callable[[float], float],
    rate: float,
    relative_step: float = DEFAULT_RELATIVE_STEP,
) -> float:
    """|d TTM / d mu_W| at the given production rate (wafers/week).

    ``ttm_at_rate`` maps an absolute wafer rate for one node to total TTM
    in weeks with everything else held fixed. Time-to-market generally
    increases as production rate decreases (Sec. 4), so the derivative is
    negative; CAS uses its absolute value.
    """
    if rate <= 0.0:
        raise InvalidParameterError(
            f"production rate must be positive, got {rate}"
        )
    if not 0.0 < relative_step < 1.0:
        raise InvalidParameterError(
            f"relative step must be in (0, 1), got {relative_step}"
        )
    step = rate * relative_step
    slope = central_difference(ttm_at_rate, rate, step)
    return abs(slope)
