"""Market conditions: the ``c`` in TTM(c, d, n, p).

The paper folds the supply-chain state into two per-node quantities:

* a **capacity fraction** scaling the foundry's maximum wafer production
  rate (production-side disruptions; the x-axis of Figs. 3, 9, 11–13), and
* a **quoted queue time** (foundry lead time, Eq. 4). Following Sec. 6.3,
  the quote fixes a number of wafers ahead of the order
  (``queue_weeks x rate at quote time``); if capacity later degrades, the
  same backlog takes proportionally longer to drain, which is exactly what
  makes queued designs less agile (Figs. 11 and 12).

:class:`MarketConditions` is an immutable value object; deriving a variant
(e.g. for a capacity sweep) returns a new instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..errors import InvalidParameterError


@dataclass(frozen=True)
class MarketConditions:
    """Per-node capacity fractions and quoted queue times.

    Attributes
    ----------
    capacity_fraction:
        node name -> fraction of the node's maximum wafer rate currently
        available. Missing nodes default to ``default_capacity``.
    queue_weeks:
        node name -> lead time in weeks quoted *at full production rate*
        (the quote pins the backlog in wafers, Sec. 6.3). Missing nodes
        default to ``default_queue_weeks``.
    default_capacity:
        Capacity fraction for nodes not listed explicitly (1.0 = the
        paper's nominal conditions).
    default_queue_weeks:
        Queue weeks for nodes not listed explicitly (0 = the paper's
        "most optimistic estimate", Sec. 5).
    """

    capacity_fraction: Mapping[str, float] = field(default_factory=dict)
    queue_weeks: Mapping[str, float] = field(default_factory=dict)
    default_capacity: float = 1.0
    default_queue_weeks: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "capacity_fraction", dict(self.capacity_fraction))
        object.__setattr__(self, "queue_weeks", dict(self.queue_weeks))
        if self.default_capacity < 0.0:
            raise InvalidParameterError(
                f"default capacity must be >= 0, got {self.default_capacity}"
            )
        if self.default_queue_weeks < 0.0:
            raise InvalidParameterError(
                f"default queue weeks must be >= 0, got {self.default_queue_weeks}"
            )
        for name, fraction in self.capacity_fraction.items():
            if fraction < 0.0:
                raise InvalidParameterError(
                    f"capacity fraction must be >= 0, got {fraction} for {name!r}"
                )
        for name, weeks in self.queue_weeks.items():
            if weeks < 0.0:
                raise InvalidParameterError(
                    f"queue weeks must be >= 0, got {weeks} for {name!r}"
                )

    @classmethod
    def nominal(cls) -> "MarketConditions":
        """Full capacity everywhere, empty queues (the paper's default)."""
        return cls()

    def capacity_for(self, node_name: str) -> float:
        """Capacity fraction in effect for a node."""
        return self.capacity_fraction.get(node_name, self.default_capacity)

    def queue_weeks_for(self, node_name: str) -> float:
        """Quoted lead time (weeks at full rate) in effect for a node."""
        return self.queue_weeks.get(node_name, self.default_queue_weeks)

    # -- Derivation helpers ---------------------------------------------------

    def with_capacity(self, node_name: str, fraction: float) -> "MarketConditions":
        """A copy with one node's capacity fraction replaced."""
        updated = dict(self.capacity_fraction)
        updated[node_name] = fraction
        return MarketConditions(
            capacity_fraction=updated,
            queue_weeks=self.queue_weeks,
            default_capacity=self.default_capacity,
            default_queue_weeks=self.default_queue_weeks,
        )

    def with_global_capacity(self, fraction: float) -> "MarketConditions":
        """A copy with *every* node scaled to ``fraction`` of max rate.

        This is the x-axis sweep of Figs. 3, 9, 11, 12 and 13c: explicit
        per-node entries are dropped and the default is replaced.
        """
        if fraction < 0.0:
            raise InvalidParameterError(
                f"capacity fraction must be >= 0, got {fraction}"
            )
        return MarketConditions(
            capacity_fraction={},
            queue_weeks=self.queue_weeks,
            default_capacity=fraction,
            default_queue_weeks=self.default_queue_weeks,
        )

    def with_queue(self, node_name: str, weeks: float) -> "MarketConditions":
        """A copy with one node's quoted queue time replaced."""
        updated = dict(self.queue_weeks)
        updated[node_name] = weeks
        return MarketConditions(
            capacity_fraction=self.capacity_fraction,
            queue_weeks=updated,
            default_capacity=self.default_capacity,
            default_queue_weeks=self.default_queue_weeks,
        )

    def with_global_queue(self, weeks: float) -> "MarketConditions":
        """A copy quoting the same lead time on every node."""
        if weeks < 0.0:
            raise InvalidParameterError(f"queue weeks must be >= 0, got {weeks}")
        return MarketConditions(
            capacity_fraction=self.capacity_fraction,
            queue_weeks={},
            default_capacity=self.default_capacity,
            default_queue_weeks=weeks,
        )

    # -- Reporting -------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Plain-dict summary, handy for experiment logs."""
        return {
            "capacity_fraction": dict(self.capacity_fraction),
            "queue_weeks": dict(self.queue_weeks),
            "default_capacity": self.default_capacity,
            "default_queue_weeks": self.default_queue_weeks,
        }
