"""Dynamic foundry-queue simulation.

The TTM model abstracts foundry demand into a quoted lead time (Eq. 4:
``T_queue = N_ahead / mu_W``). The paper points at the supply-chain
literature's dynamic models (Sec. 8, citing Lin et al. [75] and Moench
et al. [84]) but stays static. This module closes that loop with a
discrete-time fluid simulation of one node's order book:

* each week, customers place orders (wafers) and the line starts up to
  ``mu_W(t)`` wafers from the backlog (FIFO);
* started wafers emerge ``L_fab`` weeks later;
* capacity shocks and demand surges are first-class events.

Two uses:

* **validation** — in steady state the simulated lead time of a probe
  order equals Eq. 4's backlog/rate, which a test asserts;
* **scenario generation** — :func:`lead_time_trace` converts a demand/
  capacity script into the per-week quoted queue a design would face,
  feeding :class:`~repro.market.conditions.MarketConditions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import InvalidParameterError


@dataclass(frozen=True)
class WeekState:
    """Snapshot of the order book at the end of one simulated week."""

    week: int
    demand_wafers: float
    capacity_wafers: float
    started_wafers: float
    backlog_wafers: float
    completed_wafers: float

    @property
    def quoted_lead_time_weeks(self) -> float:
        """Eq. 4 quote a new order would receive *now*."""
        if self.capacity_wafers <= 0.0:
            raise InvalidParameterError(
                "cannot quote a lead time with zero capacity"
            )
        return self.backlog_wafers / self.capacity_wafers


@dataclass
class FoundryQueue:
    """A single node's weekly order book and production line.

    Attributes
    ----------
    capacity_per_week:
        Nominal wafer starts per week (mu_W at full capacity).
    fab_latency_weeks:
        Whole weeks a started wafer spends in the line (L_fab).
    """

    capacity_per_week: float
    fab_latency_weeks: int
    backlog_wafers: float = 0.0
    week: int = 0
    _in_flight: List[float] = field(default_factory=list)
    history: List[WeekState] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity_per_week <= 0.0:
            raise InvalidParameterError(
                f"capacity must be positive, got {self.capacity_per_week}"
            )
        if self.fab_latency_weeks < 1:
            raise InvalidParameterError(
                f"fab latency must be >= 1 week, got {self.fab_latency_weeks}"
            )
        if self.backlog_wafers < 0.0:
            raise InvalidParameterError(
                f"backlog must be >= 0, got {self.backlog_wafers}"
            )
        # One pipeline slot per latency week; slot i completes in i+1 weeks.
        self._in_flight = [0.0] * self.fab_latency_weeks

    def step(
        self, demand_wafers: float, capacity_fraction: float = 1.0
    ) -> WeekState:
        """Advance one week: take orders, start wafers, finish wafers."""
        if demand_wafers < 0.0:
            raise InvalidParameterError(
                f"demand must be >= 0, got {demand_wafers}"
            )
        if capacity_fraction < 0.0:
            raise InvalidParameterError(
                f"capacity fraction must be >= 0, got {capacity_fraction}"
            )
        capacity = self.capacity_per_week * capacity_fraction
        self.backlog_wafers += demand_wafers
        started = min(self.backlog_wafers, capacity)
        self.backlog_wafers -= started
        completed = self._in_flight.pop(0)
        self._in_flight.append(started)
        self.week += 1
        state = WeekState(
            week=self.week,
            demand_wafers=demand_wafers,
            capacity_wafers=capacity,
            started_wafers=started,
            backlog_wafers=self.backlog_wafers,
            completed_wafers=completed,
        )
        self.history.append(state)
        return state

    @property
    def wafers_in_flight(self) -> float:
        """Wafers started but not yet out of the line."""
        return sum(self._in_flight)

    def total_completed(self) -> float:
        """Wafers delivered since the start of the simulation."""
        return sum(state.completed_wafers for state in self.history)

    def conservation_error(self, total_demand: float) -> float:
        """|demand - (backlog + in flight + completed)| (must be ~0)."""
        accounted = (
            self.backlog_wafers + self.wafers_in_flight + self.total_completed()
        )
        return abs(total_demand - accounted)


@dataclass(frozen=True)
class DemandScript:
    """A weekly demand/capacity scenario for one node.

    ``demand`` is wafers ordered per week; ``capacity_fraction`` (same
    length, default all-1.0) models production-side disruptions.
    """

    demand: Tuple[float, ...]
    capacity_fraction: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "demand", tuple(self.demand))
        fractions = tuple(self.capacity_fraction) or tuple(
            1.0 for _ in self.demand
        )
        object.__setattr__(self, "capacity_fraction", fractions)
        if not self.demand:
            raise InvalidParameterError("demand script must be non-empty")
        if len(self.capacity_fraction) != len(self.demand):
            raise InvalidParameterError(
                "capacity fractions must match the demand length"
            )

    @classmethod
    def steady(
        cls, weeks: int, demand_per_week: float
    ) -> "DemandScript":
        """Constant demand, full capacity."""
        if weeks < 1:
            raise InvalidParameterError(f"weeks must be >= 1, got {weeks}")
        return cls(demand=tuple(demand_per_week for _ in range(weeks)))

    def with_demand_surge(
        self, start: int, duration: int, multiplier: float
    ) -> "DemandScript":
        """A COVID-style surge: demand x multiplier for a window."""
        demand = list(self.demand)
        for week in range(start, min(start + duration, len(demand))):
            demand[week] *= multiplier
        return DemandScript(
            demand=tuple(demand), capacity_fraction=self.capacity_fraction
        )

    def with_capacity_outage(
        self, start: int, duration: int, fraction: float
    ) -> "DemandScript":
        """A fab-fire-style outage: capacity x fraction for a window."""
        fractions = list(self.capacity_fraction)
        for week in range(start, min(start + duration, len(fractions))):
            fractions[week] *= fraction
        return DemandScript(demand=self.demand, capacity_fraction=tuple(fractions))


def simulate(
    queue: FoundryQueue, script: DemandScript
) -> List[WeekState]:
    """Run a script through a queue, returning the weekly states."""
    return [
        queue.step(demand, fraction)
        for demand, fraction in zip(script.demand, script.capacity_fraction)
    ]


def lead_time_trace(
    capacity_per_week: float,
    fab_latency_weeks: int,
    script: DemandScript,
) -> List[float]:
    """Quoted lead time (weeks) a new order would face, week by week.

    This is the dynamic counterpart of the static ``queue_weeks`` input:
    feed any entry into ``MarketConditions.with_queue`` to evaluate a
    design that places its order that week.
    """
    queue = FoundryQueue(
        capacity_per_week=capacity_per_week,
        fab_latency_weeks=fab_latency_weeks,
    )
    states = simulate(queue, script)
    return [state.quoted_lead_time_weeks for state in states]


def order_completion_week(
    queue_states: Sequence[WeekState],
    order_week: int,
    order_wafers: float,
    capacity_per_week: float,
    fab_latency_weeks: int,
) -> Optional[float]:
    """Week a probe order placed at ``order_week`` would fully ship.

    Approximates the order's drain through the backlog present at order
    time (FIFO): the order's last wafer starts once the backlog plus its
    own wafers have been started, then spends L_fab in the line. Returns
    ``None`` if the scripted horizon ends first.
    """
    if order_week < 0 or order_week >= len(queue_states):
        raise InvalidParameterError(
            f"order week {order_week} outside the simulated horizon"
        )
    if order_wafers <= 0.0:
        raise InvalidParameterError(
            f"order must be positive, got {order_wafers}"
        )
    ahead = queue_states[order_week].backlog_wafers
    remaining = ahead + order_wafers
    for state in queue_states[order_week + 1:]:
        remaining -= state.started_wafers
        if remaining <= 0.0:
            return state.week + fab_latency_weeks
    return None


def summarize(states: Sequence[WeekState]) -> Dict[str, float]:
    """Headline statistics of a simulated horizon."""
    if not states:
        raise InvalidParameterError("no states to summarize")
    lead_times = [s.quoted_lead_time_weeks for s in states]
    return {
        "weeks": float(len(states)),
        "peak_backlog_wafers": max(s.backlog_wafers for s in states),
        "peak_lead_time_weeks": max(lead_times),
        "final_lead_time_weeks": lead_times[-1],
        "total_completed_wafers": sum(s.completed_wafers for s in states),
        "utilization": sum(s.started_wafers for s in states)
        / sum(s.capacity_wafers for s in states),
    }


def equivalent_conditions(
    node_name: str, lead_time_weeks: float
) -> Mapping[str, float]:
    """The static ``queue_weeks`` mapping equivalent to a simulated quote."""
    if lead_time_weeks < 0.0:
        raise InvalidParameterError(
            f"lead time must be >= 0, got {lead_time_weeks}"
        )
    return {node_name: lead_time_weeks}
