"""Preset market scenarios used by the examples and stress tests.

The paper evaluates "current and speculative supply chain changes"
(abstract). These presets encode the situations its narrative describes so
examples and tests can reference them by name instead of hand-building
condition objects:

* ``nominal``            — full capacity, empty queues (paper default).
* ``shortage_2021``      — the 2020–present crunch: long quoted lead times
                           on every node still in production.
* ``advanced_drought``   — Taiwan drought / EUV constraints: advanced nodes
                           (14 nm and below) at reduced capacity.
* ``legacy_crunch``      — 200 mm-era tooling shortage: legacy nodes
                           (65 nm and above) at reduced capacity.
* ``fab_fire_28nm``      — a single-fab outage slashing 28 nm capacity
                           (Renesas-fire style event).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..technology.database import ROADMAP, NANOMETERS
from .conditions import MarketConditions

#: Nodes at 14 nm and below (the "advanced" half of the roadmap).
ADVANCED_NODES: Tuple[str, ...] = tuple(
    name for name in ROADMAP if NANOMETERS[name] <= 14.0
)

#: Nodes at 65 nm and above (the "legacy" half of the roadmap).
LEGACY_NODES: Tuple[str, ...] = tuple(
    name for name in ROADMAP if NANOMETERS[name] >= 65.0
)


def nominal() -> MarketConditions:
    """Full capacity everywhere, no queues."""
    return MarketConditions.nominal()


def shortage_2021(queue_weeks: float = 4.0) -> MarketConditions:
    """Demand shock: every node quotes ``queue_weeks`` of lead time.

    Mirrors Sec. 6.3, where queue time (not capacity) is the disruption.
    """
    return MarketConditions.nominal().with_global_queue(queue_weeks)


def advanced_drought(capacity: float = 0.6) -> MarketConditions:
    """Advanced nodes (<= 14 nm) throttled to ``capacity`` of max rate."""
    return MarketConditions(
        capacity_fraction={name: capacity for name in ADVANCED_NODES}
    )


def legacy_crunch(capacity: float = 0.5) -> MarketConditions:
    """Legacy nodes (>= 65 nm) throttled to ``capacity`` of max rate."""
    return MarketConditions(
        capacity_fraction={name: capacity for name in LEGACY_NODES}
    )


def fab_fire(node: str = "28nm", capacity: float = 0.3) -> MarketConditions:
    """A single node's capacity slashed by a localized outage."""
    return MarketConditions(capacity_fraction={node: capacity})


#: Registry of named scenario factories (zero-argument defaults).
SCENARIOS: Dict[str, Callable[[], MarketConditions]] = {
    "nominal": nominal,
    "shortage_2021": shortage_2021,
    "advanced_drought": advanced_drought,
    "legacy_crunch": legacy_crunch,
    "fab_fire_28nm": fab_fire,
}


def by_name(name: str) -> MarketConditions:
    """Look up a scenario by registry name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
    return factory()
