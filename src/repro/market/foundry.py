"""Foundry abstraction: technology database + market conditions.

A :class:`Foundry` answers the supply-side questions the TTM model asks
(Eqs. 4 and 5): the *effective* wafer production rate of each node under
the current conditions, the backlog of wafers ahead of a new order, and
the resulting queue time. It holds no mutable state; a different market
scenario is a different ``Foundry`` wrapping the same database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import InvalidParameterError
from ..technology.database import TechnologyDatabase
from ..technology.node import ProcessNode
from .conditions import MarketConditions


@dataclass(frozen=True)
class Foundry:
    """Supply-side view of the chip-creation process.

    Attributes
    ----------
    technology:
        The process-node database (parameters at *maximum* capacity).
    conditions:
        Current market conditions applied on top of the database.
    """

    technology: TechnologyDatabase
    conditions: MarketConditions

    @classmethod
    def nominal(
        cls, technology: Optional[TechnologyDatabase] = None
    ) -> "Foundry":
        """A foundry at full capacity with empty queues."""
        return cls(
            technology=technology or TechnologyDatabase.default(),
            conditions=MarketConditions.nominal(),
        )

    def node(self, name: str) -> ProcessNode:
        """The node's (capacity-independent) parameters."""
        return self.technology[name]

    def wafer_rate_per_week(self, name: str) -> float:
        """Effective wafer production rate, wafers/week (mu_W in Eq. 4/5).

        Raises
        ------
        NodeUnavailableError
            If the node has zero maximum capacity (e.g. 20 nm / 10 nm) —
            no market recovery is modeled for nodes that left production.
        InvalidParameterError
            If the current capacity fraction is zero: a fully halted node
            would make every downstream time infinite.
        """
        node = self.technology.require_production(name)
        fraction = self.conditions.capacity_for(name)
        rate = node.max_wafer_rate_per_week * fraction
        if rate <= 0.0:
            raise InvalidParameterError(
                f"node {name!r} has zero effective capacity "
                f"(fraction {fraction}); time-to-market would be unbounded"
            )
        return rate

    def wafers_ahead(self, name: str) -> float:
        """Backlog N_W,ahead implied by the quoted lead time (Sec. 6.3).

        The quote is assumed issued at full production rate, so the backlog
        in *wafers* is ``queue_weeks x max rate``; draining it at a reduced
        rate takes proportionally longer.
        """
        node = self.technology.require_production(name)
        return self.conditions.queue_weeks_for(name) * node.max_wafer_rate_per_week

    def queue_weeks(self, name: str) -> float:
        """T_fab,queue (Eq. 4): backlog divided by the effective rate."""
        backlog = self.wafers_ahead(name)
        if backlog == 0.0:
            return 0.0
        return backlog / self.wafer_rate_per_week(name)

    def at_capacity(self, fraction: float) -> "Foundry":
        """This foundry with every node at ``fraction`` of max capacity."""
        return Foundry(
            technology=self.technology,
            conditions=self.conditions.with_global_capacity(fraction),
        )

    def with_conditions(self, conditions: MarketConditions) -> "Foundry":
        """This foundry under different market conditions."""
        return Foundry(technology=self.technology, conditions=conditions)

    def available_nodes(self) -> tuple:
        """Names of nodes that can currently fabricate wafers."""
        return tuple(
            node.name
            for node in self.technology.production_nodes()
            if self.conditions.capacity_for(node.name) > 0.0
        )
