"""Market-side modeling: conditions, foundry view, scenarios, dynamics."""

from .conditions import MarketConditions
from .dynamics import (
    DemandScript,
    FoundryQueue,
    WeekState,
    lead_time_trace,
    order_completion_week,
    simulate,
    summarize,
)
from .foundry import Foundry
from .scenarios import (
    ADVANCED_NODES,
    LEGACY_NODES,
    SCENARIOS,
    advanced_drought,
    by_name,
    fab_fire,
    legacy_crunch,
    nominal,
    shortage_2021,
)

__all__ = [
    "ADVANCED_NODES",
    "DemandScript",
    "Foundry",
    "FoundryQueue",
    "LEGACY_NODES",
    "MarketConditions",
    "SCENARIOS",
    "WeekState",
    "advanced_drought",
    "by_name",
    "fab_fire",
    "lead_time_trace",
    "legacy_crunch",
    "nominal",
    "order_completion_week",
    "shortage_2021",
    "simulate",
    "summarize",
]
