"""Binding the paper's six uncertain inputs to the TTM model.

The paper analyzes six inputs "that are difficult to estimate since they
are closely guarded by foundries and design firms" (Sec. 5):

    NTT   — total transistor count
    NUT   — unique transistor count
    D0    — defect density
    muW   — wafer production rate
    Lfab  — foundry latency
    LOSAT — testing/assembly/packaging latency

:func:`ttm_factor_function` returns a callable suitable for
:func:`repro.sensitivity.sobol.sobol_indices` and
:func:`repro.sensitivity.uncertainty.output_uncertainty`: it rebuilds a
monolithic design and a perturbed technology database from a factor dict
and evaluates total TTM at one process node.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional

from ..design.library.generic import monolithic_design
from ..errors import InvalidParameterError
from ..market.foundry import Foundry
from ..technology.database import TechnologyDatabase
from ..ttm.model import DEFAULT_ENGINEERS, TTMModel
from .distributions import DEFAULT_VARIATION, Factor

#: Canonical factor order used in Fig. 8's rows.
FACTOR_NAMES = ("NTT", "NUT", "D0", "muW", "Lfab", "LOSAT")


def ttm_factors(
    process: str,
    base_ntt: float,
    base_nut: float,
    technology: Optional[TechnologyDatabase] = None,
    variation: float = DEFAULT_VARIATION,
) -> List[Factor]:
    """The paper's six factors, centered on the node's point estimates."""
    db = technology or TechnologyDatabase.default()
    node = db.require_production(process)
    nominals = {
        "NTT": base_ntt,
        "NUT": base_nut,
        "D0": node.defect_density_per_cm2,
        "muW": node.wafer_rate_kwpm,
        "Lfab": node.fab_latency_weeks,
        "LOSAT": 6.0,
    }
    return [Factor(name, nominals[name], variation) for name in FACTOR_NAMES]


def ttm_factor_function(
    process: str,
    n_chips: float,
    technology: Optional[TechnologyDatabase] = None,
    design_name: str = "sensitivity-design",
    engineers: int = DEFAULT_ENGINEERS,
) -> Callable[[Mapping[str, float]], float]:
    """A ``{factor: value} -> TTM weeks`` function for one node.

    Each call rebuilds the design (NTT/NUT) and a perturbed copy of the
    technology database (D0, muW, Lfab), plus the model's TAP latency
    (LOSAT), then evaluates total TTM. Nominal market conditions are
    assumed, matching the paper's Fig. 8 setup.
    """
    db = technology or TechnologyDatabase.default()
    db.require_production(process)

    def build_model(values: Mapping[str, float]) -> TTMModel:
        perturbed = db.override(
            {
                process: {
                    "defect_density_per_cm2": values["D0"],
                    "wafer_rate_kwpm": values["muW"],
                    "fab_latency_weeks": values["Lfab"],
                }
            }
        )
        return TTMModel(
            foundry=Foundry.nominal(perturbed),
            engineers=engineers,
            tap_latency_weeks=values["LOSAT"],
        )

    def evaluate(values: Mapping[str, float]) -> float:
        _check_factors(values)
        ntt = values["NTT"]
        nut = min(values["NUT"], ntt)
        design = monolithic_design(design_name, process, ntt=ntt, nut=nut)
        return build_model(values).total_weeks(design, n_chips)

    return evaluate


def cas_factor_function(
    process: str,
    n_chips: float,
    technology: Optional[TechnologyDatabase] = None,
    design_name: str = "sensitivity-design",
    engineers: int = DEFAULT_ENGINEERS,
    capacity_fraction: float = 1.0,
) -> Callable[[Mapping[str, float]], float]:
    """A ``{factor: value} -> normalized CAS`` function for one node.

    The CAS counterpart of :func:`ttm_factor_function`, backing the
    confidence bands around the paper's Fig. 9 and Fig. 12 curves. The
    perturbed ``muW`` becomes the node's *maximum* rate; the sweep's
    ``capacity_fraction`` then scales it, exactly as in the figures.
    """
    from ..agility.cas import chip_agility_score

    db = technology or TechnologyDatabase.default()
    db.require_production(process)
    if capacity_fraction <= 0.0:
        raise InvalidParameterError(
            f"capacity fraction must be positive, got {capacity_fraction}"
        )

    def evaluate(values: Mapping[str, float]) -> float:
        _check_factors(values)
        ntt = values["NTT"]
        nut = min(values["NUT"], ntt)
        design = monolithic_design(design_name, process, ntt=ntt, nut=nut)
        perturbed = db.override(
            {
                process: {
                    "defect_density_per_cm2": values["D0"],
                    "wafer_rate_kwpm": values["muW"],
                    "fab_latency_weeks": values["Lfab"],
                }
            }
        )
        model = TTMModel(
            foundry=Foundry.nominal(perturbed),
            engineers=engineers,
            tap_latency_weeks=values["LOSAT"],
        ).at_capacity(capacity_fraction)
        return chip_agility_score(model, design, n_chips).normalized

    return evaluate


def _check_factors(values: Mapping[str, float]) -> None:
    missing = [name for name in FACTOR_NAMES if name not in values]
    if missing:
        raise InvalidParameterError(f"missing sensitivity factors: {missing}")
