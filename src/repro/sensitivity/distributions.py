"""Input-factor descriptions for the variance studies.

The paper varies six closely guarded inputs with a +-10% uniform error
range around the point estimates (Sec. 5, citing Sobol [107]) and reports
95% confidence intervals under +-10% and +-25% variance. A
:class:`Factor` is one such input: a name, its nominal value, and the
relative half-width of its uniform range.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError

#: The paper's default input variance for sensitivity analysis.
DEFAULT_VARIATION = 0.10

#: The wider variance used for the darker CI bands in Figs. 7, 9, 11, 12.
WIDE_VARIATION = 0.25


@dataclass(frozen=True)
class Factor:
    """A uniformly distributed model input.

    Attributes
    ----------
    name:
        Identifier used in result tables (e.g. ``"D0"``).
    nominal:
        Point estimate the range is centered on.
    variation:
        Relative half-width: values are uniform on
        ``[nominal * (1 - variation), nominal * (1 + variation)]``.
    """

    name: str
    nominal: float
    variation: float = DEFAULT_VARIATION

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("factor name must be non-empty")
        if self.nominal < 0.0:
            raise InvalidParameterError(
                f"factor {self.name!r}: nominal must be >= 0, got {self.nominal}"
            )
        if not 0.0 <= self.variation < 1.0:
            raise InvalidParameterError(
                f"factor {self.name!r}: variation must be in [0, 1), "
                f"got {self.variation}"
            )

    @property
    def low(self) -> float:
        """Lower bound of the uniform range."""
        return self.nominal * (1.0 - self.variation)

    @property
    def high(self) -> float:
        """Upper bound of the uniform range."""
        return self.nominal * (1.0 + self.variation)

    def with_variation(self, variation: float) -> "Factor":
        """This factor with a different error range."""
        return replace(self, variation=variation)

    def scale(self, unit_sample: float) -> float:
        """Map a unit-interval sample to the factor's range."""
        return self.low + (self.high - self.low) * unit_sample


def sample_matrix(
    factors: Sequence[Factor], n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """An ``(n_samples, k)`` matrix of factor draws (uniform, independent)."""
    if n_samples <= 0:
        raise InvalidParameterError(
            f"sample count must be positive, got {n_samples}"
        )
    if not factors:
        raise InvalidParameterError("at least one factor is required")
    unit = rng.random((n_samples, len(factors)))
    columns = [factor.scale(unit[:, i]) for i, factor in enumerate(factors)]
    return np.column_stack(columns)


def factor_names(factors: Sequence[Factor]) -> Tuple[str, ...]:
    """Names in factor order (ensures uniqueness)."""
    names = tuple(factor.name for factor in factors)
    if len(set(names)) != len(names):
        raise InvalidParameterError(f"duplicate factor names in {names}")
    return names
