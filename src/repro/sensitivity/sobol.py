"""Variance-based global sensitivity analysis (Sobol indices).

Implements the Saltelli sampling scheme with the Jansen estimators, the
standard machinery behind the paper's total-effect index S_T heatmap
(Fig. 8, citing Sobol [107]):

* two independent sample matrices ``A`` and ``B`` of size (N, k);
* k hybrid matrices ``AB_i`` (A with column i taken from B);
* first-order index  S_i  = (V - mean((f(B) - f(AB_i))^2) / 2) / V
  using the Jansen form  S_i = mean(f(B) * (f(AB_i) - f(A))) / V;
* total-effect index S_Ti = mean((f(A) - f(AB_i))^2) / (2 V).

Total cost is N * (k + 2) model evaluations. The paper reports averages
over 1024 samples for six factors, i.e. N = 128 — the default here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import InvalidParameterError
from ..obs.instrument import guard_trip
from .distributions import Factor, factor_names, sample_matrix

#: Base sample count giving the paper's 1024 total evaluations at k = 6.
DEFAULT_BASE_SAMPLES = 128

#: Seed for reproducible experiment outputs.
DEFAULT_SEED = 20230617  # ISCA '23 opening day


@dataclass(frozen=True)
class SobolResult:
    """First-order and total-effect indices for each factor.

    Indices are clipped to [0, 1] for reporting (the raw estimators can
    stray slightly outside under sampling noise); ``raw_first_order`` and
    ``raw_total_effect`` keep the unclipped values.
    """

    first_order: Mapping[str, float]
    total_effect: Mapping[str, float]
    raw_first_order: Mapping[str, float] = field(default_factory=dict)
    raw_total_effect: Mapping[str, float] = field(default_factory=dict)
    mean: float = 0.0
    variance: float = 0.0
    evaluations: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "first_order", dict(self.first_order))
        object.__setattr__(self, "total_effect", dict(self.total_effect))
        object.__setattr__(self, "raw_first_order", dict(self.raw_first_order))
        object.__setattr__(self, "raw_total_effect", dict(self.raw_total_effect))

    @property
    def dominant_factor(self) -> str:
        """The factor with the largest total-effect index."""
        return max(self.total_effect.items(), key=lambda item: item[1])[0]

    def ranked_total_effects(self) -> Sequence:
        """(name, S_T) pairs sorted by decreasing influence."""
        return sorted(
            self.total_effect.items(), key=lambda item: item[1], reverse=True
        )


def _check_finite(
    outputs: np.ndarray,
    matrix: np.ndarray,
    names: Tuple[str, ...],
    label: str,
) -> np.ndarray:
    """Reject NaN/inf model outputs, naming the offending factor row.

    NaN propagates silently through the Jansen estimators and produces
    NaN indices that *look* like results; failing fast with the factor
    values that triggered it makes the bad input debuggable.
    """
    finite = np.isfinite(outputs)
    if not np.all(finite):
        guard_trip("sobol")
        row = int(np.argmin(finite))
        values = dict(zip(names, (float(v) for v in matrix[row])))
        raise InvalidParameterError(
            f"model returned non-finite output {outputs[row]!r} for "
            f"sample row {row} of matrix {label}: {values}"
        )
    return outputs


def sobol_indices(
    function: Union[
        Callable[[Mapping[str, float]], float],
        Callable[[np.ndarray], np.ndarray],
    ],
    factors: Sequence[Factor],
    base_samples: int = DEFAULT_BASE_SAMPLES,
    seed: int = DEFAULT_SEED,
    rng: Optional[np.random.Generator] = None,
    vectorized: bool = False,
) -> SobolResult:
    """Estimate Sobol indices of ``function`` over the factor ranges.

    Parameters
    ----------
    function:
        Maps a ``{factor name: value}`` dict to a scalar output (e.g. the
        TTM of a design with six perturbed inputs). With
        ``vectorized=True``, maps an ``(m, k)`` sample matrix (columns in
        factor order) to an ``(m,)`` output array instead, so each
        Saltelli matrix is evaluated in one shot --
        :func:`repro.engine.ttm_factor_batch_function` provides the fast
        TTM objective, :func:`repro.engine.rowwise_batch_function` lifts
        any scalar objective.
    factors:
        The uncertain inputs with their uniform ranges.
    base_samples:
        N in the Saltelli scheme; total evaluations are N * (k + 2).
    seed / rng:
        Reproducibility controls; pass an explicit generator to chain
        analyses. The sample stream is identical for both calling
        conventions, so scalar and vectorized runs of the same objective
        agree to round-off.
    vectorized:
        Treat ``function`` as the array-in/array-out fast path.
    """
    names = factor_names(factors)
    if base_samples < 2:
        raise InvalidParameterError(
            f"base sample count must be >= 2, got {base_samples}"
        )
    generator = rng if rng is not None else np.random.default_rng(seed)
    matrix_a = sample_matrix(factors, base_samples, generator)
    matrix_b = sample_matrix(factors, base_samples, generator)

    def evaluate(matrix: np.ndarray, label: str) -> np.ndarray:
        if vectorized:
            outputs = np.asarray(function(matrix), dtype=float)
            if outputs.shape != (matrix.shape[0],):
                raise InvalidParameterError(
                    f"vectorized objective must return shape "
                    f"({matrix.shape[0]},), got {outputs.shape}"
                )
        else:
            outputs = np.array(
                [function(dict(zip(names, row))) for row in matrix],
                dtype=float,
            )
        return _check_finite(outputs, matrix, names, label)

    y_a = evaluate(matrix_a, "A")
    y_b = evaluate(matrix_b, "B")
    evaluations = 2 * base_samples

    combined = np.concatenate([y_a, y_b])
    variance = float(np.var(combined))
    mean = float(np.mean(combined))

    raw_first: Dict[str, float] = {}
    raw_total: Dict[str, float] = {}
    for i, name in enumerate(names):
        matrix_ab = matrix_a.copy()
        matrix_ab[:, i] = matrix_b[:, i]
        y_ab = evaluate(matrix_ab, f"AB[{name}]")
        evaluations += base_samples
        if variance == 0.0:
            raw_first[name] = 0.0
            raw_total[name] = 0.0
            continue
        # Jansen estimators (Saltelli et al. 2010, Table 2).
        raw_first[name] = float(
            (variance - 0.5 * np.mean((y_b - y_ab) ** 2)) / variance
        )
        raw_total[name] = float(0.5 * np.mean((y_a - y_ab) ** 2) / variance)

    clip = lambda value: float(min(max(value, 0.0), 1.0))  # noqa: E731
    return SobolResult(
        first_order={name: clip(value) for name, value in raw_first.items()},
        total_effect={name: clip(value) for name, value in raw_total.items()},
        raw_first_order=raw_first,
        raw_total_effect=raw_total,
        mean=mean,
        variance=variance,
        evaluations=evaluations,
    )
