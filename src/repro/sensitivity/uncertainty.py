"""Monte Carlo output uncertainty under input variance.

The paper's figures carry error bars/bands: the 95% confidence interval of
the output (TTM or CAS) when the six guarded inputs vary by +-10% (pink /
light) and +-25% (green / dark). This module estimates those intervals by
plain Monte Carlo over the factor ranges, and also reports the mean of the
samples (the paper's reported point values are averages of 1024 samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .distributions import Factor, factor_names, sample_matrix
from .sobol import DEFAULT_SEED

#: Matches the paper's "average of 1024 samples".
DEFAULT_SAMPLES = 1024

#: Central confidence mass for the reported interval.
DEFAULT_CONFIDENCE = 0.95


@dataclass(frozen=True)
class UncertaintyResult:
    """Summary statistics of the output distribution."""

    mean: float
    std: float
    lower: float
    upper: float
    confidence: float
    samples: int

    @property
    def interval_width(self) -> float:
        """Width of the confidence interval."""
        return self.upper - self.lower

    @property
    def relative_halfwidth(self) -> float:
        """Half the CI width relative to the mean (0 if mean is 0)."""
        if self.mean == 0.0:
            return 0.0
        return 0.5 * self.interval_width / abs(self.mean)


def output_uncertainty(
    function: Callable[[Mapping[str, float]], float],
    factors: Sequence[Factor],
    samples: int = DEFAULT_SAMPLES,
    confidence: float = DEFAULT_CONFIDENCE,
    seed: int = DEFAULT_SEED,
    rng: Optional[np.random.Generator] = None,
) -> UncertaintyResult:
    """Mean and central confidence interval of ``function`` over factors."""
    names = factor_names(factors)
    if samples < 2:
        raise InvalidParameterError(f"sample count must be >= 2, got {samples}")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    generator = rng if rng is not None else np.random.default_rng(seed)
    matrix = sample_matrix(factors, samples, generator)
    outputs = np.array(
        [function(dict(zip(names, row))) for row in matrix], dtype=float
    )
    tail = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(outputs, [tail, 1.0 - tail])
    return UncertaintyResult(
        mean=float(np.mean(outputs)),
        std=float(np.std(outputs)),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        samples=samples,
    )


def uncertainty_bands(
    function: Callable[[Mapping[str, float]], float],
    factors: Sequence[Factor],
    variations: Sequence[float] = (0.10, 0.25),
    samples: int = DEFAULT_SAMPLES,
    confidence: float = DEFAULT_CONFIDENCE,
    seed: int = DEFAULT_SEED,
) -> Mapping[float, UncertaintyResult]:
    """One :class:`UncertaintyResult` per variation level.

    Reproduces the paired +-10% / +-25% bands of Figs. 7, 9, 11 and 12.
    """
    bands = {}
    for variation in variations:
        widened = [factor.with_variation(variation) for factor in factors]
        bands[variation] = output_uncertainty(
            function,
            widened,
            samples=samples,
            confidence=confidence,
            seed=seed,
        )
    return bands
