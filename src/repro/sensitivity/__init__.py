"""Variance-based sensitivity analysis and uncertainty bands (Sec. 5)."""

from .distributions import (
    DEFAULT_VARIATION,
    Factor,
    WIDE_VARIATION,
    factor_names,
    sample_matrix,
)
from .sobol import (
    DEFAULT_BASE_SAMPLES,
    DEFAULT_SEED,
    SobolResult,
    sobol_indices,
)
from .ttm_factors import (
    FACTOR_NAMES,
    cas_factor_function,
    ttm_factor_function,
    ttm_factors,
)
from .uncertainty import (
    DEFAULT_CONFIDENCE,
    DEFAULT_SAMPLES,
    UncertaintyResult,
    output_uncertainty,
    uncertainty_bands,
)

__all__ = [
    "DEFAULT_BASE_SAMPLES",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_SAMPLES",
    "DEFAULT_SEED",
    "DEFAULT_VARIATION",
    "FACTOR_NAMES",
    "Factor",
    "SobolResult",
    "UncertaintyResult",
    "WIDE_VARIATION",
    "cas_factor_function",
    "factor_names",
    "output_uncertainty",
    "sample_matrix",
    "sobol_indices",
    "ttm_factor_function",
    "ttm_factors",
    "uncertainty_bands",
]
