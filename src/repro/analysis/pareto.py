"""Pareto-front utilities for multi-objective design-space views.

The cache study (Figs. 4 and 5) is a two-objective trade-off (performance
vs time-to-market / cost); these helpers identify the non-dominated
configurations and the knee points the paper's arrows mark.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

import numpy as np

from ..errors import InvalidParameterError

T = TypeVar("T")


def dominates(
    a: Sequence[float], b: Sequence[float], maximize: Sequence[bool]
) -> bool:
    """True if objective vector ``a`` Pareto-dominates ``b``.

    ``maximize[i]`` selects the direction of objective i. Domination
    requires at-least-as-good everywhere and strictly better somewhere.
    """
    if not (len(a) == len(b) == len(maximize)):
        raise InvalidParameterError("objective vectors must share a length")
    at_least_as_good = True
    strictly_better = False
    for value_a, value_b, bigger_is_better in zip(a, b, maximize):
        better = value_a > value_b if bigger_is_better else value_a < value_b
        equal = value_a == value_b
        if not (better or equal):
            at_least_as_good = False
            break
        if better:
            strictly_better = True
    return at_least_as_good and strictly_better


def pareto_mask(
    vectors: Sequence[Sequence[float]], maximize: Sequence[bool]
) -> np.ndarray:
    """Boolean mask of the non-dominated rows of an objective matrix.

    Vectorized pairwise domination test (one ``(n, n, k)`` broadcast
    instead of a Python double loop) with the same semantics as
    :func:`dominates`: row ``j`` dominates row ``i`` when it is at least
    as good on every objective and strictly better on one.
    """
    matrix = np.asarray(vectors, dtype=float)
    if matrix.size == 0:
        return np.zeros(0, dtype=bool)
    if matrix.ndim != 2 or matrix.shape[1] != len(maximize):
        raise InvalidParameterError("objective vectors must share a length")
    # Flip minimize-objectives so "bigger is better" holds everywhere.
    signs = np.where(np.asarray(maximize, dtype=bool), 1.0, -1.0)
    oriented = matrix * signs
    # better[j, i, k]: row j strictly better than row i on objective k.
    better = oriented[:, None, :] > oriented[None, :, :]
    as_good = oriented[:, None, :] >= oriented[None, :, :]
    dominates_pair = np.all(as_good, axis=2) & np.any(better, axis=2)
    return ~np.any(dominates_pair, axis=0)


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
    maximize: Sequence[bool],
) -> List[T]:
    """The non-dominated subset of ``items`` (stable order)."""
    if not items:
        return []
    vectors = [tuple(objectives(item)) for item in items]
    for vector in vectors:
        if len(vector) != len(maximize):
            raise InvalidParameterError(
                "objective vectors must share a length"
            )
    keep = pareto_mask(vectors, maximize)
    return [item for item, kept in zip(items, keep) if kept]


def knee_point(
    items: Sequence[T],
    objectives: Callable[[T], Tuple[float, float]],
) -> T:
    """The item maximizing the product of two (normalized) objectives.

    A simple knee heuristic for two maximize-objectives: normalize each
    axis to its maximum, pick the point with the largest area.
    """
    if not items:
        raise InvalidParameterError("knee point of an empty sequence")
    pairs = [objectives(item) for item in items]
    max_x = max(pair[0] for pair in pairs)
    max_y = max(pair[1] for pair in pairs)
    if max_x <= 0.0 or max_y <= 0.0:
        raise InvalidParameterError("knee point needs positive objectives")
    best_index = max(
        range(len(items)),
        key=lambda i: (pairs[i][0] / max_x) * (pairs[i][1] / max_y),
    )
    return items[best_index]
