"""Pareto-front utilities for multi-objective design-space views.

The cache study (Figs. 4 and 5) is a two-objective trade-off (performance
vs time-to-market / cost); these helpers identify the non-dominated
configurations and the knee points the paper's arrows mark.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

from ..errors import InvalidParameterError

T = TypeVar("T")


def dominates(
    a: Sequence[float], b: Sequence[float], maximize: Sequence[bool]
) -> bool:
    """True if objective vector ``a`` Pareto-dominates ``b``.

    ``maximize[i]`` selects the direction of objective i. Domination
    requires at-least-as-good everywhere and strictly better somewhere.
    """
    if not (len(a) == len(b) == len(maximize)):
        raise InvalidParameterError("objective vectors must share a length")
    at_least_as_good = True
    strictly_better = False
    for value_a, value_b, bigger_is_better in zip(a, b, maximize):
        better = value_a > value_b if bigger_is_better else value_a < value_b
        equal = value_a == value_b
        if not (better or equal):
            at_least_as_good = False
            break
        if better:
            strictly_better = True
    return at_least_as_good and strictly_better


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
    maximize: Sequence[bool],
) -> List[T]:
    """The non-dominated subset of ``items`` (stable order)."""
    if not items:
        return []
    vectors = [tuple(objectives(item)) for item in items]
    front = []
    for i, item in enumerate(items):
        dominated = any(
            dominates(vectors[j], vectors[i], maximize)
            for j in range(len(items))
            if j != i
        )
        if not dominated:
            front.append(item)
    return front


def knee_point(
    items: Sequence[T],
    objectives: Callable[[T], Tuple[float, float]],
) -> T:
    """The item maximizing the product of two (normalized) objectives.

    A simple knee heuristic for two maximize-objectives: normalize each
    axis to its maximum, pick the point with the largest area.
    """
    if not items:
        raise InvalidParameterError("knee point of an empty sequence")
    pairs = [objectives(item) for item in items]
    max_x = max(pair[0] for pair in pairs)
    max_y = max(pair[1] for pair in pairs)
    if max_x <= 0.0 or max_y <= 0.0:
        raise InvalidParameterError("knee point needs positive objectives")
    best_index = max(
        range(len(items)),
        key=lambda i: (pairs[i][0] / max_x) * (pairs[i][1] / max_y),
    )
    return items[best_index]
