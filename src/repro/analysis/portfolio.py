"""Portfolio stress assessment: designs x market scenarios.

Firms rarely ship one chip. This helper evaluates a whole product
portfolio against a set of market scenarios, producing the TTM-delta
matrix a planning review wants: which products slip under which
disruptions, which are naturally hedged, and how agile each is at
nominal conditions. It formalizes the `shortage_war_room.py` example as
a tested API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from ..agility.cas import chip_agility_score
from ..analysis.tables import format_table
from ..design.chip import ChipDesign
from ..engine.portfolio import portfolio_cas, portfolio_ttm
from ..errors import InvalidParameterError
from ..market.conditions import MarketConditions
from ..ttm.model import TTMModel


@dataclass(frozen=True)
class PortfolioEntry:
    """One product: a design plus its production volume."""

    design: ChipDesign
    n_chips: float

    def __post_init__(self) -> None:
        if self.n_chips <= 0.0:
            raise InvalidParameterError(
                f"portfolio volume must be positive, got {self.n_chips}"
            )


@dataclass(frozen=True)
class PortfolioAssessment:
    """TTM deltas per (product, scenario) plus nominal TTM and CAS."""

    nominal_ttm: Mapping[str, float]
    cas: Mapping[str, float]
    delta_weeks: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nominal_ttm", dict(self.nominal_ttm))
        object.__setattr__(self, "cas", dict(self.cas))
        object.__setattr__(self, "delta_weeks", dict(self.delta_weeks))

    @property
    def products(self) -> Tuple[str, ...]:
        """Product names in portfolio order."""
        return tuple(self.nominal_ttm)

    @property
    def scenarios(self) -> Tuple[str, ...]:
        """Scenario names in first-appearance order."""
        seen: Dict[str, None] = {}
        for _, scenario in self.delta_weeks:
            seen.setdefault(scenario, None)
        return tuple(seen)

    def delta(self, product: str, scenario: str) -> float:
        """TTM slip (weeks) of one product under one scenario."""
        return self.delta_weeks[(product, scenario)]

    def worst_scenario_for(self, product: str) -> str:
        """The scenario that slips a product the most."""
        return max(
            self.scenarios, key=lambda scenario: self.delta(product, scenario)
        )

    def most_exposed_product(self, scenario: str) -> str:
        """The product a scenario hurts the most."""
        return max(
            self.products, key=lambda product: self.delta(product, scenario)
        )

    def table(self) -> str:
        """The assessment matrix."""
        headers = (
            ["product", "nominal wk"]
            + [f"+wk {name}" for name in self.scenarios]
            + ["CAS"]
        )
        rows = []
        for product in self.products:
            rows.append(
                [product, self.nominal_ttm[product]]
                + [self.delta(product, name) for name in self.scenarios]
                + [self.cas[product]]
            )
        return format_table(headers, rows)


def assess_portfolio(
    model: TTMModel,
    portfolio: Mapping[str, PortfolioEntry],
    scenarios: Mapping[str, MarketConditions],
    engine: str = "portfolio",
) -> PortfolioAssessment:
    """Evaluate every product under every scenario.

    CAS is evaluated at the model's base conditions; deltas are against
    each product's TTM under those same base conditions.
    ``engine="portfolio"`` (default) evaluates all products through one
    fused kernel call per scenario (plus one TTM and one CAS call at
    base conditions); ``engine="scalar"`` keeps the per-(product,
    scenario) scalar loop as the equivalence oracle.
    """
    if not portfolio:
        raise InvalidParameterError("portfolio must contain products")
    if not scenarios:
        raise InvalidParameterError("need at least one scenario")
    if engine == "portfolio":
        products = tuple(portfolio)
        designs = tuple(entry.design for entry in portfolio.values())
        volumes = np.asarray(
            [entry.n_chips for entry in portfolio.values()]
        ).reshape(-1, 1)
        base_ttm = portfolio_ttm(model, designs, volumes).total_weeks[:, 0]
        base_cas = portfolio_cas(model, designs, volumes).normalized[:, 0]
        nominal = {
            product: float(base_ttm[i]) for i, product in enumerate(products)
        }
        agility = {
            product: float(base_cas[i]) for i, product in enumerate(products)
        }
        deltas: Dict[Tuple[str, str], float] = {}
        for scenario_name, conditions in scenarios.items():
            stressed = model.with_foundry(
                model.foundry.with_conditions(conditions)
            )
            stressed_ttm = portfolio_ttm(
                stressed, designs, volumes
            ).total_weeks[:, 0]
            for i, product in enumerate(products):
                deltas[(product, scenario_name)] = float(
                    stressed_ttm[i] - base_ttm[i]
                )
        return PortfolioAssessment(
            nominal_ttm=nominal, cas=agility, delta_weeks=deltas
        )
    if engine != "scalar":
        raise InvalidParameterError(
            f"unknown engine {engine!r}; use 'portfolio' or 'scalar'"
        )
    nominal: Dict[str, float] = {}
    agility: Dict[str, float] = {}
    deltas: Dict[Tuple[str, str], float] = {}
    for product, entry in portfolio.items():
        nominal[product] = model.total_weeks(entry.design, entry.n_chips)
        agility[product] = chip_agility_score(
            model, entry.design, entry.n_chips
        ).normalized
        for scenario_name, conditions in scenarios.items():
            stressed = model.with_foundry(
                model.foundry.with_conditions(conditions)
            )
            deltas[(product, scenario_name)] = (
                stressed.total_weeks(entry.design, entry.n_chips)
                - nominal[product]
            )
    return PortfolioAssessment(
        nominal_ttm=nominal, cas=agility, delta_weeks=deltas
    )
