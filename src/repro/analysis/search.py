"""Constrained design-space search.

The case studies each sweep one axis at a time; real design work picks a
*point* in the joint space (node x core count x cache sizes x ...) under
constraints (cost caps, TTM deadlines, minimum performance). This module
provides a small, explicit grid-search engine over named parameter
domains:

    space = SearchSpace({"process": [...], "cores": [...]})
    best = grid_search(
        space,
        objective=lambda cfg: evaluate(cfg).ipc_per_week,
        constraints=[lambda cfg: evaluate(cfg).cost <= CAP],
    )

No cleverness — the paper-scale spaces are a few thousand points and an
exhaustive sweep is both exact and auditable. The engine reports how many
points were feasible so silent over-constraining is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import InvalidParameterError

#: One point in the space: parameter name -> chosen value.
Configuration = Dict[str, object]


@dataclass(frozen=True)
class SearchSpace:
    """Named, finite parameter domains."""

    domains: Mapping[str, Tuple[object, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen = {
            name: tuple(values) for name, values in self.domains.items()
        }
        object.__setattr__(self, "domains", frozen)
        if not frozen:
            raise InvalidParameterError("search space must be non-empty")
        for name, values in frozen.items():
            if not values:
                raise InvalidParameterError(
                    f"domain {name!r} must contain at least one value"
                )

    @property
    def size(self) -> int:
        """Number of points in the full grid."""
        total = 1
        for values in self.domains.values():
            total *= len(values)
        return total

    def points(self) -> List[Configuration]:
        """Every configuration, in deterministic order."""
        names = list(self.domains)
        return [
            dict(zip(names, combo))
            for combo in product(*(self.domains[name] for name in names))
        ]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a grid search."""

    best: Configuration
    best_score: float
    evaluated: int
    feasible: int

    @property
    def feasible_fraction(self) -> float:
        """Share of the grid that satisfied all constraints."""
        return self.feasible / self.evaluated if self.evaluated else 0.0


def grid_search(
    space: SearchSpace,
    objective: Callable[[Configuration], float],
    constraints: Sequence[Callable[[Configuration], bool]] = (),
    maximize: bool = True,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> SearchResult:
    """Exhaustively search the space for the best feasible point.

    Raises if no point satisfies every constraint, naming the feasible
    count so the caller can tell an over-tight cap from an empty space.

    ``executor``/``max_workers`` fan the per-point evaluations out through
    :func:`repro.engine.parallel.parallel_map`; the reduction stays serial
    and keeps grid order, so ties resolve to the same (first) point under
    every executor.
    """
    from ..engine.parallel import parallel_map

    def evaluate(configuration: Configuration) -> Optional[float]:
        if not all(constraint(configuration) for constraint in constraints):
            return None
        return objective(configuration)

    points = space.points()
    scores = parallel_map(
        evaluate, points, executor=executor, max_workers=max_workers
    )

    best: Configuration = {}
    best_score = float("-inf") if maximize else float("inf")
    evaluated = len(points)
    feasible = 0
    for configuration, score in zip(points, scores):
        if score is None:
            continue
        feasible += 1
        better = score > best_score if maximize else score < best_score
        if better:
            best, best_score = configuration, score
    if feasible == 0:
        raise InvalidParameterError(
            f"no feasible point: {evaluated} evaluated, 0 satisfied the "
            f"{len(constraints)} constraint(s)"
        )
    return SearchResult(
        best=best,
        best_score=best_score,
        evaluated=evaluated,
        feasible=feasible,
    )
