"""Parameter-sweep helpers shared by the experiments."""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import InvalidParameterError

if TYPE_CHECKING:
    import numpy as np

    from ..design.chip import ChipDesign
    from ..ttm.model import TTMModel

T = TypeVar("T")


def capacity_fractions(
    start: float = 0.05, stop: float = 1.0, count: int = 20
) -> Tuple[float, ...]:
    """Evenly spaced capacity fractions for CAS/TTM sweeps (Figs. 3, 9-13).

    Fractions must stay strictly positive — zero capacity makes TTM
    unbounded — so the default sweep starts at 5% of max rate.
    """
    if count < 2:
        raise InvalidParameterError(f"count must be >= 2, got {count}")
    if not 0.0 < start < stop <= 1.0:
        raise InvalidParameterError(
            f"need 0 < start < stop <= 1, got start={start}, stop={stop}"
        )
    step = (stop - start) / (count - 1)
    return tuple(start + i * step for i in range(count))


def capacity_curves(
    model: "TTMModel",
    designs: "Sequence[ChipDesign]",
    n_chips: float,
    fractions: Sequence[float],
) -> "Tuple[np.ndarray, np.ndarray]":
    """TTM and normalized-CAS matrices over a shared capacity sweep.

    Both matrices have shape ``(n_designs, n_fractions)`` and come from
    one compiled portfolio (one fused kernel dispatch per metric, no
    per-design Python loop); row ``i`` matches the per-design
    ``ttm_over_capacity`` / ``cas_over_capacity`` curves to round-off.
    """
    from ..engine.portfolio import (
        portfolio_cas_over_capacity,
        portfolio_ttm_over_capacity,
    )

    designs = tuple(designs)
    return (
        portfolio_ttm_over_capacity(model, designs, n_chips, fractions),
        portfolio_cas_over_capacity(model, designs, n_chips, fractions),
    )


def chip_quantities() -> Tuple[float, ...]:
    """The paper's final-chip quantities (Figs. 6 and 10): 1K .. 100M."""
    return (1e3, 1e4, 1e5, 1e6, 1e7, 1e8)


def normalized(values: Sequence[float]) -> List[float]:
    """Values scaled so the maximum is 1.0 (Fig. 5's axes)."""
    if not values:
        raise InvalidParameterError("cannot normalize an empty sequence")
    peak = max(values)
    if peak <= 0.0:
        raise InvalidParameterError(
            f"normalization needs a positive maximum, got {peak}"
        )
    return [value / peak for value in values]


def argmax(items: Iterable[T], key: Callable[[T], float]) -> T:
    """The item maximizing ``key`` (explicit name for experiment code)."""
    best = None
    best_value = None
    for item in items:
        value = key(item)
        if best_value is None or value > best_value:
            best, best_value = item, value
    if best_value is None:
        raise InvalidParameterError("argmax over an empty iterable")
    return best


def argmin(items: Iterable[T], key: Callable[[T], float]) -> T:
    """The item minimizing ``key``."""
    return argmax(items, key=lambda item: -key(item))


def sweep_pairs(
    values: Sequence[T],
    evaluate: Callable[[T], float],
    executor: str = "serial",
    max_workers: int | None = None,
) -> Tuple[Tuple[T, float], ...]:
    """Evaluate a function over a grid as ordered ``(value, result)`` pairs.

    Unlike the dict-shaped :func:`sweep`, duplicated grid values each keep
    their own result, and the pairs preserve evaluation order exactly.
    ``executor``/``max_workers`` select a
    :func:`repro.engine.parallel.parallel_map` backend (serial, thread, or
    process with serial fallback).
    """
    from ..engine.parallel import parallel_map

    results = parallel_map(
        evaluate, values, executor=executor, max_workers=max_workers
    )
    return tuple(zip(values, results))


def sweep(
    values: Sequence[T],
    evaluate: Callable[[T], float],
    executor: str = "serial",
    max_workers: int | None = None,
) -> Dict[T, float]:
    """Dict-compat wrapper over :func:`sweep_pairs`.

    Kept for callers that index results by grid value. Duplicated values
    collapse (the last evaluation wins) — use :func:`sweep_pairs` when the
    grid may repeat values.
    """
    return dict(
        sweep_pairs(values, evaluate, executor=executor, max_workers=max_workers)
    )
