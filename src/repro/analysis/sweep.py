"""Parameter-sweep helpers shared by the experiments."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

from ..errors import InvalidParameterError

T = TypeVar("T")


def capacity_fractions(
    start: float = 0.05, stop: float = 1.0, count: int = 20
) -> Tuple[float, ...]:
    """Evenly spaced capacity fractions for CAS/TTM sweeps (Figs. 3, 9-13).

    Fractions must stay strictly positive — zero capacity makes TTM
    unbounded — so the default sweep starts at 5% of max rate.
    """
    if count < 2:
        raise InvalidParameterError(f"count must be >= 2, got {count}")
    if not 0.0 < start < stop <= 1.0:
        raise InvalidParameterError(
            f"need 0 < start < stop <= 1, got start={start}, stop={stop}"
        )
    step = (stop - start) / (count - 1)
    return tuple(start + i * step for i in range(count))


def chip_quantities() -> Tuple[float, ...]:
    """The paper's final-chip quantities (Figs. 6 and 10): 1K .. 100M."""
    return (1e3, 1e4, 1e5, 1e6, 1e7, 1e8)


def normalized(values: Sequence[float]) -> List[float]:
    """Values scaled so the maximum is 1.0 (Fig. 5's axes)."""
    if not values:
        raise InvalidParameterError("cannot normalize an empty sequence")
    peak = max(values)
    if peak <= 0.0:
        raise InvalidParameterError(
            f"normalization needs a positive maximum, got {peak}"
        )
    return [value / peak for value in values]


def argmax(items: Iterable[T], key: Callable[[T], float]) -> T:
    """The item maximizing ``key`` (explicit name for experiment code)."""
    best = None
    best_value = None
    for item in items:
        value = key(item)
        if best_value is None or value > best_value:
            best, best_value = item, value
    if best_value is None:
        raise InvalidParameterError("argmax over an empty iterable")
    return best


def argmin(items: Iterable[T], key: Callable[[T], float]) -> T:
    """The item minimizing ``key``."""
    return argmax(items, key=lambda item: -key(item))


def sweep(
    values: Sequence[T], evaluate: Callable[[T], float]
) -> Dict[T, float]:
    """Evaluate a function over a grid, preserving order."""
    return {value: evaluate(value) for value in values}
