"""Plain-text table rendering for the CLI and experiment reports."""

from __future__ import annotations

from typing import List, Sequence

from ..errors import InvalidParameterError


def format_cell(value: object) -> str:
    """Render one cell: floats compactly, everything else via str()."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.3g}"
    if magnitude >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width table with a header rule, ready for printing."""
    if not headers:
        raise InvalidParameterError("table needs at least one column")
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise InvalidParameterError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        rendered.append([format_cell(cell) for cell in row])
    widths = [
        max(len(rendered[r][c]) for r in range(len(rendered)))
        for c in range(len(headers))
    ]
    lines = []
    for r, cells in enumerate(rendered):
        line = "  ".join(cell.rjust(widths[c]) for c, cell in enumerate(cells))
        lines.append(line)
        if r == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    return "\n".join(lines)
