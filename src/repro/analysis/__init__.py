"""Sweep, Pareto, and table helpers shared by experiments and the CLI."""

from .export import to_json, to_jsonable
from .pareto import dominates, knee_point, pareto_front, pareto_mask
from .portfolio import PortfolioAssessment, PortfolioEntry, assess_portfolio
from .search import Configuration, SearchResult, SearchSpace, grid_search
from .sweep import (
    argmax,
    argmin,
    capacity_curves,
    capacity_fractions,
    chip_quantities,
    normalized,
    sweep,
    sweep_pairs,
)
from .tables import format_cell, format_table

__all__ = [
    "Configuration",
    "PortfolioAssessment",
    "PortfolioEntry",
    "SearchResult",
    "SearchSpace",
    "argmax",
    "argmin",
    "assess_portfolio",
    "capacity_curves",
    "capacity_fractions",
    "chip_quantities",
    "dominates",
    "format_cell",
    "format_table",
    "grid_search",
    "knee_point",
    "normalized",
    "pareto_front",
    "pareto_mask",
    "sweep",
    "sweep_pairs",
    "to_json",
    "to_jsonable",
]
