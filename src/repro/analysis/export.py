"""Structured export of experiment results.

Experiment result objects are frozen dataclasses (possibly nested, with
mapping fields keyed by tuples). :func:`to_jsonable` converts any of
them into plain JSON-compatible data — dicts, lists, strings, numbers —
so the CLI can emit machine-readable output (``ttm-cas run fig7 --json``)
and downstream tooling can diff runs.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from ..errors import InvalidParameterError


def to_jsonable(value: Any) -> Any:
    """Recursively convert a result object to JSON-compatible data.

    Handles dataclasses (by field), mappings (keys stringified — JSON
    has no tuple keys), sequences, and primitives. Unknown objects fall
    back to ``str`` so exports never crash on exotic fields.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {_key(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "items"):  # mapping-like (e.g. frozen Mapping views)
        return {_key(key): to_jsonable(item) for key, item in value.items()}
    return str(value)


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (int, float, bool)):
        return str(key)
    if isinstance(key, tuple):
        return "|".join(_key(part) for part in key)
    return str(key)


def to_json(value: Any, indent: int = 2) -> str:
    """JSON text of a result object."""
    if indent < 0:
        raise InvalidParameterError(f"indent must be >= 0, got {indent}")
    return json.dumps(to_jsonable(value), indent=indent, sort_keys=True)
