"""Scenario-axis Monte Carlo: one draw, every scenario, every design.

A scenario study draws ONE joint base sample from a
:class:`~repro.montecarlo.spec.SamplingSpec` and pushes it through the
fused :func:`~repro.engine.scenario.scenario_evaluate` cube for every
stress scenario and every design. Common random numbers are enforced by
construction: the base draw happens once, up front, and every
``(scenario, design)`` cell sees the same supply-chain realizations, so
differences between cells are due to the scenario transforms and the
designs — never sampling noise.

Parallelism chunks over the *scenario* axis (the outermost, largest
grain of the cube): each work item evaluates a contiguous
:meth:`~repro.engine.scenario.ScenarioSet.subset` against the shared
base draw. Chunks are pure functions of their inputs, so results are
bit-for-bit identical across the serial, thread, and process executors
and across chunk sizes. On the process path the compiled portfolio
rides along as a shared-memory
:class:`~repro.engine.shm.PortfolioShare`, so workers attach tensors
instead of recompiling designs per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..engine.parallel import parallel_map
from ..engine.portfolio import compile_portfolio
from ..engine.scenario import (
    Scenario,
    ScenarioSet,
    compile_scenarios,
    scenario_evaluate,
)
from ..engine.shm import SHARED_STORE, PortfolioShare, share_portfolio
from ..errors import InvalidParameterError
from ..obs.trace import span
from ..ttm.model import TTMModel
from .results import (
    DEFAULT_TAIL_LEVEL,
    TAILS,
    ExceedanceCurve,
    MetricSummary,
    StudyResult,
)
from .spec import SamplingSpec
from .study import METRIC_TAILS, chunk_sizes

#: Scenarios evaluated per parallel work item (outermost-axis grain).
DEFAULT_CHUNK_SCENARIOS = 8


def conditional_value_at_risk(
    samples: np.ndarray,
    level: float = DEFAULT_TAIL_LEVEL,
    tail: str = "upper",
) -> float:
    """Mean of the worst ``1 - level`` tail of a sample.

    ``tail="upper"`` averages the samples at or above the ``level``
    quantile (risk = large values, e.g. TTM weeks); ``tail="lower"``
    averages those at or below the ``1 - level`` quantile (risk = small
    values, e.g. agility collapsing). Matches the CVaR reported by
    :class:`~repro.montecarlo.results.MetricSummary` exactly.
    """
    values = np.asarray(samples, dtype=float).ravel()
    if values.size == 0:
        raise InvalidParameterError("CVaR needs at least one sample")
    if tail not in TAILS:
        raise InvalidParameterError(
            f"tail must be one of {TAILS}, got {tail!r}"
        )
    if not 0.5 < level < 1.0:
        raise InvalidParameterError(
            f"tail level must be in (0.5, 1), got {level}"
        )
    if tail == "upper":
        var = float(np.percentile(values, 100.0 * level))
        return float(np.mean(values[values >= var]))
    var = float(np.percentile(values, 100.0 * (1.0 - level)))
    return float(np.mean(values[values <= var]))


@dataclass(frozen=True)
class _ScenarioChunkTask:
    """Picklable work item: one scenario subset against the shared draw.

    On the process path the compiled portfolio rides along as a
    shared-memory handle and ``designs`` is ``None``.
    """

    model: TTMModel
    cost_model: Optional[CostModel]
    designs: Optional[Tuple[ChipDesign, ...]]
    scenario_set: ScenarioSet
    n_chips: np.ndarray
    capacity: Optional[np.ndarray]
    queue_weeks: Optional[np.ndarray]
    d0_scale: Optional[np.ndarray]
    wafer_rate_scale: Optional[np.ndarray]
    shared: Optional[PortfolioShare] = None


def _evaluate_scenario_chunk(
    task: _ScenarioChunkTask,
) -> Dict[str, np.ndarray]:
    """Evaluate one scenario subset (module-level for pickling).

    Returns ``metric -> (chunk_scenarios, n_designs, n_samples)``
    cubes. Because the fused kernel processes scenarios independently,
    stacking chunk outputs reproduces the unchunked cube bit-for-bit.
    """
    invariants = (
        task.shared.materialize() if task.shared is not None else None
    )
    cube = scenario_evaluate(
        task.model,
        task.cost_model,
        task.designs,
        task.n_chips,
        task.scenario_set,
        capacity=task.capacity,
        queue_weeks=task.queue_weeks,
        d0_scale=task.d0_scale,
        wafer_rate_scale=task.wafer_rate_scale,
        invariants=invariants,
    )
    metrics = {
        "ttm_weeks": np.asarray(cube.ttm.total_weeks, dtype=float),
        "cas": np.asarray(cube.cas.cas, dtype=float),
    }
    if cube.cost is not None:
        # Per-chip cost under scenario k divides by the transformed
        # demand, with the same ops apply_scenario/scenario_cost use, so
        # it matches the per-scenario oracle's ``usd_per_chip`` bits.
        base = np.asarray(task.n_chips, dtype=float)
        per_chip = np.empty_like(metrics["ttm_weeks"])
        for k in range(task.scenario_set.n_scenarios):
            dm = float(task.scenario_set.demand_scale[k])
            chips = base if dm == 1.0 else base * dm
            per_chip[k] = cube.cost.total_usd[k] / chips
        metrics["cost_per_chip_usd"] = per_chip
    return metrics


@dataclass(frozen=True)
class ScenarioStudyResult:
    """Summaries of the full (scenarios x designs x metrics) study.

    ``results[scenario][design]`` is a per-cell
    :class:`~repro.montecarlo.results.StudyResult`; the table helpers
    reduce those cells to the per-scenario risk reports (CVaR ladders,
    exceedance-vs-baseline probabilities) the CLI prints.
    """

    scenarios: Tuple[str, ...]
    designs: Tuple[str, ...]
    n_samples: int
    seed: int
    tail_level: float
    baseline: str
    results: Mapping[str, Mapping[str, StudyResult]]

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "designs", tuple(self.designs))
        object.__setattr__(
            self,
            "results",
            {
                scenario: dict(per_design)
                for scenario, per_design in dict(self.results).items()
            },
        )

    def cell(self, scenario: str, design: str) -> StudyResult:
        """The summarized study of one (scenario, design) cell."""
        try:
            per_design = self.results[scenario]
        except KeyError:
            known = ", ".join(self.scenarios)
            raise KeyError(
                f"unknown scenario {scenario!r} (known: {known})"
            ) from None
        try:
            return per_design[design]
        except KeyError:
            known = ", ".join(self.designs)
            raise KeyError(
                f"unknown design {design!r} (known: {known})"
            ) from None

    def _check_metric(self, design: str, metric: str) -> None:
        cell = self.cell(self.baseline, design)
        if metric not in cell.summaries:
            known = ", ".join(sorted(cell.summaries))
            raise InvalidParameterError(
                f"unknown metric {metric!r} (known: {known})"
            )

    def cvar_table(self, metric: str, design: str) -> str:
        """Per-scenario risk ladder for one design and metric.

        One row per scenario: mean, median, VaR/CVaR at the study's
        tail level, the mean shift against the ``baseline`` scenario,
        and ``P(worse)`` — the probability of landing beyond the
        baseline's median (above it for upper-tail metrics, below for
        lower-tail ones). Common random numbers make these paired
        comparisons, not independent-run noise.
        """
        self._check_metric(design, metric)
        base_summary = self.cell(self.baseline, design)[metric]
        base_median = base_summary.median
        tail = base_summary.tail
        level = int(round(100.0 * self.tail_level))
        headers = [
            "scenario", "mean", "p50",
            f"VaR{level}", f"CVaR{level}",
            "mean-base", "P(worse)",
        ]
        rows: List[List[object]] = []
        for scenario in self.scenarios:
            cell = self.cell(scenario, design)
            summary = cell[metric]
            above = cell.curves[metric].probability_above(base_median)
            worse = above if tail == "upper" else 1.0 - above
            rows.append(
                [
                    scenario,
                    summary.mean,
                    summary.median,
                    summary.var,
                    summary.cvar,
                    summary.mean - base_summary.mean,
                    worse,
                ]
            )
        return format_table(headers, rows)

    def exceedance_table(
        self,
        metric: str,
        design: str,
        percentiles: Sequence[float] = (50.0, 75.0, 95.0),
    ) -> str:
        """Per-scenario exceedance probabilities at baseline thresholds.

        Thresholds are the baseline scenario's percentiles of
        ``metric``, so each column reads "chance this scenario pushes
        the metric past what the calm world considers its p50/p75/p95".
        """
        self._check_metric(design, metric)
        base_summary = self.cell(self.baseline, design)[metric]
        thresholds = [base_summary.percentiles[float(p)] for p in percentiles]
        headers = ["scenario"] + [
            f"P(>base p{p:g})" for p in percentiles
        ]
        rows: List[List[object]] = []
        for scenario in self.scenarios:
            curve = self.cell(scenario, design).curves[metric]
            rows.append(
                [scenario]
                + [curve.probability_above(t) for t in thresholds]
            )
        return format_table(headers, rows)


def run_scenario_study(
    model: TTMModel,
    designs: Sequence[ChipDesign],
    spec: SamplingSpec,
    scenarios: Union[ScenarioSet, Sequence[Scenario]],
    n_samples: int,
    seed: int,
    cost_model: Optional[CostModel] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    chunk_scenarios: int = DEFAULT_CHUNK_SCENARIOS,
    tail_level: float = DEFAULT_TAIL_LEVEL,
    curve_points: int = 33,
) -> ScenarioStudyResult:
    """Run the fused scenario-cube Monte Carlo study.

    Parameters
    ----------
    spec:
        The joint base-world distribution. The draw happens ONCE and is
        shared by every scenario and design (common random numbers), so
        per-scenario deltas are paired comparisons.
    scenarios:
        A compiled :class:`~repro.engine.scenario.ScenarioSet` (e.g.
        from :func:`~repro.montecarlo.stress.stress_scenarios`) or a
        sequence of :class:`~repro.engine.scenario.Scenario`.
    seed / executor / max_workers / chunk_scenarios:
        Work is chunked over the scenario axis; chunks are pure, so the
        cube is bit-for-bit identical across executors and chunk sizes
        for a fixed seed.
    """
    scenario_set = compile_scenarios(scenarios)
    design_tuple = tuple(designs)
    if any(p.node is not None for p in spec.parameters):
        raise InvalidParameterError(
            "scenario studies require a global capacity draw; per-node "
            "capacity sampling cannot compose with per-node scenario "
            "capacity transforms in a single kernel argument"
        )
    rng = np.random.default_rng(seed)
    draws = spec.sample(n_samples, rng)
    with span(
        "mc.run_scenario_study",
        scenarios=list(scenario_set.names),
        designs=[design.name for design in design_tuple],
        n_samples=n_samples,
        seed=seed,
        executor=executor,
    ):
        sizes = chunk_sizes(scenario_set.n_scenarios, chunk_scenarios)
        shared = None
        if executor == "process":
            invariants = compile_portfolio(
                design_tuple,
                model.foundry.technology,
                engineers=model.engineers,
                alpha=model.alpha,
                edge_corrected=model.edge_corrected,
                block_parallel=model.block_parallel,
            )
            shared = share_portfolio(invariants)
        capacity = draws.capacity
        tasks = []
        start = 0
        for size in sizes:
            tasks.append(
                _ScenarioChunkTask(
                    model=model,
                    cost_model=cost_model,
                    designs=None if shared is not None else design_tuple,
                    scenario_set=scenario_set.subset(
                        range(start, start + size)
                    ),
                    n_chips=draws.n_chips,
                    capacity=capacity,
                    queue_weeks=draws.queue_weeks,
                    d0_scale=draws.d0_scale,
                    wafer_rate_scale=draws.wafer_rate_scale,
                    shared=shared,
                )
            )
            start += size
        try:
            chunks: List[Dict[str, np.ndarray]] = parallel_map(
                _evaluate_scenario_chunk,
                tasks,
                executor=executor,
                max_workers=max_workers,
            )
        finally:
            if shared is not None:
                SHARED_STORE.release(shared.handle)
        cube: Dict[str, np.ndarray] = {
            name: np.concatenate([chunk[name] for chunk in chunks], axis=0)
            for name in chunks[0]
        }
        design_names = tuple(design.name for design in design_tuple)
        results: Dict[str, Dict[str, StudyResult]] = {}
        for k, scenario in enumerate(scenario_set.names):
            per_design: Dict[str, StudyResult] = {}
            for i, design in enumerate(design_tuple):
                samples = {
                    name: values[k, i].ravel()
                    for name, values in cube.items()
                }
                summaries = {
                    name: MetricSummary.from_samples(
                        name,
                        values,
                        tail=METRIC_TAILS.get(name, "upper"),
                        tail_level=tail_level,
                    )
                    for name, values in samples.items()
                }
                curves = {
                    name: ExceedanceCurve.from_samples(
                        name, values, n_points=curve_points
                    )
                    for name, values in samples.items()
                }
                per_design[design.name] = StudyResult(
                    design=design.name,
                    processes=design.processes,
                    n_samples=n_samples,
                    seed=seed,
                    summaries=summaries,
                    curves=curves,
                )
            results[scenario] = per_design
        baseline = (
            "baseline"
            if "baseline" in scenario_set.names
            else scenario_set.names[0]
        )
        return ScenarioStudyResult(
            scenarios=scenario_set.names,
            designs=design_names,
            n_samples=n_samples,
            seed=seed,
            tail_level=tail_level,
            baseline=baseline,
            results=results,
        )


__all__ = [
    "DEFAULT_CHUNK_SCENARIOS",
    "ScenarioStudyResult",
    "conditional_value_at_risk",
    "run_scenario_study",
]
