"""Correlated and variance-reduced sampling for Monte Carlo studies.

The baseline studies draw independent uniforms per factor
(:func:`repro.sensitivity.distributions.sample_matrix`). Real supply
shocks are *jointly* distributed — a fab outage depresses capacity and
stretches queues at once — so this module adds, without any new
dependency:

* a **Gaussian copula** over rank (Spearman) correlations: uniforms are
  mapped to standard normals (:func:`normal_ppf`, Acklam's rational
  approximation), correlated through the Cholesky factor of the
  equivalent Pearson matrix (``rho = 2 sin(pi rho_s / 6)``), and mapped
  back through :func:`normal_cdf` (``math.erf``) — marginals stay
  exactly uniform, ranks correlate to the target;
* **Latin hypercube** stratification (one sample per 1/n stratum per
  factor, strata randomly permuted per column);
* **antithetic variates**: the second half of every draw is the literal
  mirror ``1.0 - u`` of the first half, exact by construction, so
  monotone-response estimators pair negatively correlated samples.

Everything here produces *uniform unit-interval matrices*; factor
scaling stays in :class:`~repro.sensitivity.distributions.Factor`, so
studies built on the default path are untouched bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidParameterError

#: Sampling strategies understood by :func:`sample_uniforms`.
STRATEGIES: Tuple[str, ...] = ("iid", "lhs")

_SQRT2 = math.sqrt(2.0)
_ERF = np.frompyfunc(math.erf, 1, 1)

# Acklam's inverse-normal-CDF rational approximations (relative error
# < 1.15e-9 over (0, 1)).
_PPF_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_PPF_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_PPF_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_PPF_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_PPF_SPLIT = 0.02425


def normal_ppf(u) -> np.ndarray:
    """Standard normal inverse CDF (Acklam), elementwise over ``(0, 1)``.

    The central branch is odd in ``u - 0.5`` and the tail branches
    mirror each other, so the map is antisymmetric about 0.5 to within
    one rounding of ``1 - u``.
    """
    u = np.asarray(u, dtype=float)
    if np.any((u <= 0.0) | (u >= 1.0)):
        raise InvalidParameterError(
            "normal_ppf needs open-interval uniforms in (0, 1)"
        )
    a0, a1, a2, a3, a4, a5 = _PPF_A
    b0, b1, b2, b3, b4 = _PPF_B
    c0, c1, c2, c3, c4, c5 = _PPF_C
    d0, d1, d2, d3 = _PPF_D

    out = np.empty(u.shape)
    lower = u < _PPF_SPLIT
    upper = u > 1.0 - _PPF_SPLIT
    central = ~(lower | upper)

    q = u[central] - 0.5
    r = q * q
    out[central] = (
        q
        * (((((a0 * r + a1) * r + a2) * r + a3) * r + a4) * r + a5)
        / (((((b0 * r + b1) * r + b2) * r + b3) * r + b4) * r + 1.0)
    )
    q = np.sqrt(-2.0 * np.log(u[lower]))
    out[lower] = (
        ((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5
    ) / ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0)
    q = np.sqrt(-2.0 * np.log(1.0 - u[upper]))
    out[upper] = -(
        ((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5
    ) / ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0)
    return out


def normal_cdf(z) -> np.ndarray:
    """Standard normal CDF via ``math.erf``, elementwise.

    Computed in the sign-symmetric form ``0.5 +- 0.5 erf(|z|/sqrt 2)``
    so ``cdf(-z)`` and ``cdf(z)`` are exact mirror images about 0.5.
    """
    z = np.asarray(z, dtype=float)
    t = 0.5 * _ERF(np.abs(z) / _SQRT2).astype(float)
    return np.where(z >= 0.0, 0.5 + t, 0.5 - t)


@dataclass(frozen=True, init=False)
class RankCorrelation:
    """Target Spearman rank correlations between named factors.

    ``pairs`` maps unordered factor-name pairs to rank correlations in
    ``(-1, 1)``; unlisted pairs are independent. :meth:`matrix` lays the
    pairs out over an ordered factor-name tuple and validates positive
    definiteness (via the Cholesky of the equivalent Pearson matrix).
    """

    pairs: Tuple[Tuple[Tuple[str, str], float], ...]

    def __init__(
        self,
        pairs: Mapping[Tuple[str, str], float]
        | Sequence[Tuple[Tuple[str, str], float]],
    ):
        items = (
            tuple(pairs.items())
            if isinstance(pairs, Mapping)
            else tuple(pairs)
        )
        normalized = []
        seen = set()
        for (a, b), rho in items:
            if a == b:
                raise InvalidParameterError(
                    f"rank correlation pair ({a!r}, {b!r}) must name two "
                    "distinct factors"
                )
            if not -1.0 < float(rho) < 1.0:
                raise InvalidParameterError(
                    f"rank correlation for ({a!r}, {b!r}) must be in "
                    f"(-1, 1), got {rho}"
                )
            key = (a, b) if a <= b else (b, a)
            if key in seen:
                raise InvalidParameterError(
                    f"duplicate rank correlation for pair {key!r}"
                )
            seen.add(key)
            normalized.append((key, float(rho)))
        object.__setattr__(self, "pairs", tuple(sorted(normalized)))

    def spearman_matrix(self, names: Sequence[str]) -> np.ndarray:
        """The full Spearman matrix over ``names`` (identity diagonal)."""
        names = tuple(names)
        index = {name: i for i, name in enumerate(names)}
        matrix = np.eye(len(names))
        for (a, b), rho in self.pairs:
            if a not in index or b not in index:
                raise InvalidParameterError(
                    f"rank correlation names {(a, b)!r} not in factor "
                    f"names {names}"
                )
            matrix[index[a], index[b]] = rho
            matrix[index[b], index[a]] = rho
        return matrix

    def cholesky(self, names: Sequence[str]) -> np.ndarray:
        """Cholesky factor of the equivalent Pearson matrix."""
        pearson = spearman_to_pearson(self.spearman_matrix(names))
        try:
            return np.linalg.cholesky(pearson)
        except np.linalg.LinAlgError as error:
            raise InvalidParameterError(
                "rank correlation matrix is not positive definite: "
                f"{error}"
            ) from error


def spearman_to_pearson(spearman) -> np.ndarray:
    """Pearson correlation of the Gaussian copula hitting a Spearman
    target: ``rho = 2 sin(pi rho_s / 6)`` (exact for bivariate normals).
    """
    spearman = np.asarray(spearman, dtype=float)
    pearson = 2.0 * np.sin(np.pi * spearman / 6.0)
    np.fill_diagonal(pearson.reshape(spearman.shape), 1.0)
    return pearson


def latin_hypercube(
    n_samples: int, n_factors: int, rng: np.random.Generator
) -> np.ndarray:
    """An ``(n, k)`` Latin-hypercube uniform matrix.

    Each column places exactly one sample in each of the ``n`` equal
    strata of ``(0, 1)``, at a uniform offset within its stratum, with
    an independent random stratum permutation per column.
    """
    if n_samples <= 0:
        raise InvalidParameterError(
            f"sample count must be positive, got {n_samples}"
        )
    out = np.empty((n_samples, n_factors))
    for j in range(n_factors):
        perm = rng.permutation(n_samples)
        offsets = rng.random(n_samples)
        out[:, j] = (perm + offsets) / n_samples
    return out


def mirror_uniforms(u: np.ndarray) -> np.ndarray:
    """The literal antithetic mirror ``1.0 - u`` (exact by construction)."""
    return 1.0 - np.asarray(u, dtype=float)


def sample_uniforms(
    n_samples: int,
    n_factors: int,
    rng: np.random.Generator,
    strategy: str = "iid",
    antithetic: bool = False,
) -> np.ndarray:
    """A unit-interval ``(n, k)`` matrix under the chosen strategy.

    With ``antithetic=True`` (``n_samples`` must be even) only the
    first half is drawn; the second half is its exact ``1.0 - u``
    mirror. Under LHS the mirror preserves stratification (stratum
    ``i`` maps onto stratum ``n - 1 - i``).
    """
    if strategy not in STRATEGIES:
        raise InvalidParameterError(
            f"sampling strategy must be one of {STRATEGIES}, "
            f"got {strategy!r}"
        )
    if n_samples <= 0:
        raise InvalidParameterError(
            f"sample count must be positive, got {n_samples}"
        )
    if not antithetic:
        if strategy == "lhs":
            return latin_hypercube(n_samples, n_factors, rng)
        return rng.random((n_samples, n_factors))
    if n_samples % 2:
        raise InvalidParameterError(
            "antithetic sampling pairs mirrored draws and needs an even "
            f"sample count, got {n_samples}"
        )
    half = n_samples // 2
    if strategy == "lhs":
        head = latin_hypercube(half, n_factors, rng)
    else:
        head = rng.random((half, n_factors))
    return np.concatenate([head, mirror_uniforms(head)], axis=0)


def correlate_uniforms(
    uniforms: np.ndarray, cholesky: np.ndarray
) -> np.ndarray:
    """Impose a Gaussian-copula dependence on independent uniforms.

    ``ppf -> correlate (z @ L.T) -> cdf``: marginals remain uniform,
    ranks pick up the Pearson structure of ``L @ L.T`` (hence the
    Spearman target after :func:`spearman_to_pearson`).
    """
    z = normal_ppf(uniforms)
    return normal_cdf(z @ np.asarray(cholesky, dtype=float).T)


def sample_factor_matrix(
    factors: Sequence,
    n_samples: int,
    rng: np.random.Generator,
    correlation: Optional[RankCorrelation] = None,
    strategy: str = "iid",
    antithetic: bool = False,
) -> np.ndarray:
    """Factor draws under correlation/stratification/antithetic options.

    With every option at its default this is *not* used — callers keep
    the legacy :func:`~repro.sensitivity.distributions.sample_matrix`
    path, whose RNG consumption (and bits) are unchanged.
    """
    uniforms = sample_uniforms(
        n_samples, len(factors), rng, strategy=strategy,
        antithetic=antithetic,
    )
    if correlation is not None:
        names = tuple(factor.name for factor in factors)
        uniforms = correlate_uniforms(
            uniforms, correlation.cholesky(names)
        )
    columns = [
        factor.scale(uniforms[:, i]) for i, factor in enumerate(factors)
    ]
    return np.column_stack(columns)


def spearman_rank(x: np.ndarray, y: np.ndarray) -> float:
    """Sample Spearman rank correlation (average-free midrank variant
    is unnecessary here: copula draws are almost surely tie-free)."""
    x = np.asarray(x, dtype=float).reshape(-1)
    y = np.asarray(y, dtype=float).reshape(-1)
    rx = np.empty(x.shape[0])
    ry = np.empty(y.shape[0])
    rx[np.argsort(x, kind="stable")] = np.arange(x.shape[0])
    ry[np.argsort(y, kind="stable")] = np.arange(y.shape[0])
    rx -= rx.mean()
    ry -= ry.mean()
    return float(
        np.dot(rx, ry) / np.sqrt(np.dot(rx, rx) * np.dot(ry, ry))
    )


__all__ = [
    "RankCorrelation",
    "STRATEGIES",
    "correlate_uniforms",
    "latin_hypercube",
    "mirror_uniforms",
    "normal_cdf",
    "normal_ppf",
    "sample_factor_matrix",
    "sample_uniforms",
    "spearman_rank",
    "spearman_to_pearson",
]
