"""Sampling specifications: which supply-chain inputs vary, and how.

A :class:`SamplingSpec` names the joint distribution a Monte Carlo study
draws from. Each :class:`SampledParameter` binds one uniform
:class:`~repro.sensitivity.distributions.Factor` (the same primitive the
Sobol sensitivity layer uses) to one *target* — the kernel-level knob the
draw feeds:

========================  ====================================================
target                    meaning
========================  ====================================================
``"n_chips"``             demand: final chips ordered
``"capacity"``            capacity fraction — global, or per-node via ``node``
``"queue_weeks"``         quoted lead time applied to every node (Sec. 6.3)
``"d0_scale"``            multiplier on every node's defect density D0
``"wafer_rate_scale"``    multiplier on every node's maximum wafer rate
========================  ====================================================

Draws map straight onto the sampled-parameter keywords of
:func:`repro.engine.batch.batch_ttm` / ``batch_cas`` / ``batch_cost``, so
an n-sample study is a handful of array-kernel calls — never a Python
loop over scalar model evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import InvalidParameterError
from ..sensitivity.distributions import DEFAULT_VARIATION, Factor, sample_matrix
from .sampling import STRATEGIES, RankCorrelation, sample_factor_matrix

#: Recognized sampling targets.
TARGETS: Tuple[str, ...] = (
    "n_chips",
    "capacity",
    "queue_weeks",
    "d0_scale",
    "wafer_rate_scale",
)


@dataclass(frozen=True)
class SampledParameter:
    """One uniformly distributed supply-chain input.

    Attributes
    ----------
    target:
        One of :data:`TARGETS`.
    factor:
        The uniform range to draw from (name, nominal, relative
        half-width).
    node:
        Only valid for ``target="capacity"``: restricts the draw to one
        process node (other nodes keep the market conditions' fraction).
        ``None`` samples a global capacity fraction.
    """

    target: str
    factor: Factor
    node: Optional[str] = None

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise InvalidParameterError(
                f"target must be one of {TARGETS}, got {self.target!r}"
            )
        if self.node is not None and self.target != "capacity":
            raise InvalidParameterError(
                f"node= only applies to capacity draws, got node={self.node!r} "
                f"for target {self.target!r}"
            )

    @property
    def key(self) -> Tuple[str, Optional[str]]:
        """Uniqueness key within a spec."""
        return (self.target, self.node)


@dataclass(frozen=True)
class SamplingSpec:
    """A joint (independent-uniform) distribution over supply inputs.

    Attributes
    ----------
    parameters:
        The varied inputs. ``(target, node)`` pairs must be unique, and a
        global capacity draw cannot be mixed with per-node capacity draws
        (the kernels cannot express "scale everything *and* override one
        node" in a single capacity argument).
    n_chips:
        Nominal demand used when ``"n_chips"`` is not sampled.
    correlation:
        Optional Gaussian-copula rank correlation between factor names
        (:class:`~repro.montecarlo.sampling.RankCorrelation`). ``None``
        keeps the factors independent.
    strategy:
        ``"iid"`` (default) or ``"lhs"`` (Latin hypercube). With every
        sampling field at its default, :meth:`sample` takes the legacy
        path and its draws are bit-for-bit unchanged.
    antithetic:
        Mirror the second half of each draw (``1.0 - u``), pairing
        negatively correlated samples; requires even sample counts.
    """

    parameters: Tuple[SampledParameter, ...]
    n_chips: float
    correlation: Optional[RankCorrelation] = None
    strategy: str = "iid"
    antithetic: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", tuple(self.parameters))
        if not self.parameters:
            raise InvalidParameterError(
                "a sampling spec needs at least one parameter"
            )
        if self.n_chips <= 0.0:
            raise InvalidParameterError(
                f"nominal n_chips must be positive, got {self.n_chips}"
            )
        if self.strategy not in STRATEGIES:
            raise InvalidParameterError(
                f"sampling strategy must be one of {STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if self.correlation is not None:
            # Validate the pair names and positive definiteness up
            # front, not at first draw.
            self.correlation.cholesky(
                tuple(p.factor.name for p in self.parameters)
            )
        keys = [p.key for p in self.parameters]
        if len(set(keys)) != len(keys):
            raise InvalidParameterError(
                f"duplicate sampled parameters: {sorted(keys)}"
            )
        capacity_nodes = {
            p.node for p in self.parameters if p.target == "capacity"
        }
        if None in capacity_nodes and len(capacity_nodes) > 1:
            raise InvalidParameterError(
                "cannot mix a global capacity draw with per-node capacity draws"
            )

    @property
    def factor_names(self) -> Tuple[str, ...]:
        """Factor names in parameter order."""
        return tuple(p.factor.name for p in self.parameters)

    @property
    def uses_default_sampling(self) -> bool:
        """True when every sampling option is at its legacy default."""
        return (
            self.correlation is None
            and self.strategy == "iid"
            and not self.antithetic
        )

    def sample(
        self, n_samples: int, rng: np.random.Generator
    ) -> "ParameterSamples":
        """Draw ``n_samples`` joint rows.

        With default sampling options this is the legacy independent
        draw — same RNG consumption, bit-for-bit identical matrices.
        """
        factors = [p.factor for p in self.parameters]
        if self.uses_default_sampling:
            matrix = sample_matrix(factors, n_samples, rng)
        else:
            matrix = sample_factor_matrix(
                factors,
                n_samples,
                rng,
                correlation=self.correlation,
                strategy=self.strategy,
                antithetic=self.antithetic,
            )
        return ParameterSamples(spec=self, matrix=matrix)


@dataclass(frozen=True)
class ParameterSamples:
    """An ``(n_samples, k)`` draw with kernel-keyword accessors."""

    spec: SamplingSpec
    matrix: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.spec.parameters):
            raise InvalidParameterError(
                f"sample matrix shape {matrix.shape} does not match "
                f"{len(self.spec.parameters)} spec parameters"
            )
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_samples(self) -> int:
        return self.matrix.shape[0]

    def column(
        self, target: str, node: Optional[str] = None
    ) -> Optional[np.ndarray]:
        """The sampled column for ``(target, node)``, or ``None``."""
        for i, parameter in enumerate(self.spec.parameters):
            if parameter.key == (target, node):
                return self.matrix[:, i]
        return None

    @property
    def n_chips(self) -> np.ndarray:
        """Per-sample demand (sampled column or the nominal)."""
        sampled = self.column("n_chips")
        if sampled is not None:
            return sampled
        return np.full(self.n_samples, self.spec.n_chips)

    @property
    def capacity(
        self,
    ) -> Optional[Union[np.ndarray, Dict[str, np.ndarray]]]:
        """Kernel ``capacity`` argument: global array, node mapping, or None."""
        global_draw = self.column("capacity")
        if global_draw is not None:
            return global_draw
        per_node = {
            p.node: self.matrix[:, i]
            for i, p in enumerate(self.spec.parameters)
            if p.target == "capacity"
        }
        return per_node or None

    @property
    def queue_weeks(self) -> Optional[np.ndarray]:
        return self.column("queue_weeks")

    @property
    def d0_scale(self) -> Optional[np.ndarray]:
        return self.column("d0_scale")

    @property
    def wafer_rate_scale(self) -> Optional[np.ndarray]:
        return self.column("wafer_rate_scale")

    def kernel_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for ``batch_ttm``/``batch_cas``."""
        return {
            "capacity": self.capacity,
            "queue_weeks": self.queue_weeks,
            "d0_scale": self.d0_scale,
            "wafer_rate_scale": self.wafer_rate_scale,
        }


def default_supply_spec(
    n_chips: float,
    variation: float = DEFAULT_VARIATION,
    queue_weeks: float = 2.0,
    capacity: float = 0.9,
    nodes: Sequence[str] = (),
) -> SamplingSpec:
    """The standard joint supply-uncertainty spec used by the CLI/studies.

    Varies demand, capacity (globally, or per node when ``nodes`` is
    given), queue time, defect density, and wafer rate around their
    nominals with the paper's default +-10% uniform error model.
    """
    if nodes:
        capacity_params = tuple(
            SampledParameter(
                "capacity",
                Factor(f"capacity[{node}]", capacity, variation),
                node=node,
            )
            for node in nodes
        )
    else:
        capacity_params = (
            SampledParameter("capacity", Factor("capacity", capacity, variation)),
        )
    return SamplingSpec(
        parameters=(
            SampledParameter("n_chips", Factor("n_chips", n_chips, variation)),
            *capacity_params,
            SampledParameter(
                "queue_weeks", Factor("queue_weeks", queue_weeks, variation)
            ),
            SampledParameter("d0_scale", Factor("D0_scale", 1.0, variation)),
            SampledParameter(
                "wafer_rate_scale", Factor("wafer_rate_scale", 1.0, variation)
            ),
        ),
        n_chips=n_chips,
    )


def default_correlated_spec(
    n_chips: float,
    variation: float = DEFAULT_VARIATION,
    queue_weeks: float = 2.0,
    capacity: float = 0.9,
    strategy: str = "lhs",
    antithetic: bool = True,
) -> SamplingSpec:
    """The default joint spec with realistic supply-side dependence.

    Tight capacity goes with long queues and slow wafer rates (a
    stressed fab is stressed everywhere), and defect excursions
    correlate with reduced effective rates; demand stays independent of
    the supply side. Latin-hypercube + antithetic sampling are on by
    default — they change estimator variance, not the model.
    """
    base = default_supply_spec(
        n_chips,
        variation=variation,
        queue_weeks=queue_weeks,
        capacity=capacity,
    )
    correlation = RankCorrelation(
        {
            ("capacity", "queue_weeks"): -0.6,
            ("capacity", "wafer_rate_scale"): 0.5,
            ("queue_weeks", "wafer_rate_scale"): -0.4,
            ("D0_scale", "wafer_rate_scale"): -0.3,
        }
    )
    return SamplingSpec(
        parameters=base.parameters,
        n_chips=base.n_chips,
        correlation=correlation,
        strategy=strategy,
        antithetic=antithetic,
    )


__all__ = [
    "ParameterSamples",
    "RankCorrelation",
    "SampledParameter",
    "SamplingSpec",
    "TARGETS",
    "default_correlated_spec",
    "default_supply_spec",
]
