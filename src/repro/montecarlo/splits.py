"""Monte Carlo studies of fixed production splits (Sec. 7 robustness).

The paper's "agility insurance" claim is about *uncertainty*: a
two-process split hedges a single line's exposure to capacity loss,
queue growth, and yield drift. This module pushes a fixed
:class:`~repro.multiprocess.split.ProductionSplit` through the
vectorized :func:`~repro.engine.batch_split.batch_split_samples` kernel
under joint supply draws — one batched evaluation per production line
per chunk, no scalar ``evaluate_split`` call anywhere on the sampling
path — and reduces the outcome to the same
:class:`~repro.montecarlo.results.StudyResult` summaries the
single-design studies produce.

Chunking and seeding mirror :mod:`repro.montecarlo.study`: chunk layout
is a pure function of ``n_samples`` and each chunk's generator is
spawned from the study seed by index, so results are bit-for-bit
identical across the serial, thread, and process executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..cost.model import CostModel
from ..engine.batch_split import batch_split_samples
from ..engine.invariants import design_invariants
from ..engine.parallel import parallel_map
from ..engine.shm import (
    SHARED_STORE,
    InvariantsShare,
    share_design_invariants,
)
from ..errors import InvalidParameterError
from ..multiprocess.split import ProductionSplit
from ..ttm.model import TTMModel
from .disruption import DisruptionModel
from .results import (
    DEFAULT_TAIL_LEVEL,
    ExceedanceCurve,
    MetricSummary,
    StudyResult,
)
from .spec import SamplingSpec
from .study import DEFAULT_CHUNK_SAMPLES, METRIC_TAILS, chunk_sizes


@dataclass(frozen=True)
class _PlanChunkTask:
    """Picklable per-chunk work item (shipped to process workers).

    On the process path the per-node line invariants ride along as a
    shared-memory :class:`~repro.engine.shm.InvariantsShare`, so workers
    attach the published tensors instead of re-deriving them per chunk.
    """

    model: TTMModel
    cost_model: Optional[CostModel]
    plan: ProductionSplit
    spec: SamplingSpec
    disruptions: Optional[DisruptionModel]
    n_samples: int
    shared: Optional[InvariantsShare] = None


def _evaluate_plan_chunk(
    task: _PlanChunkTask, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """Draw and batch-evaluate one chunk (module-level for pickling)."""
    line_invariants = (
        task.shared.materialize() if task.shared is not None else None
    )
    draws = task.spec.sample(task.n_samples, rng)
    quantities = draws.n_chips
    kwargs = draws.kernel_kwargs()
    if task.disruptions is not None:
        disruption = task.disruptions.sample(task.n_samples, rng)
        if disruption.capacity:
            kwargs["capacity"] = dict(disruption.capacity)
        if disruption.demand_scale is not None:
            quantities = quantities * disruption.demand_scale
    outcome = batch_split_samples(
        task.plan,
        task.model,
        quantities,
        cost_model=task.cost_model,
        line_invariants=line_invariants,
        **kwargs,  # type: ignore[arg-type]
    )
    metrics = {
        "ttm_weeks": np.asarray(outcome.ttm_weeks, dtype=float).ravel(),
        "cas": np.asarray(outcome.cas, dtype=float).ravel(),
    }
    if outcome.cost_usd is not None:
        metrics["cost_per_chip_usd"] = np.asarray(
            outcome.usd_per_chip, dtype=float
        ).ravel()
    return metrics


def _plan_processes(plan: ProductionSplit) -> tuple:
    """Every node the plan's production lines fabricate on."""
    involved: List[str] = []
    for node in plan.allocations:
        for process in plan.design_factory(node).processes:
            if process not in involved:
                involved.append(process)
    return tuple(involved)


def run_plan_study(
    model: TTMModel,
    plan: ProductionSplit,
    spec: SamplingSpec,
    n_samples: int,
    seed: int,
    cost_model: Optional[CostModel] = None,
    disruptions: Optional[DisruptionModel] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    tail_level: float = DEFAULT_TAIL_LEVEL,
    curve_points: int = 33,
) -> StudyResult:
    """Run one Monte Carlo study over a fixed production split.

    The split's allocation is held constant while the supply chain
    varies: demand, per-node capacity, queue quotes, defect density and
    wafer rates are drawn jointly from ``spec`` (optionally composed
    with a :class:`DisruptionModel`), and every draw's TTM / CAS /
    cost-per-chip comes from one batched kernel call per production
    line. The result's ``design`` names the plan as
    ``"<design> [primary|secondary@split]"`` so plan comparisons stay
    distinguishable.
    """
    if disruptions is not None and any(
        p.target == "capacity" for p in spec.parameters
    ):
        raise InvalidParameterError(
            "capacity is sampled by both the spec and the disruption model; "
            "pick one"
        )
    sizes = chunk_sizes(n_samples, chunk_samples)
    shared = None
    if executor == "process":
        # Publish each line's compiled invariants once; chunks carry a
        # tiny handle instead of re-deriving tensors in every worker.
        shared = share_design_invariants(
            {
                node: design_invariants(
                    plan.design_factory(node),
                    model.foundry.technology,
                    model.engineers,
                    alpha=model.alpha,
                    edge_corrected=model.edge_corrected,
                    block_parallel=model.block_parallel,
                )
                for node in plan.allocations
            }
        )
    tasks = [
        _PlanChunkTask(
            model=model,
            cost_model=cost_model,
            plan=plan,
            spec=spec,
            disruptions=disruptions,
            n_samples=size,
            shared=shared,
        )
        for size in sizes
    ]
    try:
        chunks: List[Dict[str, np.ndarray]] = parallel_map(
            _evaluate_plan_chunk,
            tasks,
            executor=executor,
            max_workers=max_workers,
            seed=seed,
        )
    finally:
        if shared is not None:
            SHARED_STORE.release(shared.handle)
    samples: Dict[str, np.ndarray] = {
        name: np.concatenate([chunk[name] for chunk in chunks])
        for name in chunks[0]
    }
    summaries = {
        name: MetricSummary.from_samples(
            name,
            values,
            tail=METRIC_TAILS.get(name, "upper"),
            tail_level=tail_level,
        )
        for name, values in samples.items()
    }
    curves = {
        name: ExceedanceCurve.from_samples(name, values, n_points=curve_points)
        for name, values in samples.items()
    }
    return StudyResult(
        design=plan_label(plan),
        processes=_plan_processes(plan),
        n_samples=n_samples,
        seed=seed,
        summaries=summaries,
        curves=curves,
    )


def plan_label(plan: ProductionSplit) -> str:
    """Readable study label: design name plus the allocation."""
    design = plan.design_factory(plan.primary)
    if plan.is_single_process:
        return f"{design.name} [{plan.primary}]"
    return (
        f"{design.name} [{plan.primary}|{plan.secondary}@{plan.split:.2f}]"
    )


def compare_plans(
    model: TTMModel,
    plans: Sequence[ProductionSplit],
    spec: SamplingSpec,
    n_samples: int,
    seed: int,
    **kwargs: object,
) -> Dict[str, StudyResult]:
    """Run the same study over several production plans (shared seed).

    Every plan sees the *same* supply-chain draws (common random
    numbers), so differences between result distributions measure the
    hedge itself — e.g. a 60/40 two-node split against its single-node
    baselines under the 2021-shortage scenario.
    """
    results: Dict[str, StudyResult] = {}
    for plan in plans:
        label = plan_label(plan)
        if label in results:
            raise InvalidParameterError(
                f"duplicate plan {label!r} in comparison"
            )
        results[label] = run_plan_study(
            model, plan, spec, n_samples, seed, **kwargs  # type: ignore[arg-type]
        )
    return results


__all__ = [
    "compare_plans",
    "plan_label",
    "run_plan_study",
]
