"""Named stress scenarios for the fused scenario cube.

A small library of supply-chain shocks, each a
:class:`~repro.engine.scenario.Scenario` transform over the sampled
base world, organized as families with graded severities (e.g.
``fab-outage:severe``). The families follow the disruptions the paper
and its successors discuss — regional fab outages (leading-edge
capacity concentrated in one region), export-control shocks on advanced
nodes, demand whiplash, pandemic-style logistics delays, defect
excursions — plus a ``baseline`` identity scenario every sweep should
include as the paired-control column.

:func:`stress_scenarios` resolves selector strings (``"all"``, a family
name, or an exact ``family:severity`` name) into a compiled
:class:`~repro.engine.scenario.ScenarioSet` for
:func:`~repro.engine.scenario.scenario_evaluate` /
:func:`~repro.montecarlo.scenario_study.run_scenario_study`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from ..engine.scenario import Scenario, ScenarioSet, compile_scenarios
from ..errors import InvalidParameterError

_Builder = Callable[[str, float], Scenario]

#: Leading-edge nodes concentrated in the exposed fab region.
LEADING_EDGE_NODES: Tuple[str, ...] = ("14nm", "7nm", "5nm")

#: Advanced nodes an export-control shock restricts.
EXPORT_CONTROLLED_NODES: Tuple[str, ...] = ("7nm", "5nm")


def _fab_outage(severity: str, remaining: float) -> Scenario:
    return Scenario(
        name=f"fab-outage:{severity}",
        description=(
            "Regional outage of leading-edge fabs: "
            f"{remaining:.0%} of {', '.join(LEADING_EDGE_NODES)} "
            "capacity remains; queues stretch as orders re-route"
        ),
        capacity_scale={node: remaining for node in LEADING_EDGE_NODES},
        queue_scale=1.0 + 0.5 * (1.0 - remaining),
    )


def _export_control(severity: str, remaining: float) -> Scenario:
    return Scenario(
        name=f"export-control:{severity}",
        description=(
            "Export-control shock on advanced nodes "
            f"({', '.join(EXPORT_CONTROLLED_NODES)} at "
            f"{remaining:.0%} capacity); constrained tooling also "
            "lifts defect density"
        ),
        capacity_scale={
            node: remaining for node in EXPORT_CONTROLLED_NODES
        },
        d0_scale=1.0 + 0.25 * (1.0 - remaining),
    )


def _demand_whiplash(severity: str, swing: float) -> Scenario:
    return Scenario(
        name=f"demand-whiplash:{severity}",
        description=(
            f"Demand overshoots by {swing - 1.0:+.0%} while every "
            "other buyer does the same: queues lengthen in step"
        ),
        demand_scale=swing,
        queue_scale=1.0 + 0.6 * (swing - 1.0),
    )


def _demand_collapse(severity: str, level: float) -> Scenario:
    return Scenario(
        name=f"demand-collapse:{severity}",
        description=(
            f"Demand falls to {level:.0%} of plan; idle fabs clear "
            "queues and effective capacity loosens"
        ),
        demand_scale=level,
        queue_scale=max(1.0 - 0.5 * (1.0 - level), 0.05),
        capacity_scale=min(1.0 / max(level, 0.1), 1.25),
    )


def _logistics_delay(severity: str, added_weeks: float) -> Scenario:
    return Scenario(
        name=f"logistics:{severity}",
        description=(
            "Pandemic-style logistics delay: every order carries "
            f"+{added_weeks:g} weeks of transit/queue time and wafer "
            "movement slows"
        ),
        queue_add_weeks=added_weeks,
        wafer_rate_scale=1.0 - min(0.02 * added_weeks, 0.3),
    )


def _defect_excursion(severity: str, d0_mult: float) -> Scenario:
    return Scenario(
        name=f"defect-excursion:{severity}",
        description=(
            f"Process excursion lifts defect density {d0_mult:g}x "
            "across the portfolio"
        ),
        d0_scale=d0_mult,
    )


def _capacity_squeeze(severity: str, fraction: float) -> Scenario:
    return Scenario(
        name=f"capacity-squeeze:{severity}",
        description=(
            "Broad allocation squeeze: every node quotes "
            f"{fraction:.0%} of its capacity"
        ),
        capacity_scale=fraction,
    )


#: severity label -> graded intensity, shared by every family.
_SEVERITIES: Tuple[Tuple[str, float], ...] = (
    ("mild", 0.25),
    ("moderate", 0.5),
    ("severe", 0.75),
    ("extreme", 1.0),
)

#: family -> builder(label, intensity in (0, 1]) -> Scenario. Each maps
#: the shared intensity scale onto that family's physical knobs.
_FAMILY_BUILDERS: Dict[str, "_Builder"] = {
    "fab-outage": lambda label, x: _fab_outage(
        label, remaining=1.0 - 0.75 * x
    ),
    "export-control": lambda label, x: _export_control(
        label, remaining=1.0 - 0.8 * x
    ),
    "demand-whiplash": lambda label, x: _demand_whiplash(
        label, swing=1.0 + 0.6 * x
    ),
    "demand-collapse": lambda label, x: _demand_collapse(
        label, level=1.0 - 0.55 * x
    ),
    "logistics": lambda label, x: _logistics_delay(
        label, added_weeks=10.0 * x
    ),
    "defect-excursion": lambda label, x: _defect_excursion(
        label, d0_mult=1.0 + 0.6 * x
    ),
    "capacity-squeeze": lambda label, x: _capacity_squeeze(
        label, fraction=1.0 - 0.65 * x
    ),
}


def _build_library() -> Dict[str, Scenario]:
    scenarios: Dict[str, Scenario] = {}

    def add(scenario: Scenario) -> None:
        scenarios[scenario.name] = scenario

    add(Scenario(name="baseline", description="No shock (paired control)"))
    for label, x in _SEVERITIES:
        for build in _FAMILY_BUILDERS.values():
            add(build(label, x))
    return scenarios


def _touches_demand_or_d0(family: str) -> bool:
    """Whether a family's transform moves demand or defect density."""
    probe = _FAMILY_BUILDERS[family]("probe", 1.0)
    return probe.demand_scale != 1.0 or probe.d0_scale != 1.0


def _checked_intensity(raw: float) -> float:
    x = float(raw)
    if not 0.0 < x <= 1.0:
        raise InvalidParameterError(
            f"stress intensity must lie in (0, 1], got {raw!r}"
        )
    return x


def graded_stress_scenarios(
    intensities: Sequence[float],
    demand_intensities: Optional[Sequence[float]] = None,
) -> ScenarioSet:
    """A denser severity grid: baseline + every family at each intensity.

    ``intensities`` are points on the shared (0, 1] severity scale the
    library's mild/moderate/severe/extreme labels sample at 0.25 steps;
    each is rendered through the same per-family knob mappings, named
    ``family:x<intensity>``.

    ``demand_intensities``, when given, is a separate (typically
    coarser) ladder for the families that move demand or defect
    density. Grading those axes on the library's canonical quarter
    steps while sweeping the supply-side families (capacity, queue,
    wafer rate) finely matches how stress suites are built in practice
    — demand/yield shocks come in a few calibrated sizes, supply
    degradation is scanned — and it is what makes the fused cube's
    cross-scenario (demand x D0) dedup bite: every supply-side scenario
    shares one wafer/testing/cost group.
    """
    scenarios = [
        Scenario(name="baseline", description="No shock (paired control)")
    ]
    ladders = {
        family: (
            demand_intensities
            if demand_intensities is not None
            and _touches_demand_or_d0(family)
            else intensities
        )
        for family in _FAMILY_BUILDERS
    }
    for family, build in _FAMILY_BUILDERS.items():
        for raw in ladders[family]:
            x = _checked_intensity(raw)
            scenarios.append(build(f"x{x:g}", x))
    return compile_scenarios(scenarios)


#: Every named stress scenario, keyed by ``family:severity``.
STRESS_LIBRARY: Dict[str, Scenario] = _build_library()

#: Family names (the part before ``:``).
STRESS_FAMILIES: Tuple[str, ...] = tuple(
    dict.fromkeys(name.split(":")[0] for name in STRESS_LIBRARY)
)


def stress_scenarios(
    selector: Union[str, Sequence[str]] = "all",
) -> ScenarioSet:
    """Resolve a selector into a compiled scenario set.

    ``"all"`` selects the whole library; a family name (e.g.
    ``"fab-outage"``) selects its severity ladder; an exact name (e.g.
    ``"logistics:severe"``) selects one scenario. A sequence mixes
    selectors; duplicates are dropped, order of first mention is kept.
    """
    selectors = (
        [selector] if isinstance(selector, str) else list(selector)
    )
    if not selectors:
        raise InvalidParameterError(
            "scenario selector must name at least one scenario"
        )
    chosen: Dict[str, Scenario] = {}
    for entry in selectors:
        if entry == "all":
            chosen.update(STRESS_LIBRARY)
        elif entry in STRESS_LIBRARY:
            chosen.setdefault(entry, STRESS_LIBRARY[entry])
        elif entry in STRESS_FAMILIES:
            for name, scenario in STRESS_LIBRARY.items():
                if name == entry or name.startswith(entry + ":"):
                    chosen.setdefault(name, scenario)
        else:
            known = ", ".join(("all",) + STRESS_FAMILIES)
            raise InvalidParameterError(
                f"unknown stress scenario {entry!r}; selectors are "
                f"{known} or an exact name like "
                f"{next(iter(STRESS_LIBRARY))!r}"
            )
    return compile_scenarios(list(chosen.values()))


__all__ = [
    "EXPORT_CONTROLLED_NODES",
    "LEADING_EDGE_NODES",
    "STRESS_FAMILIES",
    "STRESS_LIBRARY",
    "graded_stress_scenarios",
    "stress_scenarios",
]
