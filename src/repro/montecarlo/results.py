"""Distribution summaries for Monte Carlo studies.

Every metric (TTM weeks, CAS, cost per chip, revenue loss) is an array
of per-sample outcomes; this module reduces those arrays to the three
artifacts the uncertainty literature reports:

* **percentile bands** — the 5/25/50/75/95 quantiles;
* **exceedance curves** — ``P(X > t)`` over a threshold grid (survival
  function), the standard way to read "chance of missing the window";
* **CVaR tails** — value-at-risk at a confidence level plus the mean of
  the samples beyond it. For "bigger is worse" metrics (TTM, cost) the
  tail is the *upper* one; for "bigger is better" metrics (CAS) the
  *lower* one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..errors import InvalidParameterError
from ..obs.instrument import guard_trip

#: Default percentile band.
PERCENTILES: Tuple[float, ...] = (5.0, 25.0, 50.0, 75.0, 95.0)

#: Default CVaR confidence level.
DEFAULT_TAIL_LEVEL = 0.95

#: Recognized tail directions.
TAILS: Tuple[str, ...] = ("upper", "lower")


@dataclass(frozen=True)
class MetricSummary:
    """Moments, percentile band, and CVaR tail of one sampled metric."""

    name: str
    n_samples: int
    mean: float
    std: float
    minimum: float
    maximum: float
    percentiles: Mapping[float, float]
    tail: str
    tail_level: float
    var: float
    cvar: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "percentiles", dict(self.percentiles))
        if self.tail not in TAILS:
            raise InvalidParameterError(
                f"tail must be one of {TAILS}, got {self.tail!r}"
            )

    @classmethod
    def from_samples(
        cls,
        name: str,
        samples: np.ndarray,
        tail: str = "upper",
        tail_level: float = DEFAULT_TAIL_LEVEL,
        percentiles: Sequence[float] = PERCENTILES,
    ) -> "MetricSummary":
        """Summarize one metric's sample array.

        ``tail="upper"`` reports VaR as the ``tail_level`` quantile and
        CVaR as the mean of samples at or above it (risk = large
        values); ``tail="lower"`` mirrors both to the ``1 - tail_level``
        quantile (risk = small values, e.g. agility collapsing).
        """
        values = np.asarray(samples, dtype=float).ravel()
        if values.size == 0:
            raise InvalidParameterError(f"metric {name!r}: no samples")
        if not np.all(np.isfinite(values)):
            guard_trip("metric_summary")
            raise InvalidParameterError(
                f"metric {name!r}: samples contain non-finite values"
            )
        if tail not in TAILS:
            raise InvalidParameterError(
                f"tail must be one of {TAILS}, got {tail!r}"
            )
        if not 0.5 < tail_level < 1.0:
            raise InvalidParameterError(
                f"tail level must be in (0.5, 1), got {tail_level}"
            )
        if tail == "upper":
            var = float(np.percentile(values, 100.0 * tail_level))
            tail_values = values[values >= var]
        else:
            var = float(np.percentile(values, 100.0 * (1.0 - tail_level)))
            tail_values = values[values <= var]
        return cls(
            name=name,
            n_samples=int(values.size),
            mean=float(np.mean(values)),
            std=float(np.std(values)),
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
            percentiles={
                float(p): float(np.percentile(values, p)) for p in percentiles
            },
            tail=tail,
            tail_level=tail_level,
            var=var,
            cvar=float(np.mean(tail_values)),
        )

    @property
    def median(self) -> float:
        """The 50th percentile (if requested in the band)."""
        try:
            return self.percentiles[50.0]
        except KeyError:
            raise InvalidParameterError(
                f"metric {self.name!r} was summarized without the median"
            ) from None

    def band(self, low: float = 5.0, high: float = 95.0) -> Tuple[float, float]:
        """A (low, high) percentile interval from the stored band."""
        try:
            return (self.percentiles[low], self.percentiles[high])
        except KeyError as missing:
            raise InvalidParameterError(
                f"percentile {missing} not in stored band "
                f"{sorted(self.percentiles)}"
            ) from None


@dataclass(frozen=True)
class ExceedanceCurve:
    """``P(X > t)`` over a threshold grid (empirical survival function)."""

    name: str
    thresholds: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "thresholds", tuple(self.thresholds))
        object.__setattr__(self, "probabilities", tuple(self.probabilities))
        if len(self.thresholds) != len(self.probabilities):
            raise InvalidParameterError(
                "thresholds and probabilities must have equal length"
            )

    @classmethod
    def from_samples(
        cls, name: str, samples: np.ndarray, n_points: int = 33
    ) -> "ExceedanceCurve":
        """Evaluate the survival function on an even threshold grid."""
        values = np.sort(np.asarray(samples, dtype=float).ravel())
        if values.size == 0:
            raise InvalidParameterError(f"metric {name!r}: no samples")
        if n_points < 2:
            raise InvalidParameterError(
                f"need >= 2 grid points, got {n_points}"
            )
        grid = np.linspace(values[0], values[-1], n_points)
        # P(X > t) = (count of samples strictly above t) / n.
        above = values.size - np.searchsorted(values, grid, side="right")
        return cls(
            name=name,
            thresholds=tuple(float(t) for t in grid),
            probabilities=tuple(float(c) / values.size for c in above),
        )

    def probability_above(self, threshold: float) -> float:
        """Linear interpolation of ``P(X > threshold)`` on the grid."""
        return float(
            np.interp(
                threshold,
                self.thresholds,
                self.probabilities,
                left=self.probabilities[0],
                right=self.probabilities[-1],
            )
        )


@dataclass(frozen=True)
class StudyResult:
    """All summarized metrics of one Monte Carlo study."""

    design: str
    processes: Tuple[str, ...]
    n_samples: int
    seed: int
    summaries: Mapping[str, MetricSummary] = field(default_factory=dict)
    curves: Mapping[str, ExceedanceCurve] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", tuple(self.processes))
        object.__setattr__(self, "summaries", dict(self.summaries))
        object.__setattr__(self, "curves", dict(self.curves))

    def __getitem__(self, metric: str) -> MetricSummary:
        try:
            return self.summaries[metric]
        except KeyError:
            known = ", ".join(sorted(self.summaries))
            raise KeyError(
                f"unknown metric {metric!r} (known: {known})"
            ) from None

    def table(self) -> str:
        """Percentile band + tail summary, one row per metric."""
        headers = [
            "metric", "mean", "p5", "p25", "p50", "p75", "p95",
            "VaR", "CVaR", "tail",
        ]
        rows = []
        for name, summary in self.summaries.items():
            rows.append(
                [
                    name,
                    summary.mean,
                    summary.percentiles.get(5.0, float("nan")),
                    summary.percentiles.get(25.0, float("nan")),
                    summary.percentiles.get(50.0, float("nan")),
                    summary.percentiles.get(75.0, float("nan")),
                    summary.percentiles.get(95.0, float("nan")),
                    summary.var,
                    summary.cvar,
                    summary.tail,
                ]
            )
        return format_table(headers, rows)


def summarize_metrics(
    samples: Mapping[str, np.ndarray],
    tails: Mapping[str, str],
    tail_level: float = DEFAULT_TAIL_LEVEL,
) -> Dict[str, MetricSummary]:
    """Build :class:`MetricSummary` objects for a metric->samples map."""
    return {
        name: MetricSummary.from_samples(
            name, values, tail=tails.get(name, "upper"), tail_level=tail_level
        )
        for name, values in samples.items()
    }


__all__ = [
    "DEFAULT_TAIL_LEVEL",
    "ExceedanceCurve",
    "MetricSummary",
    "PERCENTILES",
    "StudyResult",
    "TAILS",
    "summarize_metrics",
]
