"""Monte Carlo study runner: sample, batch-evaluate, summarize.

A study draws ``n_samples`` joint supply-chain realizations from a
:class:`~repro.montecarlo.spec.SamplingSpec` (optionally composed with a
:class:`~repro.montecarlo.disruption.DisruptionModel`), pushes the whole
sample through the vectorized :func:`~repro.engine.batch.batch_ttm` /
``batch_cas`` / ``batch_cost`` kernels, and reduces the outcome arrays
to :class:`~repro.montecarlo.results.StudyResult` summaries. No scalar
``TTMModel`` call happens anywhere on the sampling path.

Determinism: the sample is split into fixed-size chunks (a pure function
of ``n_samples``), and each chunk's ``numpy.random.Generator`` is spawned
from the study seed by chunk index via the seeded
:func:`~repro.engine.parallel.parallel_map`. Results are therefore
bit-for-bit identical across the serial, thread, and process executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..economics.market_window import MarketWindow, triangle_loss_fractions
from ..engine.batch import batch_cas, batch_cost, batch_ttm
from ..engine.parallel import parallel_map
from ..engine.portfolio import (
    compile_portfolio,
    portfolio_cas,
    portfolio_cost,
    portfolio_ttm,
)
from ..engine.shm import SHARED_STORE, PortfolioShare, share_portfolio
from ..errors import InvalidParameterError
from ..obs.trace import span
from ..ttm.model import TTMModel
from .disruption import DisruptionModel
from .results import (
    DEFAULT_TAIL_LEVEL,
    ExceedanceCurve,
    MetricSummary,
    StudyResult,
)
from .spec import SamplingSpec

#: Samples evaluated per parallel work item.
DEFAULT_CHUNK_SAMPLES = 2048

#: Tail direction per metric: risk is slow/expensive, or *in*agile.
METRIC_TAILS: Mapping[str, str] = {
    "ttm_weeks": "upper",
    "cas": "lower",
    "cost_per_chip_usd": "upper",
    "revenue_loss_fraction": "upper",
}


def chunk_sizes(n_samples: int, chunk_samples: int) -> Tuple[int, ...]:
    """Deterministic chunk layout: full chunks plus one remainder."""
    if n_samples <= 0:
        raise InvalidParameterError(
            f"sample count must be positive, got {n_samples}"
        )
    if chunk_samples <= 0:
        raise InvalidParameterError(
            f"chunk size must be positive, got {chunk_samples}"
        )
    full, rest = divmod(n_samples, chunk_samples)
    return tuple([chunk_samples] * full + ([rest] if rest else []))


@dataclass(frozen=True)
class _ChunkTask:
    """Picklable per-chunk work item (shipped to process workers)."""

    model: TTMModel
    cost_model: Optional[CostModel]
    design: ChipDesign
    spec: SamplingSpec
    disruptions: Optional[DisruptionModel]
    n_samples: int


def _evaluate_chunk(
    task: _ChunkTask, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """Draw and batch-evaluate one chunk (module-level for pickling)."""
    draws = task.spec.sample(task.n_samples, rng)
    quantities = draws.n_chips
    kwargs = draws.kernel_kwargs()
    if task.disruptions is not None:
        disruption = task.disruptions.sample(task.n_samples, rng)
        if disruption.capacity:
            kwargs["capacity"] = dict(disruption.capacity)
        if disruption.demand_scale is not None:
            quantities = quantities * disruption.demand_scale
    ttm = batch_ttm(task.model, task.design, quantities, **kwargs)
    cas = batch_cas(task.model, task.design, quantities, **kwargs)
    metrics = {
        "ttm_weeks": np.asarray(ttm.total_weeks, dtype=float).ravel(),
        "cas": np.asarray(cas.cas, dtype=float).ravel(),
    }
    if task.cost_model is not None:
        cost = batch_cost(
            task.cost_model,
            task.design,
            quantities,
            d0_scale=kwargs.get("d0_scale"),
        )
        metrics["cost_per_chip_usd"] = np.asarray(
            cost.usd_per_chip, dtype=float
        ).ravel()
    return metrics


def _check_capacity_source(
    spec: SamplingSpec, disruptions: Optional[DisruptionModel]
) -> None:
    if disruptions is not None and any(
        p.target == "capacity" for p in spec.parameters
    ):
        raise InvalidParameterError(
            "capacity is sampled by both the spec and the disruption model; "
            "pick one"
        )


def _summarize_samples(
    design: ChipDesign,
    n_samples: int,
    seed: int,
    samples: Dict[str, np.ndarray],
    window: Optional[MarketWindow],
    reference_weeks: Optional[float],
    tail_level: float,
    curve_points: int,
) -> StudyResult:
    """Reduce one design's metric samples to a :class:`StudyResult`."""
    if window is not None:
        reference = (
            float(np.median(samples["ttm_weeks"]))
            if reference_weeks is None
            else float(reference_weeks)
        )
        samples["revenue_loss_fraction"] = triangle_loss_fractions(
            samples["ttm_weeks"] - reference, window.window_weeks
        )
    summaries = {
        name: MetricSummary.from_samples(
            name,
            values,
            tail=METRIC_TAILS.get(name, "upper"),
            tail_level=tail_level,
        )
        for name, values in samples.items()
    }
    curves = {
        name: ExceedanceCurve.from_samples(name, values, n_points=curve_points)
        for name, values in samples.items()
    }
    return StudyResult(
        design=design.name,
        processes=design.processes,
        n_samples=n_samples,
        seed=seed,
        summaries=summaries,
        curves=curves,
    )


def run_study(
    model: TTMModel,
    design: ChipDesign,
    spec: SamplingSpec,
    n_samples: int,
    seed: int,
    cost_model: Optional[CostModel] = None,
    disruptions: Optional[DisruptionModel] = None,
    window: Optional[MarketWindow] = None,
    reference_weeks: Optional[float] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    tail_level: float = DEFAULT_TAIL_LEVEL,
    curve_points: int = 33,
) -> StudyResult:
    """Run one Monte Carlo study over a design.

    Parameters
    ----------
    model / cost_model:
        The scalar models supplying calibration; evaluation itself goes
        through the batch kernels. Cost metrics are produced only when
        ``cost_model`` is given.
    spec:
        The joint sampling specification.
    disruptions:
        Optional stochastic event layer. Its capacity draw replaces the
        spec's capacity column — sample capacity in one place or the
        other, not both.
    window / reference_weeks:
        When a :class:`MarketWindow` is given, the TTM sample is also
        reported as a revenue-loss-fraction distribution for delays
        beyond ``reference_weeks`` (default: the sample median, i.e.
        "late relative to the typical outcome").
    seed / executor / max_workers / chunk_samples:
        Sampling is chunked and seeded per chunk index; results are
        identical across executors for a fixed seed.
    """
    _check_capacity_source(spec, disruptions)
    with span(
        "mc.run_study",
        design=design.name,
        n_samples=n_samples,
        seed=seed,
        executor=executor,
    ):
        sizes = chunk_sizes(n_samples, chunk_samples)
        tasks = [
            _ChunkTask(
                model=model,
                cost_model=cost_model,
                design=design,
                spec=spec,
                disruptions=disruptions,
                n_samples=size,
            )
            for size in sizes
        ]
        chunks: List[Dict[str, np.ndarray]] = parallel_map(
            _evaluate_chunk,
            tasks,
            executor=executor,
            max_workers=max_workers,
            seed=seed,
        )
        samples: Dict[str, np.ndarray] = {
            name: np.concatenate([chunk[name] for chunk in chunks])
            for name in chunks[0]
        }
        return _summarize_samples(
            design,
            n_samples,
            seed,
            samples,
            window,
            reference_weeks,
            tail_level,
            curve_points,
        )


@dataclass(frozen=True)
class _PortfolioChunkTask:
    """Picklable per-chunk work item covering the whole design tuple.

    On the process path the compiled portfolio rides along as a
    shared-memory :class:`~repro.engine.shm.PortfolioShare` and
    ``designs`` is ``None`` — workers attach the published tensors
    instead of unpickling design objects and recompiling per chunk.
    """

    model: TTMModel
    cost_model: Optional[CostModel]
    designs: Optional[Tuple[ChipDesign, ...]]
    spec: SamplingSpec
    disruptions: Optional[DisruptionModel]
    n_samples: int
    shared_ttm: Optional[PortfolioShare] = None
    shared_cost: Optional[PortfolioShare] = None


def _evaluate_portfolio_chunk(
    task: _PortfolioChunkTask, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """Draw once and evaluate every design on the shared chunk.

    The chunk's draws are identical to the per-design path's (same rng
    spawn, same consumption order), so metric row ``i`` is bit-for-bit
    the per-design study of design ``i``.
    """
    invariants = invariants_cost = None
    if task.shared_ttm is not None:
        invariants = task.shared_ttm.materialize()
        invariants_cost = (
            task.shared_cost.materialize()
            if task.shared_cost is not None
            else invariants
        )
    draws = task.spec.sample(task.n_samples, rng)
    quantities = draws.n_chips
    kwargs = draws.kernel_kwargs()
    if task.disruptions is not None:
        disruption = task.disruptions.sample(task.n_samples, rng)
        if disruption.capacity:
            kwargs["capacity"] = dict(disruption.capacity)
        if disruption.demand_scale is not None:
            quantities = quantities * disruption.demand_scale
    ttm = portfolio_ttm(
        task.model, task.designs, quantities, invariants=invariants, **kwargs
    )
    cas = portfolio_cas(
        task.model, task.designs, quantities, invariants=invariants, **kwargs
    )
    metrics = {
        "ttm_weeks": np.asarray(ttm.total_weeks, dtype=float),
        "cas": np.asarray(cas.cas, dtype=float),
    }
    if task.cost_model is not None:
        cost = portfolio_cost(
            task.cost_model,
            task.designs,
            quantities,
            d0_scale=kwargs.get("d0_scale"),
            engineers=task.model.engineers,
            invariants=invariants_cost,
        )
        metrics["cost_per_chip_usd"] = np.asarray(
            cost.usd_per_chip, dtype=float
        )
    return metrics


def compare_designs(
    model: TTMModel,
    designs: Sequence[ChipDesign],
    spec: SamplingSpec,
    n_samples: int,
    seed: int,
    cost_model: Optional[CostModel] = None,
    disruptions: Optional[DisruptionModel] = None,
    window: Optional[MarketWindow] = None,
    reference_weeks: Optional[float] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    tail_level: float = DEFAULT_TAIL_LEVEL,
    curve_points: int = 33,
    engine: str = "portfolio",
) -> Dict[str, StudyResult]:
    """Run the same study over several designs (shared seed).

    Every design sees the *same* supply-chain draws (common random
    numbers), so differences between result distributions are due to
    the designs, not sampling noise. ``engine="portfolio"`` (default)
    draws each chunk once and evaluates the whole design tuple through
    the fused :func:`~repro.engine.portfolio.portfolio_ttm` kernels;
    ``engine="per-design"`` keeps the original one-study-per-design loop
    as the equivalence oracle. Both paths consume the chunk generators
    identically, so results match to floating-point round-off.
    """
    design_tuple = tuple(designs)
    seen: Dict[str, None] = {}
    for design in design_tuple:
        if design.name in seen:
            raise InvalidParameterError(
                f"duplicate design name {design.name!r} in comparison"
            )
        seen[design.name] = None
    if engine == "per-design":
        return {
            design.name: run_study(
                model,
                design,
                spec,
                n_samples,
                seed,
                cost_model=cost_model,
                disruptions=disruptions,
                window=window,
                reference_weeks=reference_weeks,
                executor=executor,
                max_workers=max_workers,
                chunk_samples=chunk_samples,
                tail_level=tail_level,
                curve_points=curve_points,
            )
            for design in design_tuple
        }
    if engine != "portfolio":
        raise InvalidParameterError(
            f"unknown comparison engine {engine!r}; "
            "use 'portfolio' or 'per-design'"
        )
    _check_capacity_source(spec, disruptions)
    with span(
        "mc.compare_designs",
        designs=[design.name for design in design_tuple],
        n_samples=n_samples,
        seed=seed,
        executor=executor,
    ):
        sizes = chunk_sizes(n_samples, chunk_samples)
        shared_ttm = shared_cost = None
        if executor == "process":
            # Publish the compiled portfolio once; chunks carry a tiny
            # handle instead of the design tuple + SoA tensors.
            inv_ttm = compile_portfolio(
                design_tuple,
                model.foundry.technology,
                engineers=model.engineers,
                alpha=model.alpha,
                edge_corrected=model.edge_corrected,
                block_parallel=model.block_parallel,
            )
            shared_ttm = share_portfolio(inv_ttm)
            if cost_model is not None:
                inv_cost = compile_portfolio(
                    design_tuple,
                    cost_model.technology,
                    engineers=model.engineers,
                    alpha=cost_model.alpha,
                    edge_corrected=cost_model.edge_corrected,
                )
                if inv_cost is not inv_ttm:
                    shared_cost = share_portfolio(inv_cost)
        tasks = [
            _PortfolioChunkTask(
                model=model,
                cost_model=cost_model,
                designs=None if shared_ttm is not None else design_tuple,
                spec=spec,
                disruptions=disruptions,
                n_samples=size,
                shared_ttm=shared_ttm,
                shared_cost=shared_cost,
            )
            for size in sizes
        ]
        try:
            chunks: List[Dict[str, np.ndarray]] = parallel_map(
                _evaluate_portfolio_chunk,
                tasks,
                executor=executor,
                max_workers=max_workers,
                seed=seed,
            )
        finally:
            if shared_ttm is not None:
                SHARED_STORE.release(shared_ttm.handle)
            if shared_cost is not None:
                SHARED_STORE.release(shared_cost.handle)
        results: Dict[str, StudyResult] = {}
        for i, design in enumerate(design_tuple):
            samples = {
                name: np.concatenate(
                    [np.asarray(chunk[name][i], dtype=float).ravel() for chunk in chunks]
                )
                for name in chunks[0]
            }
            results[design.name] = _summarize_samples(
                design,
                n_samples,
                seed,
                samples,
                window,
                reference_weeks,
                tail_level,
                curve_points,
            )
        return results


__all__ = [
    "DEFAULT_CHUNK_SAMPLES",
    "METRIC_TAILS",
    "chunk_sizes",
    "compare_designs",
    "run_study",
]
