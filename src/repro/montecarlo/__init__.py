"""Monte Carlo uncertainty engine over the batch TTM/CAS/cost kernels.

Turns the paper's point-condition case studies into distribution-aware
analyses: sample joint supply-chain uncertainty (demand, capacity,
queues, defect density, wafer rates), optionally compose stochastic
disruption events over a market scenario, evaluate every sample through
the vectorized :mod:`repro.engine.batch` kernels, and report percentile
bands, exceedance curves, and CVaR tails per metric.
:mod:`repro.montecarlo.splits` extends the same machinery to fixed
multi-process production plans via
:func:`~repro.engine.batch_split.batch_split_samples` (the Sec. 7
"agility insurance" claim under sampled supply factors).
"""

from .disruption import (
    KINDS,
    DisruptionDraw,
    DisruptionEvent,
    DisruptionModel,
    DisruptionTimeline,
    EventEnsemble,
    SampledEvents,
)
from .results import (
    DEFAULT_TAIL_LEVEL,
    PERCENTILES,
    TAILS,
    ExceedanceCurve,
    MetricSummary,
    StudyResult,
    summarize_metrics,
)
from .spec import (
    TARGETS,
    ParameterSamples,
    SampledParameter,
    SamplingSpec,
    default_supply_spec,
)
from .splits import compare_plans, plan_label, run_plan_study
from .study import (
    DEFAULT_CHUNK_SAMPLES,
    METRIC_TAILS,
    chunk_sizes,
    compare_designs,
    run_study,
)

__all__ = [
    "DEFAULT_CHUNK_SAMPLES",
    "DEFAULT_TAIL_LEVEL",
    "DisruptionDraw",
    "DisruptionEvent",
    "DisruptionModel",
    "DisruptionTimeline",
    "EventEnsemble",
    "ExceedanceCurve",
    "KINDS",
    "METRIC_TAILS",
    "MetricSummary",
    "PERCENTILES",
    "ParameterSamples",
    "SampledEvents",
    "SampledParameter",
    "SamplingSpec",
    "StudyResult",
    "TAILS",
    "TARGETS",
    "chunk_sizes",
    "compare_designs",
    "compare_plans",
    "default_supply_spec",
    "plan_label",
    "run_plan_study",
    "run_study",
    "summarize_metrics",
]
