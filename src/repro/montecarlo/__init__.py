"""Monte Carlo uncertainty engine over the batch TTM/CAS/cost kernels.

Turns the paper's point-condition case studies into distribution-aware
analyses: sample joint supply-chain uncertainty (demand, capacity,
queues, defect density, wafer rates), optionally compose stochastic
disruption events over a market scenario, evaluate every sample through
the vectorized :mod:`repro.engine.batch` kernels, and report percentile
bands, exceedance curves, and CVaR tails per metric.
:mod:`repro.montecarlo.splits` extends the same machinery to fixed
multi-process production plans via
:func:`~repro.engine.batch_split.batch_split_samples` (the Sec. 7
"agility insurance" claim under sampled supply factors).
"""

from .disruption import (
    KINDS,
    DisruptionDraw,
    DisruptionEvent,
    DisruptionModel,
    DisruptionTimeline,
    EventEnsemble,
    SampledEvents,
)
from .results import (
    DEFAULT_TAIL_LEVEL,
    PERCENTILES,
    TAILS,
    ExceedanceCurve,
    MetricSummary,
    StudyResult,
    summarize_metrics,
)
from .sampling import (
    STRATEGIES,
    RankCorrelation,
    latin_hypercube,
    sample_factor_matrix,
    sample_uniforms,
)
from .scenario_study import (
    DEFAULT_CHUNK_SCENARIOS,
    ScenarioStudyResult,
    conditional_value_at_risk,
    run_scenario_study,
)
from .spec import (
    TARGETS,
    ParameterSamples,
    SampledParameter,
    SamplingSpec,
    default_correlated_spec,
    default_supply_spec,
)
from .splits import compare_plans, plan_label, run_plan_study
from .stress import (
    STRESS_FAMILIES,
    STRESS_LIBRARY,
    graded_stress_scenarios,
    stress_scenarios,
)
from .study import (
    DEFAULT_CHUNK_SAMPLES,
    METRIC_TAILS,
    chunk_sizes,
    compare_designs,
    run_study,
)

__all__ = [
    "DEFAULT_CHUNK_SAMPLES",
    "DEFAULT_CHUNK_SCENARIOS",
    "DEFAULT_TAIL_LEVEL",
    "DisruptionDraw",
    "DisruptionEvent",
    "DisruptionModel",
    "DisruptionTimeline",
    "EventEnsemble",
    "ExceedanceCurve",
    "KINDS",
    "METRIC_TAILS",
    "MetricSummary",
    "PERCENTILES",
    "ParameterSamples",
    "RankCorrelation",
    "STRATEGIES",
    "STRESS_FAMILIES",
    "STRESS_LIBRARY",
    "SampledEvents",
    "SampledParameter",
    "SamplingSpec",
    "ScenarioStudyResult",
    "StudyResult",
    "TAILS",
    "TARGETS",
    "chunk_sizes",
    "compare_designs",
    "compare_plans",
    "conditional_value_at_risk",
    "default_correlated_spec",
    "default_supply_spec",
    "graded_stress_scenarios",
    "latin_hypercube",
    "plan_label",
    "run_plan_study",
    "run_scenario_study",
    "run_study",
    "sample_factor_matrix",
    "sample_uniforms",
    "stress_scenarios",
]
