"""Disruption timelines: scripted and stochastic supply-chain events.

The paper's narrative disruptions (fab fires, the 2021 shortage, drought
capacity cuts) are point scenarios in :mod:`repro.market.scenarios`.
This module makes them *events in time* and, for Monte Carlo, *random
variables*:

* :class:`DisruptionEvent` — one scripted event with a start week,
  duration, severity, and an optional node scope.
* :class:`DisruptionTimeline` — events composed over a base
  :class:`~repro.market.conditions.MarketConditions` (any scenario
  preset works as the base); ``conditions_at(week)`` yields the static
  conditions an order placed that week would face.
* :class:`EventEnsemble` / :class:`DisruptionModel` — the stochastic
  counterpart: each sample independently decides whether the event
  occurs and draws its start/duration/severity from uniform
  :class:`~repro.sensitivity.distributions.Factor` ranges. Sampling a
  :class:`DisruptionModel` yields per-node capacity-fraction arrays and
  a demand multiplier, ready for the batch kernels' per-sample
  ``capacity`` mapping.

Event semantics (while active):

* ``"fab_shutdown"``   — scoped nodes produce (almost) nothing: capacity
  is floored at :data:`MIN_CAPACITY_FRACTION` rather than zero, because
  the TTM model (scalar and batch alike) requires a positive wafer rate
  — a shutdown therefore surfaces as an extreme-but-finite TTM tail,
  which is exactly what the CVaR summaries are for.
* ``"capacity_shock"`` — scoped nodes lose ``severity`` of their rate
  (capacity x (1 - severity), same floor).
* ``"demand_spike"``   — demand is multiplied by ``1 + severity``.

An empty node scope means "all nodes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import InvalidParameterError
from ..market.conditions import MarketConditions
from ..sensitivity.distributions import Factor
from ..technology.database import ROADMAP

#: Recognized disruption kinds.
KINDS: Tuple[str, ...] = ("fab_shutdown", "capacity_shock", "demand_spike")

#: Floor on a disrupted node's capacity fraction (TTM needs a positive
#: rate; a "full" shutdown leaves this trickle).
MIN_CAPACITY_FRACTION = 1e-3


def _capacity_multiplier(kind: str, severity: float) -> float:
    if kind == "fab_shutdown":
        return MIN_CAPACITY_FRACTION
    if kind == "capacity_shock":
        return max(MIN_CAPACITY_FRACTION, 1.0 - severity)
    return 1.0


@dataclass(frozen=True)
class DisruptionEvent:
    """One scripted disruption window.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    start_week / duration_weeks:
        Active over ``[start_week, start_week + duration_weeks)``.
    severity:
        Fraction of capacity lost (``capacity_shock``) or of extra
        demand (``demand_spike``); unused by ``fab_shutdown``.
    nodes:
        Node scope; empty tuple means every node.
    """

    kind: str
    start_week: float
    duration_weeks: float
    severity: float = 0.0
    nodes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.kind not in KINDS:
            raise InvalidParameterError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.start_week < 0.0:
            raise InvalidParameterError(
                f"start week must be >= 0, got {self.start_week}"
            )
        if self.duration_weeks <= 0.0:
            raise InvalidParameterError(
                f"duration must be positive, got {self.duration_weeks}"
            )
        if not 0.0 <= self.severity <= 1.0 and self.kind == "capacity_shock":
            raise InvalidParameterError(
                f"capacity shock severity must be in [0, 1], got {self.severity}"
            )
        if self.severity < 0.0:
            raise InvalidParameterError(
                f"severity must be >= 0, got {self.severity}"
            )

    def active_at(self, week: float) -> bool:
        """Whether the event window covers ``week``."""
        return self.start_week <= week < self.start_week + self.duration_weeks

    def applies_to(self, node_name: str) -> bool:
        """Whether the event's scope includes a node."""
        return not self.nodes or node_name in self.nodes


@dataclass(frozen=True)
class DisruptionTimeline:
    """Scripted events composed over a base market scenario."""

    base: MarketConditions
    events: Tuple[DisruptionEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def capacity_multiplier_at(self, week: float, node_name: str) -> float:
        """Product of active capacity multipliers for one node."""
        multiplier = 1.0
        for event in self.events:
            if event.active_at(week) and event.applies_to(node_name):
                multiplier *= _capacity_multiplier(event.kind, event.severity)
        return multiplier

    def demand_multiplier_at(self, week: float) -> float:
        """Product of active demand-spike multipliers."""
        multiplier = 1.0
        for event in self.events:
            if event.kind == "demand_spike" and event.active_at(week):
                multiplier *= 1.0 + event.severity
        return multiplier

    def conditions_at(self, week: float) -> MarketConditions:
        """Static market conditions an order placed at ``week`` faces.

        Starts from the base scenario and multiplies each node's
        capacity fraction by the active events' multipliers. Queue
        quotes are inherited from the base unchanged.
        """
        fractions = {
            name: self.base.capacity_for(name)
            * self.capacity_multiplier_at(week, name)
            for name in ROADMAP
        }
        return MarketConditions(
            capacity_fraction=fractions,
            queue_weeks=self.base.queue_weeks,
            default_capacity=self.base.default_capacity,
            default_queue_weeks=self.base.default_queue_weeks,
        )


@dataclass(frozen=True)
class EventEnsemble:
    """A random disruption: occurrence flag plus uniform event ranges.

    Each sample flips an independent coin with ``probability`` of the
    event occurring, then draws start/duration/severity from the given
    :class:`Factor` ranges.
    """

    kind: str
    probability: float
    start_week: Factor
    duration_weeks: Factor
    severity: Factor
    nodes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.kind not in KINDS:
            raise InvalidParameterError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidParameterError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def sample(
        self, n_samples: int, rng: np.random.Generator
    ) -> "SampledEvents":
        """Draw ``n_samples`` independent realizations."""
        if n_samples <= 0:
            raise InvalidParameterError(
                f"sample count must be positive, got {n_samples}"
            )
        occurred = rng.random(n_samples) < self.probability
        start = self.start_week.scale(rng.random(n_samples))
        duration = self.duration_weeks.scale(rng.random(n_samples))
        severity = self.severity.scale(rng.random(n_samples))
        return SampledEvents(
            ensemble=self,
            occurred=occurred,
            start_week=start,
            duration_weeks=duration,
            severity=severity,
        )


@dataclass(frozen=True)
class SampledEvents:
    """Per-sample realizations of one :class:`EventEnsemble`."""

    ensemble: EventEnsemble
    occurred: np.ndarray
    start_week: np.ndarray
    duration_weeks: np.ndarray
    severity: np.ndarray

    def active_at(self, week: float) -> np.ndarray:
        """Boolean mask: event occurred and its window covers ``week``."""
        return (
            self.occurred
            & (self.start_week <= week)
            & (week < self.start_week + self.duration_weeks)
        )

    def capacity_multipliers_at(self, week: float) -> np.ndarray:
        """Per-sample capacity multiplier at ``week`` (1 where inactive)."""
        active = self.active_at(week)
        if self.ensemble.kind == "fab_shutdown":
            impact = np.full_like(self.severity, MIN_CAPACITY_FRACTION)
        elif self.ensemble.kind == "capacity_shock":
            impact = np.clip(1.0 - self.severity, MIN_CAPACITY_FRACTION, None)
        else:
            impact = np.ones_like(self.severity)
        return np.where(active, impact, 1.0)

    def demand_multipliers_at(self, week: float) -> np.ndarray:
        """Per-sample demand multiplier at ``week`` (1 where inactive)."""
        if self.ensemble.kind != "demand_spike":
            return np.ones_like(self.severity)
        return np.where(self.active_at(week), 1.0 + self.severity, 1.0)


@dataclass(frozen=True)
class DisruptionDraw:
    """One joint sample of a :class:`DisruptionModel`.

    ``capacity`` maps node name to a per-sample capacity-fraction array
    (base fraction x sampled multipliers at the order week) — exactly
    the mapping form ``batch_ttm``/``batch_cas`` accept; ``demand_scale``
    multiplies the per-sample order quantity.
    """

    capacity: Dict[str, np.ndarray] = field(default_factory=dict)
    demand_scale: Optional[np.ndarray] = None


@dataclass(frozen=True)
class DisruptionModel:
    """Random event ensembles over a base scenario, sampled at order time."""

    base: MarketConditions
    ensembles: Tuple[EventEnsemble, ...]
    order_week: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "ensembles", tuple(self.ensembles))
        if not self.ensembles:
            raise InvalidParameterError(
                "a disruption model needs at least one ensemble"
            )
        if self.order_week < 0.0:
            raise InvalidParameterError(
                f"order week must be >= 0, got {self.order_week}"
            )

    def sample(
        self, n_samples: int, rng: np.random.Generator
    ) -> DisruptionDraw:
        """Draw the per-node capacity arrays and demand multipliers.

        Ensembles are sampled in declaration order (one rng stream), so
        a fixed seed reproduces the draw exactly.
        """
        draws = [e.sample(n_samples, rng) for e in self.ensembles]
        affected = set()
        for ensemble in self.ensembles:
            if ensemble.kind == "demand_spike":
                continue
            affected.update(ensemble.nodes or ROADMAP)
        capacity: Dict[str, np.ndarray] = {}
        for name in ROADMAP:
            if name not in affected:
                continue
            multiplier = np.ones(n_samples)
            for sampled in draws:
                if sampled.ensemble.kind == "demand_spike":
                    continue
                if not sampled.ensemble.nodes or name in sampled.ensemble.nodes:
                    multiplier = multiplier * sampled.capacity_multipliers_at(
                        self.order_week
                    )
            capacity[name] = np.maximum(
                self.base.capacity_for(name) * multiplier,
                MIN_CAPACITY_FRACTION,
            )
        demand = np.ones(n_samples)
        for sampled in draws:
            demand = demand * sampled.demand_multipliers_at(self.order_week)
        return DisruptionDraw(
            capacity=capacity,
            demand_scale=demand if not np.all(demand == 1.0) else None,
        )


__all__ = [
    "DisruptionDraw",
    "DisruptionEvent",
    "DisruptionModel",
    "DisruptionTimeline",
    "EventEnsemble",
    "KINDS",
    "MIN_CAPACITY_FRACTION",
    "SampledEvents",
]
