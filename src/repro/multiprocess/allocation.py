"""K-way production allocation (generalizing Sec. 7 beyond two nodes).

The paper's methodology splits one architecture across *two* process
nodes; nothing in the model limits it to two. This module allocates a
production run across any set of nodes:

* :func:`balance_allocation` — the TTM-optimal split. Because each line's
  TTM is affine in its share (tapeout + latency + share * n / throughput)
  and the run finishes when the slowest line does, the minimax allocation
  equalizes line completion times; a water-filling pass computes it in
  closed form, dropping nodes whose fixed time (tapeout + latencies)
  already exceeds the balanced finish.
* :func:`evaluate_allocation` — TTM / cost / CAS of an arbitrary share
  vector, the k-way analogue of
  :func:`repro.multiprocess.split.evaluate_split`.
* :func:`greedy_node_selection` — picks the best subset of at most
  ``max_nodes`` nodes by marginal TTM improvement, answering "is a third
  source worth it?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..agility.derivative import DEFAULT_RELATIVE_STEP, ttm_rate_sensitivity
from ..cost.model import CostModel
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel
from .split import DesignFactory


@dataclass(frozen=True)
class AllocationResult:
    """A k-way production plan and its metrics."""

    shares: Mapping[str, float]
    n_chips: float
    ttm_weeks: float
    cost_usd: float
    cas: float
    line_weeks: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "shares", dict(self.shares))
        object.__setattr__(self, "line_weeks", dict(self.line_weeks))

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Nodes carrying non-zero volume."""
        return tuple(self.shares)

    @property
    def cas_normalized(self) -> float:
        """CAS in the figures' kilo-wafer units."""
        return self.cas / 1000.0


def _line_fixed_and_rate(
    design_factory: DesignFactory,
    process: str,
    model: TTMModel,
    n_chips: float,
) -> Tuple[float, float]:
    """(fixed weeks, weeks per unit share) of one production line.

    The line's TTM is affine in its share s:
    ``T(s) = fixed + s * slope`` where slope covers wafer production,
    testing and assembly (all linear in volume) and fixed covers design,
    tapeout, queue, latencies. Measured with two evaluations.
    """
    design = design_factory(process)
    probe = 1.0e-9  # near-zero share isolates the fixed part
    t_small = model.total_weeks(design, n_chips * probe)
    t_full = model.total_weeks(design, n_chips)
    slope = (t_full - t_small) / (1.0 - probe)
    return t_small, max(slope, 0.0)


def balance_allocation(
    design_factory: DesignFactory,
    processes: Sequence[str],
    model: TTMModel,
    n_chips: float,
) -> Dict[str, float]:
    """The minimax (TTM-optimal) share vector over the given nodes.

    Solves ``min_T`` subject to ``sum_i max(0, (T - fixed_i)/slope_i) = 1``
    by bisection on the common finish time T. Nodes whose fixed time
    exceeds the balanced T receive zero share (using them at all would
    only delay the order).
    """
    if not processes:
        raise InvalidParameterError("need at least one process node")
    if len(set(processes)) != len(processes):
        raise InvalidParameterError(f"duplicate nodes in {processes}")
    lines = {
        process: _line_fixed_and_rate(design_factory, process, model, n_chips)
        for process in processes
    }

    def total_share(finish: float) -> float:
        share = 0.0
        for fixed, slope in lines.values():
            if finish <= fixed:
                continue
            if slope <= 0.0:
                # A capacity-unconstrained line absorbs everything.
                return float("inf")
            share += (finish - fixed) / slope
        return share

    low = min(fixed for fixed, _ in lines.values())
    high = max(fixed + slope for fixed, slope in lines.values())
    while total_share(high) < 1.0:
        high *= 2.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if total_share(mid) >= 1.0:
            high = mid
        else:
            low = mid
    finish = high
    shares = {}
    for process, (fixed, slope) in lines.items():
        if finish > fixed and slope > 0.0:
            shares[process] = (finish - fixed) / slope
    # Normalize away bisection residue.
    total = sum(shares.values())
    return {process: share / total for process, share in shares.items()}


def evaluate_allocation(
    design_factory: DesignFactory,
    shares: Mapping[str, float],
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    with_cas: bool = True,
) -> AllocationResult:
    """TTM / cost / CAS of an arbitrary k-way share vector."""
    if not shares:
        raise InvalidParameterError("share vector must be non-empty")
    total = sum(shares.values())
    if abs(total - 1.0) > 1e-6:
        raise InvalidParameterError(f"shares must sum to 1, got {total}")
    if any(share <= 0.0 for share in shares.values()):
        raise InvalidParameterError("all shares must be positive")

    def ttm_under(evaluation_model: TTMModel) -> float:
        return max(
            evaluation_model.total_weeks(
                design_factory(process), n_chips * share
            )
            for process, share in shares.items()
        )

    line_weeks = {
        process: model.total_weeks(design_factory(process), n_chips * share)
        for process, share in shares.items()
    }
    cost = sum(
        cost_model.total_usd(design_factory(process), n_chips * share)
        for process, share in shares.items()
    )
    cas = 0.0
    if with_cas:
        conditions = model.foundry.conditions
        sensitivity = 0.0
        for process in shares:
            node = model.foundry.technology.require_production(process)
            fraction = conditions.capacity_for(process)
            max_rate = node.max_wafer_rate_per_week

            def ttm_at_rate(rate: float, _process: str = process) -> float:
                perturbed = model.with_foundry(
                    model.foundry.with_conditions(
                        conditions.with_capacity(_process, rate / max_rate)
                    )
                )
                return ttm_under(perturbed)

            sensitivity += ttm_rate_sensitivity(
                ttm_at_rate, fraction * max_rate, relative_step
            )
        if sensitivity <= 0.0:
            raise InvalidParameterError(
                "allocation has zero TTM sensitivity; CAS is unbounded"
            )
        cas = 1.0 / sensitivity
    return AllocationResult(
        shares=shares,
        n_chips=n_chips,
        ttm_weeks=max(line_weeks.values()),
        cost_usd=cost,
        cas=cas,
        line_weeks=line_weeks,
    )


def greedy_node_selection(
    design_factory: DesignFactory,
    candidates: Sequence[str],
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    max_nodes: int = 3,
    min_ttm_gain_weeks: float = 0.0,
) -> List[AllocationResult]:
    """Grow the node set greedily while each addition still pays off.

    Starts from the single fastest node; at each step adds the candidate
    whose balanced allocation improves TTM the most, stopping when the
    best improvement falls to ``min_ttm_gain_weeks`` or the set reaches
    ``max_nodes``. Returns the evaluation after each accepted step, so
    callers can weigh TTM gains against the extra NRE per added node.
    """
    if max_nodes < 1:
        raise InvalidParameterError(f"max nodes must be >= 1, got {max_nodes}")
    if not candidates:
        raise InvalidParameterError("need at least one candidate node")

    def evaluate(nodes: Sequence[str]) -> AllocationResult:
        shares = balance_allocation(design_factory, nodes, model, n_chips)
        return evaluate_allocation(
            design_factory, shares, model, cost_model, n_chips
        )

    best_single = min(
        ([node] for node in candidates),
        key=lambda nodes: evaluate(nodes).ttm_weeks,
    )
    chosen = list(best_single)
    steps = [evaluate(chosen)]
    while len(chosen) < max_nodes:
        remaining = [node for node in candidates if node not in chosen]
        if not remaining:
            break
        options = [(node, evaluate(chosen + [node])) for node in remaining]
        node, result = min(options, key=lambda item: item[1].ttm_weeks)
        if steps[-1].ttm_weeks - result.ttm_weeks <= min_ttm_gain_weeks:
            break
        chosen.append(node)
        steps.append(result)
    return steps
