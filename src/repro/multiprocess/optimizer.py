"""CAS-optimal production-split search (the Fig. 14 sweep).

For every (primary, secondary) node pair, sweep the production split and
keep the split with the highest CAS; report that split's TTM and cost.
The paper's Fig. 14 runs this for a Raven-inspired multicore at one
billion final chips and highlights the overall fastest combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..cost.model import CostModel
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel
from .split import (
    DesignFactory,
    ProductionSplit,
    SplitEvaluation,
    evaluate_split,
    single_process_plan,
)

#: Default split grid: 1% .. 100% of chips on the primary node.
DEFAULT_SPLIT_GRID: Tuple[float, ...] = tuple(s / 100.0 for s in range(1, 101))


@dataclass(frozen=True)
class PairResult:
    """The CAS-optimal split for one (primary, secondary) pair."""

    primary: str
    secondary: str
    best: SplitEvaluation

    @property
    def is_single_process(self) -> bool:
        """True when the optimum puts everything on one node."""
        return self.best.split >= 1.0 or self.primary == self.secondary


@dataclass(frozen=True)
class SplitStudy:
    """Full Fig. 14 sweep output."""

    n_chips: float
    pairs: Mapping[Tuple[str, str], PairResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", dict(self.pairs))

    def fastest(self) -> PairResult:
        """The combination with the lowest time-to-market."""
        return min(self.pairs.values(), key=lambda pair: pair.best.ttm_weeks)

    def cheapest(self) -> PairResult:
        """The combination with the lowest chip-creation cost."""
        return min(self.pairs.values(), key=lambda pair: pair.best.cost_usd)

    def most_agile(self) -> PairResult:
        """The combination with the highest CAS."""
        return max(self.pairs.values(), key=lambda pair: pair.best.cas)

    def single_process_results(self) -> Dict[str, PairResult]:
        """The diagonal: one-node manufacturing baselines."""
        return {
            primary: result
            for (primary, secondary), result in self.pairs.items()
            if primary == secondary
        }


def best_split_for_pair(
    design_factory: DesignFactory,
    primary: str,
    secondary: str,
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    split_grid: Sequence[float] = DEFAULT_SPLIT_GRID,
) -> PairResult:
    """Sweep the split grid for one pair, keeping the max-CAS split.

    Ties on CAS break toward lower TTM. The diagonal (primary ==
    secondary) evaluates only the single-process plan.
    """
    if not split_grid:
        raise InvalidParameterError("split grid must be non-empty")
    plans: List[ProductionSplit] = []
    if primary == secondary:
        plans.append(single_process_plan(design_factory, primary))
    else:
        for split in split_grid:
            if split >= 1.0:
                plans.append(single_process_plan(design_factory, primary))
            else:
                plans.append(
                    ProductionSplit(
                        design_factory=design_factory,
                        primary=primary,
                        secondary=secondary,
                        split=split,
                    )
                )
    evaluations = [
        evaluate_split(plan, model, cost_model, n_chips) for plan in plans
    ]
    best = max(evaluations, key=lambda ev: (ev.cas, -ev.ttm_weeks))
    return PairResult(primary=primary, secondary=secondary, best=best)


def run_split_study(
    design_factory: DesignFactory,
    processes: Sequence[str],
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    split_grid: Sequence[float] = DEFAULT_SPLIT_GRID,
    include_singles: bool = True,
) -> SplitStudy:
    """Evaluate every unordered node pair (plus singles on the diagonal).

    ``processes`` should contain only nodes currently in production; the
    primary is always the more advanced (later-roadmap) node of the pair,
    matching the paper's axes.
    """
    if len(processes) < 1:
        raise InvalidParameterError("need at least one process node")
    if len(set(processes)) != len(processes):
        raise InvalidParameterError(f"duplicate nodes in {processes}")
    pairs: Dict[Tuple[str, str], PairResult] = {}
    ordered = list(processes)
    for i, secondary in enumerate(ordered):
        start = i if include_singles else i + 1
        for primary in ordered[start:]:
            pairs[(primary, secondary)] = best_split_for_pair(
                design_factory,
                primary,
                secondary,
                model,
                cost_model,
                n_chips,
                split_grid,
            )
    return SplitStudy(n_chips=n_chips, pairs=pairs)


def headline_comparison(study: SplitStudy) -> Dict[str, float]:
    """The Sec. 7 headline numbers.

    * ``agility_gain`` — fastest multi-process split's CAS over the
      fastest single process's CAS, minus 1 (paper: +47%).
    * ``ttm_gain_vs_cheapest`` — how much faster the fastest multi-process
      split is than the cheapest process, as a fraction (paper: 8%).
    * ``cost_increase`` — its cost over the cheapest process's cost,
      minus 1 (paper: +1.6%).
    """
    singles = study.single_process_results()
    if not singles:
        raise InvalidParameterError("study has no single-process baselines")
    multi = {
        key: result
        for key, result in study.pairs.items()
        if not result.is_single_process
    }
    if not multi:
        raise InvalidParameterError("study found no true multi-process optima")
    fastest_multi = min(multi.values(), key=lambda r: r.best.ttm_weeks)
    fastest_single = min(singles.values(), key=lambda r: r.best.ttm_weeks)
    cheapest_single = min(singles.values(), key=lambda r: r.best.cost_usd)
    return {
        "agility_gain": fastest_multi.best.cas / fastest_single.best.cas - 1.0,
        "ttm_gain_vs_cheapest": 1.0
        - fastest_multi.best.ttm_weeks / cheapest_single.best.ttm_weeks,
        "cost_increase": fastest_multi.best.cost_usd
        / cheapest_single.best.cost_usd
        - 1.0,
    }
