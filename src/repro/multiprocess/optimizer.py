"""CAS-optimal production-split search (the Fig. 14 sweep).

For every (primary, secondary) node pair, sweep the production split and
keep the split with the highest CAS; report that split's TTM and cost.
The paper's Fig. 14 runs this for a Raven-inspired multicore at one
billion final chips and highlights the overall fastest combination.

Two engines drive the sweep:

* ``engine="batch"`` (default) — one vectorized
  :func:`repro.engine.batch_split.batch_split` call evaluates the whole
  (pair x split-grid) tensor through cached per-node invariants, with an
  optional coarse -> fine ``refine`` stage that resolves each pair's
  optimum to ~0.1% split resolution for the price of the 1% grid;
* ``engine="scalar"`` — the original per-plan
  :func:`~repro.multiprocess.split.evaluate_split` loop, kept as the
  equivalence oracle (the engines match to <= 1e-9 relative error,
  pinned by ``tests/engine/test_batch_split.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..cost.model import CostModel
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel
from .split import (
    DesignFactory,
    ProductionSplit,
    SplitEvaluation,
    evaluate_split,
    single_process_plan,
)

#: Default split grid: 1% .. 100% of chips on the primary node.
DEFAULT_SPLIT_GRID: Tuple[float, ...] = tuple(s / 100.0 for s in range(1, 101))

#: Points in each pair's second-stage grid when ``refine=True``.
DEFAULT_REFINE_POINTS = 21

_ENGINES = ("batch", "scalar")

#: Refinement modes: ``True`` is an alias for ``"exact"``.
_REFINE_MODES = (False, True, "exact", "grid")


def _require_refine(refine: Union[bool, str]) -> Union[bool, str]:
    if refine not in _REFINE_MODES:
        raise InvalidParameterError(
            f"unknown refinement mode {refine!r}; choose from "
            f"{_REFINE_MODES}"
        )
    return "exact" if refine is True else refine


@dataclass(frozen=True)
class PairResult:
    """The CAS-optimal split for one (primary, secondary) pair."""

    primary: str
    secondary: str
    best: SplitEvaluation

    @property
    def is_single_process(self) -> bool:
        """True when the optimum puts everything on one node."""
        return self.best.split >= 1.0 or self.primary == self.secondary


@dataclass(frozen=True)
class SplitStudy:
    """Full Fig. 14 sweep output."""

    n_chips: float
    pairs: Mapping[Tuple[str, str], PairResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", dict(self.pairs))

    def _require_results(self, what: str) -> None:
        if not self.pairs:
            raise InvalidParameterError(
                f"cannot pick the {what} combination of an empty study; "
                "run_split_study produced no pair results"
            )

    def fastest(self) -> PairResult:
        """The combination with the lowest time-to-market."""
        self._require_results("fastest")
        return min(self.pairs.values(), key=lambda pair: pair.best.ttm_weeks)

    def cheapest(self) -> PairResult:
        """The combination with the lowest chip-creation cost."""
        self._require_results("cheapest")
        return min(self.pairs.values(), key=lambda pair: pair.best.cost_usd)

    def most_agile(self) -> PairResult:
        """The combination with the highest CAS."""
        self._require_results("most agile")
        return max(self.pairs.values(), key=lambda pair: pair.best.cas)

    def single_process_results(self) -> Dict[str, PairResult]:
        """The diagonal: one-node manufacturing baselines."""
        return {
            primary: result
            for (primary, secondary), result in self.pairs.items()
            if primary == secondary
        }


def _require_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise InvalidParameterError(
            f"unknown split engine {engine!r}; choose from {_ENGINES}"
        )


def _ranking_key(evaluation: SplitEvaluation) -> Tuple[float, float]:
    """Max CAS, ties broken toward lower TTM (the Fig. 14 objective)."""
    return (evaluation.cas, -evaluation.ttm_weeks)


def _batched_best(
    design_factory: DesignFactory,
    pairs: Sequence[Tuple[str, str]],
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    split_grid: Sequence[float],
    refine: Union[bool, str],
    refine_points: int,
) -> List[SplitEvaluation]:
    """Per-pair optima from the vectorized tensor (+ optional refinement)."""
    # Imported lazily: ``repro.engine.batch_split`` itself imports from
    # ``repro.multiprocess``, so a module-level import here would close
    # an import cycle during package initialization.
    from ..engine.batch_split import (
        batch_split,
        refine_split_exact,
        refine_split_grid,
    )

    refine = _require_refine(refine)
    coarse = batch_split(
        design_factory,
        pairs,
        model,
        cost_model,
        n_chips,
        split_grid=split_grid,
    )
    best = list(coarse.best_evaluations())
    if not refine:
        return best
    if refine == "exact":
        fine_grid = refine_split_exact(
            coarse,
            design_factory,
            model,
            cost_model,
            points=refine_points,
        )
    else:
        fine_grid = refine_split_grid(coarse, points=refine_points)
    fine = batch_split(
        design_factory,
        pairs,
        model,
        cost_model,
        n_chips,
        split_grid=fine_grid,
    )
    # The fine grid brackets the coarse optimum but need not contain it,
    # so refinement keeps whichever stage actually scored higher.
    return [
        max(coarse_ev, fine_ev, key=_ranking_key)
        for coarse_ev, fine_ev in zip(best, fine.best_evaluations())
    ]


def best_split_for_pair(
    design_factory: DesignFactory,
    primary: str,
    secondary: str,
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    split_grid: Sequence[float] = DEFAULT_SPLIT_GRID,
    engine: str = "batch",
    refine: Union[bool, str] = False,
    refine_points: int = DEFAULT_REFINE_POINTS,
) -> PairResult:
    """Sweep the split grid for one pair, keeping the max-CAS split.

    Ties on CAS break toward lower TTM. The diagonal (primary ==
    secondary) evaluates only the single-process plan. ``refine`` adds a
    second vectorized stage around the coarse optimum (batch engine
    only): ``"exact"`` (alias ``True``) solves the bracket's
    piecewise-affine breakpoints, ``"grid"`` carpets it with
    ``refine_points`` evenly spaced splits.
    """
    _require_engine(engine)
    if len(split_grid) == 0:
        raise InvalidParameterError("split grid must be non-empty")
    if engine == "batch":
        best = _batched_best(
            design_factory,
            [(primary, secondary)],
            model,
            cost_model,
            n_chips,
            split_grid,
            refine,
            refine_points,
        )[0]
        return PairResult(primary=primary, secondary=secondary, best=best)
    if refine:
        raise InvalidParameterError(
            "split refinement requires the batch engine"
        )
    plans: List[ProductionSplit] = []
    if primary == secondary:
        plans.append(single_process_plan(design_factory, primary))
    else:
        for split in split_grid:
            if split >= 1.0:
                plans.append(single_process_plan(design_factory, primary))
            else:
                plans.append(
                    ProductionSplit(
                        design_factory=design_factory,
                        primary=primary,
                        secondary=secondary,
                        split=split,
                    )
                )
    evaluations = [
        evaluate_split(plan, model, cost_model, n_chips) for plan in plans
    ]
    best = max(evaluations, key=_ranking_key)
    return PairResult(primary=primary, secondary=secondary, best=best)


def run_split_study(
    design_factory: DesignFactory,
    processes: Sequence[str],
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    split_grid: Sequence[float] = DEFAULT_SPLIT_GRID,
    include_singles: bool = True,
    engine: str = "batch",
    refine: Union[bool, str] = False,
    refine_points: int = DEFAULT_REFINE_POINTS,
) -> SplitStudy:
    """Evaluate every unordered node pair (plus singles on the diagonal).

    ``processes`` should contain only nodes currently in production; the
    primary is always the more advanced (later-roadmap) node of the pair,
    matching the paper's axes. The default batch engine evaluates the
    whole study as one (pair x split) tensor; ``engine="scalar"`` falls
    back to the per-plan loop (the equivalence oracle). ``refine="exact"``
    (alias ``True``) adds a second vectorized stage that solves each
    pair's bracket for its piecewise-affine breakpoints — the bracket's
    true optimum, not a grid approximation; ``refine="grid"`` keeps the
    original ``refine_points``-point fine grid.
    """
    _require_engine(engine)
    if len(processes) < 1:
        raise InvalidParameterError("need at least one process node")
    if len(set(processes)) != len(processes):
        raise InvalidParameterError(f"duplicate nodes in {processes}")
    if len(split_grid) == 0:
        raise InvalidParameterError("split grid must be non-empty")
    ordered = list(processes)
    keys: List[Tuple[str, str]] = []
    for i, secondary in enumerate(ordered):
        start = i if include_singles else i + 1
        for primary in ordered[start:]:
            keys.append((primary, secondary))
    pairs: Dict[Tuple[str, str], PairResult] = {}
    if engine == "batch":
        if keys:
            best = _batched_best(
                design_factory,
                keys,
                model,
                cost_model,
                n_chips,
                split_grid,
                refine,
                refine_points,
            )
            for (primary, secondary), evaluation in zip(keys, best):
                pairs[(primary, secondary)] = PairResult(
                    primary=primary, secondary=secondary, best=evaluation
                )
        return SplitStudy(n_chips=n_chips, pairs=pairs)
    for primary, secondary in keys:
        pairs[(primary, secondary)] = best_split_for_pair(
            design_factory,
            primary,
            secondary,
            model,
            cost_model,
            n_chips,
            split_grid,
            engine=engine,
            refine=refine,
        )
    return SplitStudy(n_chips=n_chips, pairs=pairs)


def headline_comparison(study: SplitStudy) -> Dict[str, float]:
    """The Sec. 7 headline numbers.

    * ``agility_gain`` — fastest multi-process split's CAS over the
      fastest single process's CAS, minus 1 (paper: +47%).
    * ``ttm_gain_vs_cheapest`` — how much faster the fastest multi-process
      split is than the cheapest process, as a fraction (paper: 8%).
    * ``cost_increase`` — its cost over the cheapest process's cost,
      minus 1 (paper: +1.6%).
    """
    singles = study.single_process_results()
    if not singles:
        raise InvalidParameterError("study has no single-process baselines")
    multi = {
        key: result
        for key, result in study.pairs.items()
        if not result.is_single_process
    }
    if not multi:
        raise InvalidParameterError("study found no true multi-process optima")
    fastest_multi = min(multi.values(), key=lambda r: r.best.ttm_weeks)
    fastest_single = min(singles.values(), key=lambda r: r.best.ttm_weeks)
    cheapest_single = min(singles.values(), key=lambda r: r.best.cost_usd)
    return {
        "agility_gain": fastest_multi.best.cas / fastest_single.best.cas - 1.0,
        "ttm_gain_vs_cheapest": 1.0
        - fastest_multi.best.ttm_weeks / cheapest_single.best.ttm_weeks,
        "cost_increase": fastest_multi.best.cost_usd
        / cheapest_single.best.cost_usd
        - 1.0,
    }
