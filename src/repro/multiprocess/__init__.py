"""Multi-process chip manufacturing methodology (paper Sec. 7)."""

from .allocation import (
    AllocationResult,
    balance_allocation,
    evaluate_allocation,
    greedy_node_selection,
)
from .optimizer import (
    DEFAULT_SPLIT_GRID,
    PairResult,
    SplitStudy,
    best_split_for_pair,
    headline_comparison,
    run_split_study,
)
from .split import (
    DesignFactory,
    ProductionSplit,
    SplitEvaluation,
    evaluate_split,
    make_plan,
    single_process_plan,
    split_cas,
    split_cost_usd,
    split_ttm_weeks,
)

__all__ = [
    "AllocationResult",
    "DEFAULT_SPLIT_GRID",
    "DesignFactory",
    "PairResult",
    "ProductionSplit",
    "SplitEvaluation",
    "SplitStudy",
    "balance_allocation",
    "best_split_for_pair",
    "evaluate_allocation",
    "evaluate_split",
    "greedy_node_selection",
    "headline_comparison",
    "make_plan",
    "run_split_study",
    "single_process_plan",
    "split_cas",
    "split_cost_usd",
    "split_ttm_weeks",
]
