"""Multi-process chip manufacturing (paper Sec. 7).

The methodology tapes out the *same architecture* on two process nodes in
parallel and splits the production volume between them. The two
production lines are alternatives, not chiplets: each line fabricates,
tests and packages complete chips, and the order is filled when the
slower line finishes. Formally:

    TTM(s) = T_design + max_p [ T_tapeout(p) + T_queue(p)
                                + N_W(s_p * n, p) / mu_W(p) + L_fab(p)
                                + T_package(s_p * n, p) ]

with ``s_primary = s`` and ``s_secondary = 1 - s``. CAS follows Eq. 8
over both nodes. Costs pay NRE (engineering + fixed + masks) on *both*
nodes — the methodology's overhead — plus per-line manufacturing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping

from ..agility.derivative import DEFAULT_RELATIVE_STEP, ttm_rate_sensitivity
from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel

#: A factory mapping a process-node name to the ported design.
DesignFactory = Callable[[str], ChipDesign]


@dataclass(frozen=True)
class ProductionSplit:
    """A two-node production plan for one architecture.

    Attributes
    ----------
    design_factory:
        Ports the architecture to a node (e.g. ``raven_multicore``).
    primary / secondary:
        The two process nodes. They must differ unless ``split`` is 1.0.
    split:
        Fraction of final chips produced on the primary node, in (0, 1].
        ``split == 1.0`` degenerates to single-process manufacturing.
    """

    design_factory: DesignFactory
    primary: str
    secondary: str
    split: float

    def __post_init__(self) -> None:
        if not 0.0 < self.split <= 1.0:
            raise InvalidParameterError(
                f"split must be in (0, 1], got {self.split}"
            )
        if self.primary == self.secondary and self.split < 1.0:
            raise InvalidParameterError(
                "a two-node split needs two distinct nodes "
                f"(both are {self.primary!r})"
            )

    @property
    def allocations(self) -> Dict[str, float]:
        """{node: fraction of chips} with zero-volume nodes dropped."""
        if self.split >= 1.0:
            return {self.primary: 1.0}
        return {self.primary: self.split, self.secondary: 1.0 - self.split}

    @property
    def is_single_process(self) -> bool:
        """True when the whole volume lands on the primary node."""
        return self.split >= 1.0


@dataclass(frozen=True)
class SplitEvaluation:
    """TTM / cost / CAS of one production split."""

    primary: str
    secondary: str
    split: float
    n_chips: float
    ttm_weeks: float
    cost_usd: float
    cas: float
    line_weeks: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "line_weeks", dict(self.line_weeks))

    @property
    def cas_normalized(self) -> float:
        """CAS in the figures' kilo-wafer units."""
        return self.cas / 1000.0

    @property
    def bottleneck_process(self) -> str:
        """The production line that finishes last."""
        return max(self.line_weeks.items(), key=lambda item: item[1])[0]


def split_ttm_weeks(
    plan: ProductionSplit, model: TTMModel, n_chips: float
) -> float:
    """TTM of the split: the slower of the two independent lines."""
    return max(_line_weeks(plan, model, n_chips).values())


def _line_weeks(
    plan: ProductionSplit, model: TTMModel, n_chips: float
) -> Dict[str, float]:
    if n_chips <= 0.0:
        raise InvalidParameterError(
            f"number of final chips must be positive, got {n_chips}"
        )
    lines: Dict[str, float] = {}
    for process, fraction in plan.allocations.items():
        design = plan.design_factory(process)
        lines[process] = model.total_weeks(design, n_chips * fraction)
    return lines


def split_cost_usd(
    plan: ProductionSplit, cost_model: CostModel, n_chips: float
) -> float:
    """Chip-creation cost: NRE per node plus per-line manufacturing."""
    total = 0.0
    for process, fraction in plan.allocations.items():
        design = plan.design_factory(process)
        total += cost_model.total_usd(design, n_chips * fraction)
    return total


def split_cas(
    plan: ProductionSplit,
    model: TTMModel,
    n_chips: float,
    relative_step: float = DEFAULT_RELATIVE_STEP,
) -> float:
    """Eq. 8 over the split's nodes.

    Each node's rate perturbation only moves its own line; the max over
    lines couples them exactly as the packaging-synchronization max does
    for chiplets.
    """
    conditions = model.foundry.conditions
    total_sensitivity = 0.0
    for process in plan.allocations:
        node = model.foundry.technology.require_production(process)
        fraction = conditions.capacity_for(process)
        if fraction <= 0.0:
            raise InvalidParameterError(
                f"cannot evaluate CAS with zero capacity on {process!r}"
            )
        max_rate = node.max_wafer_rate_per_week

        def ttm_at_rate(rate: float, _process: str = process) -> float:
            perturbed = model.with_foundry(
                model.foundry.with_conditions(
                    conditions.with_capacity(_process, rate / max_rate)
                )
            )
            return split_ttm_weeks(plan, perturbed, n_chips)

        total_sensitivity += ttm_rate_sensitivity(
            ttm_at_rate, fraction * max_rate, relative_step
        )
    if total_sensitivity <= 0.0:
        raise InvalidParameterError(
            "split has zero TTM sensitivity; CAS is unbounded"
        )
    return 1.0 / total_sensitivity


def evaluate_split(
    plan: ProductionSplit,
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    with_cas: bool = True,
) -> SplitEvaluation:
    """Full TTM / cost / CAS evaluation of one production split."""
    lines = _line_weeks(plan, model, n_chips)
    cas = (
        split_cas(plan, model, n_chips, relative_step) if with_cas else 0.0
    )
    return SplitEvaluation(
        primary=plan.primary,
        secondary=plan.secondary,
        split=plan.split,
        n_chips=n_chips,
        ttm_weeks=max(lines.values()),
        cost_usd=split_cost_usd(plan, cost_model, n_chips),
        cas=cas,
        line_weeks=lines,
    )


def single_process_plan(
    design_factory: DesignFactory, process: str
) -> ProductionSplit:
    """The degenerate one-node plan (baseline for Sec. 7 comparisons)."""
    return ProductionSplit(
        design_factory=design_factory,
        primary=process,
        secondary=process,
        split=1.0,
    )


def make_plan(
    design_factory: DesignFactory,
    primary: str,
    secondary: str,
    split: float,
) -> ProductionSplit:
    """Convenience constructor mirroring the Fig. 14 axes."""
    return ProductionSplit(
        design_factory=design_factory,
        primary=primary,
        secondary=secondary,
        split=split,
    )
