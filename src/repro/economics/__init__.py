"""Economics extension: market windows, revenue loss, profit studies."""

from .market_window import (
    MarketWindow,
    mckinsey_loss_fraction,
    mckinsey_loss_fractions,
    triangle_loss_fraction,
    triangle_loss_fractions,
)
from .profit import ProfitPoint, ProfitStudy, profit_study

__all__ = [
    "MarketWindow",
    "ProfitPoint",
    "ProfitStudy",
    "mckinsey_loss_fraction",
    "mckinsey_loss_fractions",
    "profit_study",
    "triangle_loss_fraction",
    "triangle_loss_fractions",
]
