"""Economics extension: market windows, revenue loss, profit studies."""

from .market_window import (
    MarketWindow,
    mckinsey_loss_fraction,
    triangle_loss_fraction,
)
from .profit import ProfitPoint, ProfitStudy, profit_study

__all__ = [
    "MarketWindow",
    "ProfitPoint",
    "ProfitStudy",
    "mckinsey_loss_fraction",
    "profit_study",
    "triangle_loss_fraction",
]
