"""Profit-optimal node selection: revenue minus chip-creation cost.

Closes the economic loop the paper opens: TTM (via the market-window
revenue model) and chip-creation cost (via the Moonwalk-derived model)
combine into expected profit per candidate process node, so an architect
can ask the question firms actually face — not "which node is fastest?"
or "which is cheapest?" but "which node makes the most money given the
race we are in?".

The reference product launches the race at week 0; the chip enters the
market when its TTM elapses, so the *entire* TTM counts as delay against
the window (callers can subtract a head start via ``head_start_weeks``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..analysis.tables import format_table
from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel
from .market_window import MarketWindow


@dataclass(frozen=True)
class ProfitPoint:
    """Profitability of one candidate node."""

    process: str
    ttm_weeks: float
    delay_weeks: float
    revenue_usd: float
    cost_usd: float

    @property
    def profit_usd(self) -> float:
        """Revenue minus chip-creation cost."""
        return self.revenue_usd - self.cost_usd


@dataclass(frozen=True)
class ProfitStudy:
    """Profitability across candidate nodes for one design family."""

    n_chips: float
    window: MarketWindow
    points: Tuple[ProfitPoint, ...]

    def point(self, process: str) -> ProfitPoint:
        """Look up one node's profitability."""
        for candidate in self.points:
            if candidate.process == process:
                return candidate
        raise KeyError(f"no profit point for {process!r}")

    @property
    def most_profitable(self) -> ProfitPoint:
        """The node maximizing profit."""
        return max(self.points, key=lambda point: point.profit_usd)

    @property
    def fastest(self) -> ProfitPoint:
        """The node minimizing TTM."""
        return min(self.points, key=lambda point: point.ttm_weeks)

    @property
    def cheapest(self) -> ProfitPoint:
        """The node minimizing chip-creation cost."""
        return min(self.points, key=lambda point: point.cost_usd)

    def table(self) -> str:
        """Per-node profitability rows."""
        rows = [
            [
                point.process,
                point.ttm_weeks,
                point.revenue_usd / 1e9,
                point.cost_usd / 1e9,
                point.profit_usd / 1e9,
            ]
            for point in self.points
        ]
        return format_table(
            ["node", "TTM wk", "revenue $B", "cost $B", "profit $B"], rows
        )


def profit_study(
    design_factory,
    processes: Sequence[str],
    window: MarketWindow,
    n_chips: float,
    model: Optional[TTMModel] = None,
    cost_model: Optional[CostModel] = None,
    head_start_weeks: float = 0.0,
) -> ProfitStudy:
    """Evaluate profit across candidate nodes.

    ``design_factory`` maps a node name to the ported
    :class:`~repro.design.chip.ChipDesign` (exactly the Sec. 7 factory
    convention); ``head_start_weeks`` shifts the window opening later
    (e.g. the weeks of design work already banked before the clock
    starts).
    """
    if not processes:
        raise InvalidParameterError("need at least one candidate node")
    if head_start_weeks < 0.0:
        raise InvalidParameterError(
            f"head start must be >= 0, got {head_start_weeks}"
        )
    ttm_model = model or TTMModel.nominal()
    costs = cost_model or CostModel.nominal()
    points = []
    for process in processes:
        design: ChipDesign = design_factory(process)
        ttm = ttm_model.total_weeks(design, n_chips)
        delay = max(ttm - head_start_weeks, 0.0)
        points.append(
            ProfitPoint(
                process=process,
                ttm_weeks=ttm,
                delay_weeks=delay,
                revenue_usd=window.revenue_usd(delay),
                cost_usd=costs.total_usd(design, n_chips),
            )
        )
    return ProfitStudy(n_chips=n_chips, window=window, points=tuple(points))
