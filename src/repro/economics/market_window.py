"""Market-window revenue model.

The paper motivates TTM economically: "In order for chip designers to
profit, products must meet time-to-market requirements to maximize
revenue" (Sec. 2.2, citing Philips [89]). This module implements the
classic triangular market-window model behind that argument.

An on-time product's weekly revenue rises linearly to a peak ``P`` at
the window midpoint ``W/2`` and declines linearly to zero at ``W``
(lifetime revenue ``W*P/2``). A product entering ``d`` weeks late rises
with the *same* slope from its entry until it hits the declining
envelope (competitors already own the early market), then follows the
envelope down. Geometry gives its lifetime revenue as
``P * (W - d)^2 / (2W)``, i.e. a loss fraction of

    loss(d) = d * (2W - d) / W^2                (triangle model)

The often-quoted McKinsey rule ``d * (3W - d) / (2 W^2)`` (which assumes
the late entrant also loses half its peak share) is provided as an
alternative; both are 0 at d = 0 and 1 at d = W, with McKinsey slightly
gentler in between.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError


def triangle_loss_fraction(delay_weeks: float, window_weeks: float) -> float:
    """Revenue loss fraction under the delayed-triangle geometry."""
    _validate(delay_weeks, window_weeks)
    if delay_weeks >= window_weeks:
        return 1.0
    w = window_weeks
    return delay_weeks * (2.0 * w - delay_weeks) / (w * w)


def triangle_loss_fractions(
    delay_weeks: np.ndarray, window_weeks: float
) -> np.ndarray:
    """Vectorized :func:`triangle_loss_fraction` over a delay sample.

    Negative delays (entering *earlier* than the reference) lose nothing;
    delays at or past the window forfeit everything. Used by the Monte
    Carlo layer to turn a TTM distribution into a revenue-loss
    distribution in one array expression.
    """
    if window_weeks <= 0.0:
        raise InvalidParameterError(
            f"market window must be positive, got {window_weeks}"
        )
    d = np.clip(np.asarray(delay_weeks, dtype=float), 0.0, window_weeks)
    w = window_weeks
    return d * (2.0 * w - d) / (w * w)


def mckinsey_loss_fractions(
    delay_weeks: np.ndarray, window_weeks: float
) -> np.ndarray:
    """Vectorized :func:`mckinsey_loss_fraction` (same clamping rules)."""
    if window_weeks <= 0.0:
        raise InvalidParameterError(
            f"market window must be positive, got {window_weeks}"
        )
    d = np.clip(np.asarray(delay_weeks, dtype=float), 0.0, window_weeks)
    w = window_weeks
    return d * (3.0 * w - d) / (2.0 * w * w)


def mckinsey_loss_fraction(delay_weeks: float, window_weeks: float) -> float:
    """The McKinsey d(3W - d)/(2W^2) variant of the loss rule."""
    _validate(delay_weeks, window_weeks)
    if delay_weeks >= window_weeks:
        return 1.0
    w = window_weeks
    return delay_weeks * (3.0 * w - delay_weeks) / (2.0 * w * w)


def _validate(delay_weeks: float, window_weeks: float) -> None:
    if window_weeks <= 0.0:
        raise InvalidParameterError(
            f"market window must be positive, got {window_weeks}"
        )
    if delay_weeks < 0.0:
        raise InvalidParameterError(f"delay must be >= 0, got {delay_weeks}")


@dataclass(frozen=True)
class MarketWindow:
    """A product's revenue opportunity over time.

    Attributes
    ----------
    window_weeks:
        Total market-window length W (opening to saturation to close).
    peak_weekly_revenue_usd:
        Peak weekly revenue P at the window midpoint for an on-time entry.
    """

    window_weeks: float
    peak_weekly_revenue_usd: float

    def __post_init__(self) -> None:
        if self.window_weeks <= 0.0:
            raise InvalidParameterError(
                f"market window must be positive, got {self.window_weeks}"
            )
        if self.peak_weekly_revenue_usd <= 0.0:
            raise InvalidParameterError(
                "peak weekly revenue must be positive, got "
                f"{self.peak_weekly_revenue_usd}"
            )

    @property
    def on_time_revenue_usd(self) -> float:
        """Lifetime revenue of an on-time entry (triangle area W*P/2)."""
        return 0.5 * self.window_weeks * self.peak_weekly_revenue_usd

    @property
    def _slope(self) -> float:
        """Rise/decline slope of the envelope, USD/week per week."""
        return self.peak_weekly_revenue_usd / (self.window_weeks / 2.0)

    def weekly_revenue_usd(self, week: float, delay_weeks: float = 0.0) -> float:
        """Weekly revenue ``week`` weeks after the window opened.

        The delayed product rises at the on-time slope from its entry,
        peaks where it meets the declining envelope (at
        ``(W + d) / 2``), then follows the envelope down.
        """
        _validate(delay_weeks, self.window_weeks)
        w = self.window_weeks
        if week < delay_weeks or week >= w:
            return 0.0
        rise = self._slope * (week - delay_weeks)
        envelope_decline = self._slope * (w - week)
        return min(rise, envelope_decline)

    def loss_fraction(self, delay_weeks: float) -> float:
        """Fraction of on-time revenue forfeited (triangle model)."""
        return triangle_loss_fraction(delay_weeks, self.window_weeks)

    def revenue_usd(self, delay_weeks: float) -> float:
        """Lifetime revenue of an entry ``delay_weeks`` late."""
        return self.on_time_revenue_usd * (
            1.0 - self.loss_fraction(delay_weeks)
        )

    def marginal_loss_usd_per_week(self, delay_weeks: float) -> float:
        """d(revenue loss)/d(delay): what one *more* week of slip costs.

        Highest for the first weeks of slip — those forfeit the
        peak-building part of the window — and tapering toward zero as
        the window closes. The first week of delay is the most expensive
        week in the product's life, which is the whole case for treating
        time-to-market as a first-class design constraint.
        """
        _validate(delay_weeks, self.window_weeks)
        if delay_weeks >= self.window_weeks:
            return 0.0
        w = self.window_weeks
        derivative = 2.0 * (w - delay_weeks) / (w * w)
        return self.on_time_revenue_usd * derivative
