"""Consistency linting for user-supplied technology databases.

The paper's framework is explicitly meant for users to "plug in their
values" (Sec. 5). Hand-entered node tables fail in predictable ways —
densities that go *down* toward advanced nodes, efforts pasted in the
wrong unit, a latency in days instead of weeks. :func:`lint_database`
checks a :class:`~repro.technology.database.TechnologyDatabase` against
the structural expectations the models rely on and returns human-readable
findings, each tagged as an ``error`` (the models will mislead) or a
``warning`` (unusual, but possibly intended).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .database import TechnologyDatabase

#: Finding severities.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    severity: str
    node: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.node}: {self.message}"


def lint_database(technology: TechnologyDatabase) -> List[Finding]:
    """Check a database for the invariants the models assume.

    Checks, in roadmap order (older -> newer node):

    * density must strictly increase (errors — area math inverts);
    * tapeout effort should not decrease (error — Eq. 2's premise);
    * fab latency should not decrease (warning);
    * defect density should not *decrease* toward older nodes
      (warning — mature processes are cleaner);
    * wafer and mask costs should not decrease (warnings);
    * per-node sanity ranges: latency 1-60 weeks, D0 below 5/cm^2,
      density below 1000 MTr/mm^2, wafer diameter 100-450 mm (errors).
    """
    findings: List[Finding] = []
    nodes = technology.nodes
    for older, newer in zip(nodes, nodes[1:]):
        if newer.density_mtr_per_mm2 <= older.density_mtr_per_mm2:
            findings.append(
                Finding(
                    ERROR,
                    newer.name,
                    "transistor density does not increase over "
                    f"{older.name} ({newer.density_mtr_per_mm2} <= "
                    f"{older.density_mtr_per_mm2} MTr/mm^2)",
                )
            )
        if newer.tapeout_effort < older.tapeout_effort:
            findings.append(
                Finding(
                    ERROR,
                    newer.name,
                    "tapeout effort decreases toward the advanced node, "
                    "contradicting the design-rule-complexity premise",
                )
            )
        if newer.fab_latency_weeks < older.fab_latency_weeks:
            findings.append(
                Finding(
                    WARNING,
                    newer.name,
                    f"fab latency shrinks vs {older.name}; advanced flows "
                    "usually have more steps",
                )
            )
        if newer.defect_density_per_cm2 < older.defect_density_per_cm2:
            findings.append(
                Finding(
                    WARNING,
                    older.name,
                    "defect density is higher than on the newer "
                    f"{newer.name}; mature nodes are usually cleaner",
                )
            )
        if newer.wafer_cost_usd < older.wafer_cost_usd:
            findings.append(
                Finding(
                    WARNING,
                    newer.name,
                    f"wafer cost drops below {older.name}'s",
                )
            )
        if newer.mask_set_cost_usd < older.mask_set_cost_usd:
            findings.append(
                Finding(
                    WARNING,
                    newer.name,
                    f"mask-set cost drops below {older.name}'s",
                )
            )
    for node in nodes:
        checks: Tuple[Tuple[bool, str], ...] = (
            (
                not 1.0 <= node.fab_latency_weeks <= 60.0,
                f"fab latency {node.fab_latency_weeks} weeks is outside "
                "1-60; is it in days?",
            ),
            (
                node.defect_density_per_cm2 > 5.0,
                f"defect density {node.defect_density_per_cm2}/cm^2 exceeds "
                "5; is it per wafer?",
            ),
            (
                node.density_mtr_per_mm2 > 1000.0,
                f"density {node.density_mtr_per_mm2} MTr/mm^2 exceeds any "
                "announced process; is it transistors/mm^2?",
            ),
            (
                not 100.0 <= node.wafer_diameter_mm <= 450.0,
                f"wafer diameter {node.wafer_diameter_mm} mm is outside "
                "100-450; is it in inches?",
            ),
        )
        for failed, message in checks:
            if failed:
                findings.append(Finding(ERROR, node.name, message))
    return findings


def assert_clean(technology: TechnologyDatabase) -> None:
    """Raise ``ValueError`` if the database has any error-level finding."""
    problems = [
        finding
        for finding in lint_database(technology)
        if finding.severity == ERROR
    ]
    if problems:
        details = "; ".join(str(finding) for finding in problems)
        raise ValueError(f"technology database failed linting: {details}")
