"""The default technology database: twelve nodes from 250 nm to 5 nm.

Every parameter is either taken verbatim from the paper (Table 2 wafer
rates, latency schedule, alpha = 3), from the public sources the paper
cites (density, wafer and mask costs), or calibrated against intermediate
results the paper publishes (tapeout effort from Tables 3/4, the 250 nm
example in Sec. 6.2). `DESIGN.md` documents each anchor.

The database is an immutable mapping; sensitivity analysis and market
scenarios create perturbed *copies* via :meth:`TechnologyDatabase.override`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import InvalidParameterError, NodeUnavailableError, UnknownNodeError
from .density import DENSITY_MTR_PER_MM2
from .effort import ExponentialFit, LinearFit, LogLinearInterpolator, fit_linear
from .node import ProcessNode

#: Roadmap order, oldest first. The index into this tuple is the node index
#: used by the exponential effort/cost curves.
ROADMAP: Tuple[str, ...] = (
    "250nm",
    "180nm",
    "130nm",
    "90nm",
    "65nm",
    "40nm",
    "28nm",
    "20nm",
    "14nm",
    "10nm",
    "7nm",
    "5nm",
)

#: Feature size in nanometers per node.
NANOMETERS: Dict[str, float] = {
    "250nm": 250.0,
    "180nm": 180.0,
    "130nm": 130.0,
    "90nm": 90.0,
    "65nm": 65.0,
    "40nm": 40.0,
    "28nm": 28.0,
    "20nm": 20.0,
    "14nm": 14.0,
    "10nm": 10.0,
    "7nm": 7.0,
    "5nm": 5.0,
}

#: Estimated wafer production rates, kilo-wafers/month (paper Table 2).
#: 20 nm and 10 nm are zero: TSMC reported 0% revenue from them in 2022 Q2.
WAFER_RATE_KWPM: Dict[str, float] = {
    "250nm": 41.0,
    "180nm": 241.0,
    "130nm": 120.0,
    "90nm": 79.0,
    "65nm": 189.0,
    "40nm": 284.0,
    "28nm": 350.0,
    "20nm": 0.0,
    "14nm": 281.0,
    "10nm": 0.0,
    "7nm": 252.0,
    "5nm": 97.0,
}

#: Defect density D0 (defects/cm^2): low and flat for mature nodes,
#: increasing starting from 20 nm (paper Sec. 5, citing [27, 111]).
DEFECT_DENSITY_PER_CM2: Dict[str, float] = {
    "250nm": 0.05,
    "180nm": 0.05,
    "130nm": 0.05,
    "90nm": 0.05,
    "65nm": 0.05,
    "40nm": 0.05,
    "28nm": 0.05,
    "20nm": 0.07,
    "14nm": 0.08,
    "10nm": 0.09,
    "7nm": 0.09,
    "5nm": 0.10,
}

#: Foundry latency L_fab in weeks: 12 for legacy nodes, rising from 20 nm
#: up to 20 weeks at 5 nm (paper Sec. 5, citing [16, 128]).
FAB_LATENCY_WEEKS: Dict[str, float] = {
    "250nm": 12.0,
    "180nm": 12.0,
    "130nm": 12.0,
    "90nm": 12.0,
    "65nm": 12.0,
    "40nm": 12.0,
    "28nm": 12.0,
    "20nm": 14.0,
    "14nm": 15.0,
    "10nm": 17.0,
    "7nm": 18.0,
    "5nm": 20.0,
}

#: Baseline testing/assembly/packaging latency L_TAP, all nodes (Sec. 5).
TAP_LATENCY_WEEKS = 6.0

#: E_tapeout anchors in engineer-weeks per unique transistor, keyed by node
#: index. The 14 nm and 7 nm anchors are recovered exactly from Table 4
#: (475 M NUT -> 3.6 wk @14nm, 10.4 wk @7nm with a 100-engineer team; the
#: 523 M NUT I/O die -> 4.0 wk @14nm is consistent). The 5 nm anchor
#: continues that exponential trend; it also reproduces Table 3's tapeout
#: weeks with a 50-engineer block team (45.62 M NUT * 3.9e-6 / 50 = 3.56
#: wk vs the paper's 3.5). Legacy anchors extend the trend with mild
#: flattening (verification cost surveys show a slower slope pre-28 nm).
TAPEOUT_EFFORT_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (0.0, 1.5e-8),   # 250nm
    (1.0, 2.0e-8),   # 180nm
    (4.0, 5.0e-8),   # 65nm
    (6.0, 1.2e-7),   # 28nm
    (8.0, 7.58e-7),  # 14nm  (3.6 wk * 100 eng / 475 M NUT)
    (10.0, 2.19e-6),  # 7nm   (10.4 wk * 100 eng / 475 M NUT)
    (11.0, 3.9e-6),   # 5nm   (trend + Table 3 with a 50-engineer team)
)

#: E_testing linear fit over feature size in nm: aggregate TAP-line weeks
#: per transistor tested. Legacy test lines have lower aggregate
#: throughput, so per-transistor effort falls toward advanced nodes
#: (ITRS minimum test data volume [1] + validation costs [63]). The slope
#: is kept shallow so that production rate, not test throughput, drives
#: the legacy-node ordering (Fig. 10: 180 nm beats 130/90 nm because of
#: its higher wafer production rate).
TESTING_EFFORT_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (5.0, 1.425e-17),
    (130.0, 8.3e-17),
    (250.0, 1.49e-16),
)

#: E_package exponential over node index: aggregate packaging-line weeks
#: per chip per mm^2 of die. Grows mildly toward advanced nodes (finer
#: pitch, advanced packaging flows), per the paper's "physical costs"
#: fit. The scale is kept small enough that the fabrication phase — not
#: assembly — decides mixed-process vs single-process comparisons, which
#: is the regime the paper's Sec. 6.5 results live in.
PACKAGING_EFFORT_SCALE = 1.2e-10
PACKAGING_EFFORT_RATE = 0.03

#: Processed-wafer cost in USD (CSET AI-chips report [54] style figures).
WAFER_COST_USD: Dict[str, float] = {
    "250nm": 1000.0,
    "180nm": 1300.0,
    "130nm": 1500.0,
    "90nm": 1650.0,
    "65nm": 1850.0,
    "40nm": 2300.0,
    "28nm": 2600.0,
    "20nm": 3200.0,
    "14nm": 4000.0,
    "10nm": 5900.0,
    "7nm": 9300.0,
    "5nm": 17000.0,
}

#: Photomask-set cost in USD (LithoVision 2020 [50] style figures).
MASK_SET_COST_USD: Dict[str, float] = {
    "250nm": 7.0e4,
    "180nm": 1.0e5,
    "130nm": 2.5e5,
    "90nm": 4.5e5,
    "65nm": 7.0e5,
    "40nm": 1.0e6,
    "28nm": 1.5e6,
    "20nm": 2.5e6,
    "14nm": 3.9e6,
    "10nm": 6.0e6,
    "7nm": 9.5e6,
    "5nm": 1.6e7,
}

#: Fixed per-tapeout bring-up cost (EDA licenses, sign-off, shuttle
#: overhead): exponential in node index, calibrated so the 5 nm intercept
#: reproduces Table 3's C_tapeout column (~$3.0 M fixed at 5 nm).
TAPEOUT_FIXED_COST_SCALE = 3.0e4
TAPEOUT_FIXED_COST_RATE = 0.4193


def tapeout_effort_curve() -> LogLinearInterpolator:
    """Exponential-spline E_tapeout curve over the node index."""
    return LogLinearInterpolator.from_points(TAPEOUT_EFFORT_ANCHORS)


def testing_effort_fit() -> LinearFit:
    """Linear E_testing fit over feature size in nanometers."""
    return fit_linear(TESTING_EFFORT_ANCHORS)


def packaging_effort_fit() -> ExponentialFit:
    """Exponential E_package fit over the node index."""
    return ExponentialFit(scale=PACKAGING_EFFORT_SCALE, rate=PACKAGING_EFFORT_RATE)


def tapeout_fixed_cost_fit() -> ExponentialFit:
    """Exponential fixed tapeout cost over the node index."""
    return ExponentialFit(
        scale=TAPEOUT_FIXED_COST_SCALE, rate=TAPEOUT_FIXED_COST_RATE
    )


def build_default_nodes() -> List[ProcessNode]:
    """Construct the twelve default :class:`ProcessNode` instances."""
    tapeout = tapeout_effort_curve()
    testing = testing_effort_fit()
    packaging = packaging_effort_fit()
    fixed_cost = tapeout_fixed_cost_fit()
    nodes = []
    for index, name in enumerate(ROADMAP):
        nodes.append(
            ProcessNode(
                name=name,
                nanometers=NANOMETERS[name],
                index=index,
                density_mtr_per_mm2=DENSITY_MTR_PER_MM2[name],
                defect_density_per_cm2=DEFECT_DENSITY_PER_CM2[name],
                wafer_rate_kwpm=WAFER_RATE_KWPM[name],
                fab_latency_weeks=FAB_LATENCY_WEEKS[name],
                tapeout_effort=tapeout.predict(float(index)),
                testing_effort=testing.predict(NANOMETERS[name]),
                packaging_effort=packaging.predict(float(index)),
                wafer_cost_usd=WAFER_COST_USD[name],
                mask_set_cost_usd=MASK_SET_COST_USD[name],
                tapeout_fixed_cost_usd=fixed_cost.predict(float(index)),
            )
        )
    return nodes


class TechnologyDatabase(Mapping[str, ProcessNode]):
    """Immutable name -> :class:`ProcessNode` mapping with helpers.

    Supports the mapping protocol (``db["7nm"]``, iteration in roadmap
    order, ``len``) plus convenience accessors used by the models. Derived
    databases for sensitivity/scenario studies are created with
    :meth:`override`, which never mutates the original.
    """

    def __init__(self, nodes: Iterable[ProcessNode]):
        ordered = sorted(nodes, key=lambda node: node.index)
        self._nodes: Dict[str, ProcessNode] = {}
        for node in ordered:
            if node.name in self._nodes:
                raise InvalidParameterError(
                    f"duplicate process node name {node.name!r}"
                )
            self._nodes[node.name] = node

    @classmethod
    def default(cls) -> "TechnologyDatabase":
        """The paper's twelve-node roadmap with calibrated parameters."""
        return cls(build_default_nodes())

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> ProcessNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError(name, tuple(self._nodes)) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- Convenience accessors ----------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Node names in roadmap order (oldest first)."""
        return tuple(self._nodes)

    @property
    def nodes(self) -> Tuple[ProcessNode, ...]:
        """Nodes in roadmap order (oldest first)."""
        return tuple(self._nodes.values())

    def production_nodes(self) -> Tuple[ProcessNode, ...]:
        """Nodes with non-zero wafer production capacity."""
        return tuple(node for node in self.nodes if node.in_production)

    def require_production(self, name: str) -> ProcessNode:
        """Return the node, raising if it cannot fabricate wafers."""
        node = self[name]
        if not node.in_production:
            raise NodeUnavailableError(name)
        return node

    def override(
        self,
        overrides: Mapping[str, Mapping[str, float]],
        extra_nodes: Optional[Iterable[ProcessNode]] = None,
    ) -> "TechnologyDatabase":
        """A copy with per-node parameter overrides applied.

        ``overrides`` maps node name -> {field: value}. Unknown node names
        raise :class:`UnknownNodeError`. ``extra_nodes`` appends brand-new
        nodes (e.g. a hypothetical "12nm" I/O process).
        """
        for name in overrides:
            if name not in self._nodes:
                raise UnknownNodeError(name, tuple(self._nodes))
        nodes = [
            node.with_overrides(**overrides[node.name])
            if node.name in overrides
            else node
            for node in self.nodes
        ]
        if extra_nodes is not None:
            nodes.extend(extra_nodes)
        return TechnologyDatabase(nodes)

    def scale_wafer_rates(self, fractions: Mapping[str, float]) -> "TechnologyDatabase":
        """A copy with wafer rates scaled per node (capacity disruptions)."""
        overrides = {}
        for name, fraction in fractions.items():
            if fraction < 0.0:
                raise InvalidParameterError(
                    f"capacity fraction must be >= 0, got {fraction} for {name}"
                )
            overrides[name] = {
                "wafer_rate_kwpm": self[name].wafer_rate_kwpm * fraction
            }
        return self.override(overrides)
