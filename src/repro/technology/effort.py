"""Engineering-effort curve fits (paper Sec. 5, "Methodology").

The paper derives three per-node effort coefficients from published survey
data (IBS verification/validation cost reports, the ITRS test-volume
roadmap) plus the authors' own tapeout experience:

* ``E_tapeout(p)`` — engineer-weeks per unique transistor. Grows
  *exponentially* toward advanced nodes (design-rule complexity), fit with
  an exponential regression.
* ``E_package(p)`` — aggregate packaging-line weeks per chip and mm^2 of
  die, also fit with an exponential regression over the node index.
* ``E_testing(p)`` — aggregate test-line weeks per transistor tested, fit
  with a *linear* regression over the feature size in nanometers.

This module provides the generic fitting machinery (`ExponentialFit`,
`LinearFit`) plus a monotone log-space interpolator used by the default
database so that the curve passes *exactly* through the anchors recovered
from the paper's published intermediate results (Tables 3 and 4); the
global regression is exposed for analyses that prefer a strict
two-parameter exponential.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import CalibrationError, InvalidParameterError


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = intercept + slope * x``."""

    intercept: float
    slope: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.intercept + self.slope * x

    def __call__(self, x: float) -> float:
        return self.predict(x)


@dataclass(frozen=True)
class ExponentialFit:
    """Least-squares exponential ``y = scale * exp(rate * x)``.

    Fit in log space: ``ln y = ln scale + rate * x``, which is the standard
    "exponential regression" the paper references.
    """

    scale: float
    rate: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted exponential at ``x``."""
        return self.scale * math.exp(self.rate * x)

    def __call__(self, x: float) -> float:
        return self.predict(x)

    @property
    def doubling_interval(self) -> float:
        """Distance in ``x`` over which the fit doubles (infinite if flat)."""
        if self.rate == 0.0:
            return math.inf
        return math.log(2.0) / self.rate


def fit_linear(points: Sequence[Tuple[float, float]]) -> LinearFit:
    """Ordinary least-squares line through ``(x, y)`` anchor points."""
    if len(points) < 2:
        raise CalibrationError("linear fit needs at least two points")
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    n = float(len(points))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        raise CalibrationError("linear fit needs at least two distinct x values")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    return LinearFit(intercept=intercept, slope=slope)


def fit_exponential(points: Sequence[Tuple[float, float]]) -> ExponentialFit:
    """Least-squares exponential through positive ``(x, y)`` anchors."""
    if len(points) < 2:
        raise CalibrationError("exponential fit needs at least two points")
    for x, y in points:
        if y <= 0.0:
            raise CalibrationError(
                f"exponential fit requires positive y values, got {y!r} at x={x!r}"
            )
    log_points = [(x, math.log(y)) for x, y in points]
    line = fit_linear(log_points)
    return ExponentialFit(scale=math.exp(line.intercept), rate=line.slope)


@dataclass(frozen=True)
class LogLinearInterpolator:
    """Piecewise log-linear curve through positive anchors.

    Between anchors the curve is exponential (linear in log space); beyond
    the ends it extrapolates with the slope of the nearest segment. This is
    the "exponential spline" used by the default technology database: it is
    exact at the calibration anchors recovered from the paper (Table 3/4
    tapeout times) while remaining exponential in character everywhere.
    """

    xs: Tuple[float, ...]
    log_ys: Tuple[float, ...]

    @classmethod
    def from_points(
        cls, points: Sequence[Tuple[float, float]]
    ) -> "LogLinearInterpolator":
        if len(points) < 2:
            raise CalibrationError("interpolator needs at least two points")
        ordered = sorted((float(x), float(y)) for x, y in points)
        xs = tuple(x for x, _ in ordered)
        if len(set(xs)) != len(xs):
            raise CalibrationError("anchor x values must be distinct")
        for x, y in ordered:
            if y <= 0.0:
                raise CalibrationError(
                    f"anchors must have positive y, got {y!r} at x={x!r}"
                )
        log_ys = tuple(math.log(y) for _, y in ordered)
        return cls(xs=xs, log_ys=log_ys)

    def predict(self, x: float) -> float:
        """Evaluate the interpolated/extrapolated curve at ``x``."""
        xs, log_ys = self.xs, self.log_ys
        if x <= xs[0]:
            segment = (0, 1)
        elif x >= xs[-1]:
            segment = (len(xs) - 2, len(xs) - 1)
        else:
            hi = next(i for i, xv in enumerate(xs) if xv >= x)
            segment = (hi - 1, hi)
        i, j = segment
        slope = (log_ys[j] - log_ys[i]) / (xs[j] - xs[i])
        return math.exp(log_ys[i] + slope * (x - xs[i]))

    def __call__(self, x: float) -> float:
        return self.predict(x)


def engineering_weeks_to_calendar_weeks(
    engineer_weeks: float, engineers: int
) -> float:
    """Calendar time for a team of ``engineers`` to burn ``engineer_weeks``.

    The paper converts total engineering-weeks to calendar weeks by assuming
    a fixed team size (100 tapeout engineers in the A11 study, Sec. 6.2).
    """
    if engineers <= 0:
        raise InvalidParameterError(f"team size must be positive, got {engineers}")
    if engineer_weeks < 0.0:
        raise InvalidParameterError(
            f"engineering effort must be >= 0, got {engineer_weeks}"
        )
    return engineer_weeks / float(engineers)
