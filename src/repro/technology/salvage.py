"""Core-salvage ("binning") yield extension.

The paper notes that customers commonly bin chips by performance or
defects (Sec. 2.1) but its Eq. 6 treats a die as all-or-nothing. For
multicore designs, a defect inside one core need not kill the die: firms
ship the part with the bad core fused off (tri-core Phenoms, cut-down
GPUs, Cell's 7-of-8 SPEs). This module extends the negative-binomial
model with that architecture-aware salvage path:

* the die splits into a *salvageable* region (``n_units`` identical
  units, of which ``required_units`` must work) and an *uncore* region
  that must be fully functional;
* defects land in sub-areas independently, each following Eq. 6 with the
  area-proportional share of the die (the standard partition
  approximation);
* salvage yield = P(uncore good) * P(at least ``required_units`` of
  ``n_units`` units good), a binomial tail over the per-unit yield.

Note on the approximation: the negative-binomial family is not exactly
divisible — clustering correlates defects across sub-areas — so treating
sub-areas as independent is mildly *pessimistic* (a few percent at
hundreds of mm^2) relative to Eq. 6 when zero units may be lost. Any
practical redundancy dwarfs that slack: losing even one core of sixteen
buys tens of points of yield on large dies, a property the test suite
asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidParameterError
from .yield_model import DEFAULT_ALPHA, negative_binomial_yield


@dataclass(frozen=True)
class SalvageSpec:
    """How much of a die can be salvaged.

    Attributes
    ----------
    n_units:
        Identical salvageable units on the die (e.g. 16 cores).
    required_units:
        Units that must be functional for the chip to be sellable
        (e.g. 14 for a "14-core or better" SKU).
    unit_area_fraction:
        Fraction of the die area covered by *all* the units together;
        the remainder is uncore and must be defect-free.
    """

    n_units: int
    required_units: int
    unit_area_fraction: float

    def __post_init__(self) -> None:
        if self.n_units < 1:
            raise InvalidParameterError(
                f"salvage needs at least one unit, got {self.n_units}"
            )
        if not 1 <= self.required_units <= self.n_units:
            raise InvalidParameterError(
                f"required units must be in [1, {self.n_units}], "
                f"got {self.required_units}"
            )
        if not 0.0 < self.unit_area_fraction <= 1.0:
            raise InvalidParameterError(
                "unit area fraction must be in (0, 1], got "
                f"{self.unit_area_fraction}"
            )

    @property
    def redundancy(self) -> int:
        """Units the design can afford to lose."""
        return self.n_units - self.required_units


def binomial_tail(n: int, k: int, p: float) -> float:
    """P(X >= k) for X ~ Binomial(n, p)."""
    if not 0 <= k <= n:
        raise InvalidParameterError(f"need 0 <= k <= n, got k={k}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"probability must be in [0, 1], got {p}")
    total = 0.0
    for successes in range(k, n + 1):
        total += (
            math.comb(n, successes)
            * p**successes
            * (1.0 - p) ** (n - successes)
        )
    return min(total, 1.0)


def salvage_yield(
    area_mm2: float,
    defect_density_per_cm2: float,
    spec: SalvageSpec,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Sellable-die yield with core salvage.

    The die is partitioned into the uncore (must be perfect) and
    ``n_units`` equal unit areas; each sub-area yields independently per
    Eq. 6 on its own area. The chip sells if the uncore and at least
    ``required_units`` units are good.
    """
    if area_mm2 < 0.0:
        raise InvalidParameterError(f"die area must be >= 0, got {area_mm2}")
    uncore_area = area_mm2 * (1.0 - spec.unit_area_fraction)
    unit_area = area_mm2 * spec.unit_area_fraction / spec.n_units
    uncore_yield = negative_binomial_yield(
        uncore_area, defect_density_per_cm2, alpha=alpha
    )
    unit_yield = negative_binomial_yield(
        unit_area, defect_density_per_cm2, alpha=alpha
    )
    return uncore_yield * binomial_tail(
        spec.n_units, spec.required_units, unit_yield
    )


def salvage_gain(
    area_mm2: float,
    defect_density_per_cm2: float,
    spec: SalvageSpec,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Yield ratio of the salvage SKU over the perfect-die baseline.

    Values are >= 1; large dies on immature processes gain the most,
    which is exactly when the paper's fabrication phase hurts (more
    wafers per good chip).
    """
    baseline = negative_binomial_yield(
        area_mm2, defect_density_per_cm2, alpha=alpha
    )
    return salvage_yield(area_mm2, defect_density_per_cm2, spec, alpha) / baseline


def expected_good_units(
    area_mm2: float,
    defect_density_per_cm2: float,
    spec: SalvageSpec,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Mean number of functional units per die (binning forecast)."""
    unit_area = area_mm2 * spec.unit_area_fraction / spec.n_units
    unit_yield = negative_binomial_yield(
        unit_area, defect_density_per_cm2, alpha=alpha
    )
    return spec.n_units * unit_yield
