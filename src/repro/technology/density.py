"""Transistor-density model across the process roadmap.

The paper estimates die area from a design's transistor count and
"available/estimated transistor densities at each process node" (Sec. 5,
citing Courtland [24] and the CSET AI-chips report [54]). The advanced-node
half of the table follows those public sources; the legacy half is the
paper's own extrapolation, which we recover from its published consequences:

* Apple A11: 4.3 B transistors on an 88 mm^2 die at 10 nm
  -> density(10 nm) ~= 48.9 MTr/mm^2.
* "a 4.3 billion transistor chip at the 250 nm process node would only fit
  43 dies per 300 mm wafer with an expected 48% die yield" (Sec. 6.2)
  -> implied area ~= 1650 mm^2 -> density(250 nm) ~= 2.6 MTr/mm^2 and
  D0(250 nm) ~= 0.05 /cm^2.
* wafer-count ratios 3.16x (14 nm vs 28 nm), 1.84x (5 nm vs 7 nm) and
  6.44x (5 nm vs 14 nm) constrain the advanced-node ratios.

The resulting table is intentionally *flat* at legacy nodes: the paper's
model treats legacy re-releases as feasible (if slow), which a physically
accurate 250 nm density (~0.1 MTr/mm^2) would not allow for billion-
transistor designs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .effort import LogLinearInterpolator

#: Density anchors in MTr/mm^2, keyed by node name, ordered old -> new.
#: 10/7/5 nm follow public sources; 28 nm is set so the A11 needs ~2.8-3.2x
#: more wafers at 28 nm than at 14 nm (the paper quotes 3.16x); legacy
#: nodes flatten so the 250 nm example lands at ~43 dies/wafer, ~48% yield.
DENSITY_MTR_PER_MM2: Dict[str, float] = {
    "250nm": 2.6,
    "180nm": 3.4,
    "130nm": 3.8,
    "90nm": 4.2,
    "65nm": 5.3,
    "40nm": 7.5,
    "28nm": 11.0,
    "20nm": 22.1,
    "14nm": 28.9,
    "10nm": 48.9,
    "7nm": 91.2,
    "5nm": 171.3,
}


def density_for(node_name: str) -> float:
    """Density (MTr/mm^2) for a named roadmap node."""
    return DENSITY_MTR_PER_MM2[node_name]


def density_curve(index_by_name: Dict[str, int]) -> LogLinearInterpolator:
    """Log-linear density curve over the roadmap index.

    Lets callers evaluate an interpolated density for hypothetical nodes
    between (or beyond) the tabulated ones, e.g. a "12nm" I/O-die process.
    """
    points: Tuple[Tuple[float, float], ...] = tuple(
        (float(index_by_name[name]), value)
        for name, value in DENSITY_MTR_PER_MM2.items()
        if name in index_by_name
    )
    return LogLinearInterpolator.from_points(points)


def implied_die_area_mm2(transistors: float, node_name: str) -> float:
    """Area of a ``transistors``-sized die at a named node."""
    return transistors / (DENSITY_MTR_PER_MM2[node_name] * 1.0e6)
