"""Process-node description.

A :class:`ProcessNode` bundles every per-node parameter the paper's models
consume (Table 1 / Sec. 5): transistor density, defect density, maximum
wafer production rate, foundry latency, the three engineering-effort
coefficients, and the cost-model inputs (wafer cost, mask-set cost, fixed
per-node tapeout bring-up cost).

Instances are frozen: a node is a datum, not a mutable object. Market
conditions (capacity fractions, queues) live in :mod:`repro.market` and are
applied on top of the node's maximum rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..errors import InvalidParameterError
from ..units import WAFER_DIAMETER_MM, kwpm_to_wafers_per_week


@dataclass(frozen=True, order=False)
class ProcessNode:
    """All per-node model parameters.

    Attributes
    ----------
    name:
        Display name, e.g. ``"7nm"``.
    nanometers:
        Nominal feature size (used by the linear testing-effort fit).
    index:
        Position in the roadmap (0 = oldest node). Effort/cost curves are
        exponential in this index, mirroring the paper's "exponentially
        increasing tapeout complexity" observation.
    density_mtr_per_mm2:
        Transistor density in million transistors per mm^2.
    defect_density_per_cm2:
        D0 in Eq. 6, defects per cm^2.
    wafer_rate_kwpm:
        Maximum foundry wafer production rate, kilo-wafers per month
        (Table 2). Zero means the node currently has no production.
    fab_latency_weeks:
        L_fab: assembly-line latency of one wafer lot, in weeks.
    tapeout_effort:
        E_tapeout: engineer-weeks per unique/unverified transistor.
    testing_effort:
        E_testing: aggregate TAP-line weeks per transistor tested.
    packaging_effort:
        E_package: aggregate TAP-line weeks per (chip x mm^2 of die).
    wafer_cost_usd:
        Manufacturing cost of one processed wafer.
    mask_set_cost_usd:
        One-time photomask set cost for a tapeout at this node.
    tapeout_fixed_cost_usd:
        Fixed per-tapeout bring-up cost (EDA licenses, sign-off, shuttle
        overheads); calibrated from Table 3's C_tapeout intercept.
    wafer_diameter_mm:
        Wafer size the node runs on. The paper evaluates everything as
        300 mm equivalents but notes some legacy nodes still fabricate
        on 200 mm [66]; the ablation benches exercise that case.
    """

    name: str
    nanometers: float
    index: int
    density_mtr_per_mm2: float
    defect_density_per_cm2: float
    wafer_rate_kwpm: float
    fab_latency_weeks: float
    tapeout_effort: float
    testing_effort: float
    packaging_effort: float
    wafer_cost_usd: float
    mask_set_cost_usd: float
    tapeout_fixed_cost_usd: float
    wafer_diameter_mm: float = WAFER_DIAMETER_MM

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("process node name must be non-empty")
        positive = {
            "nanometers": self.nanometers,
            "density_mtr_per_mm2": self.density_mtr_per_mm2,
            "fab_latency_weeks": self.fab_latency_weeks,
            "tapeout_effort": self.tapeout_effort,
            "testing_effort": self.testing_effort,
            "packaging_effort": self.packaging_effort,
            "wafer_cost_usd": self.wafer_cost_usd,
            "mask_set_cost_usd": self.mask_set_cost_usd,
            "wafer_diameter_mm": self.wafer_diameter_mm,
        }
        for field_name, value in positive.items():
            if value <= 0.0:
                raise InvalidParameterError(
                    f"{field_name} must be positive, got {value!r} for node {self.name!r}"
                )
        non_negative = {
            "index": self.index,
            "defect_density_per_cm2": self.defect_density_per_cm2,
            "wafer_rate_kwpm": self.wafer_rate_kwpm,
            "tapeout_fixed_cost_usd": self.tapeout_fixed_cost_usd,
        }
        for field_name, value in non_negative.items():
            if value < 0:
                raise InvalidParameterError(
                    f"{field_name} must be >= 0, got {value!r} for node {self.name!r}"
                )

    @property
    def max_wafer_rate_per_week(self) -> float:
        """Maximum production rate in wafers per calendar week."""
        return kwpm_to_wafers_per_week(self.wafer_rate_kwpm)

    @property
    def in_production(self) -> bool:
        """Whether the node currently fabricates wafers at all."""
        return self.wafer_rate_kwpm > 0.0

    @property
    def density_transistors_per_mm2(self) -> float:
        """Transistor density in absolute transistors per mm^2."""
        return self.density_mtr_per_mm2 * 1.0e6

    def with_overrides(self, **overrides: Any) -> "ProcessNode":
        """Return a copy with some parameters replaced.

        Used heavily by the sensitivity machinery to perturb D0, rates and
        latencies without mutating the shared database.
        """
        return replace(self, **overrides)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
