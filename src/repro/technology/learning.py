"""Yield learning curves: defect density falls as a process matures.

The paper's background (Sec. 2.2, citing Cutress [27]) notes that "wafer
yield is expected to increase the longer the process node is in
production" — its evaluation freezes D0 at a current-conditions snapshot.
This module adds the time axis with the standard exponential learning
model used in yield engineering:

    D0(t) = D0_mature + (D0_initial - D0_mature) * exp(-t / tau)

with ``t`` in months since the node entered production. Combined with
the TTM model it answers ramp-timing questions: a design that orders
early pays low yield (more wafers, longer fabrication); one that waits
pays the wait. :func:`optimal_entry_month` finds the delivery-optimal
order time — typically *not* day one for large dies on young processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import math

from ..errors import InvalidParameterError
from .database import TechnologyDatabase


@dataclass(frozen=True)
class YieldLearningCurve:
    """Exponential defect-density learning for one node.

    Attributes
    ----------
    initial_d0:
        Defect density (defects/cm^2) at production start (t = 0).
    mature_d0:
        Asymptotic defect density of the fully ramped process.
    time_constant_months:
        Learning time constant tau; ~63% of the gap closes per tau.
    """

    initial_d0: float
    mature_d0: float
    time_constant_months: float

    def __post_init__(self) -> None:
        if self.mature_d0 < 0.0:
            raise InvalidParameterError(
                f"mature D0 must be >= 0, got {self.mature_d0}"
            )
        if self.initial_d0 < self.mature_d0:
            raise InvalidParameterError(
                "initial D0 must be >= mature D0 (processes improve), got "
                f"{self.initial_d0} < {self.mature_d0}"
            )
        if self.time_constant_months <= 0.0:
            raise InvalidParameterError(
                f"time constant must be positive, got {self.time_constant_months}"
            )

    def defect_density_at(self, months: float) -> float:
        """D0 after ``months`` in production."""
        if months < 0.0:
            raise InvalidParameterError(f"months must be >= 0, got {months}")
        gap = self.initial_d0 - self.mature_d0
        return self.mature_d0 + gap * math.exp(
            -months / self.time_constant_months
        )

    def months_to_reach(self, target_d0: float) -> float:
        """Months until D0 first falls to ``target_d0``."""
        if not self.mature_d0 < target_d0 <= self.initial_d0:
            raise InvalidParameterError(
                f"target D0 must be in ({self.mature_d0}, "
                f"{self.initial_d0}], got {target_d0}"
            )
        gap = self.initial_d0 - self.mature_d0
        return -self.time_constant_months * math.log(
            (target_d0 - self.mature_d0) / gap
        )


def technology_at_maturity(
    technology: TechnologyDatabase,
    process: str,
    curve: YieldLearningCurve,
    months: float,
) -> TechnologyDatabase:
    """A database copy with one node's D0 set to its t-month value."""
    return technology.override(
        {process: {"defect_density_per_cm2": curve.defect_density_at(months)}}
    )


#: Weeks per month for the wait-vs-yield trade-off.
_WEEKS_PER_MONTH = 365.25 / 7.0 / 12.0


def delivery_week(
    entry_month: float,
    ttm_weeks_at: Callable[[float], float],
) -> float:
    """Calendar week the order completes if placed at ``entry_month``."""
    if entry_month < 0.0:
        raise InvalidParameterError(
            f"entry month must be >= 0, got {entry_month}"
        )
    return entry_month * _WEEKS_PER_MONTH + ttm_weeks_at(entry_month)


def optimal_entry_month(
    ttm_weeks_at: Callable[[float], float],
    candidate_months: Sequence[float],
) -> Tuple[float, float]:
    """(best entry month, its delivery week) over a candidate grid.

    ``ttm_weeks_at`` maps an entry month to the TTM evaluated with the
    process's D0 at that maturity; the optimum trades waiting against
    the shrinking wafer overhead.
    """
    if not candidate_months:
        raise InvalidParameterError("need at least one candidate month")
    best_month = None
    best_week = None
    for month in candidate_months:
        week = delivery_week(month, ttm_weeks_at)
        if best_week is None or week < best_week:
            best_month, best_week = month, week
    assert best_month is not None and best_week is not None
    return best_month, best_week
