"""Negative-binomial die yield model (paper Eq. 6).

    Y(A, p) = (1 + A * D0(p) / alpha) ** (-alpha)

with die area ``A`` in cm^2, defect density ``D0`` in defects/cm^2 and
cluster parameter ``alpha`` (the paper fixes alpha = 3 to model average
defect clustering, citing Cunningham [26] and Stow et al. [111]).

The limiting cases are well known and tested:

* ``alpha -> inf`` recovers the Poisson model ``exp(-A * D0)``;
* ``alpha = 1`` is the Seeds model ``1 / (1 + A * D0)``;
* ``D0 = 0`` or ``A = 0`` gives perfect yield.
"""

from __future__ import annotations

import math

from ..errors import InvalidParameterError
from ..units import mm2_to_cm2

#: Cluster parameter used throughout the paper's evaluation (Sec. 5).
DEFAULT_ALPHA = 3.0


def negative_binomial_yield(
    area_mm2: float,
    defect_density_per_cm2: float,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Expected fraction of functional dies, per Eq. 6.

    Parameters
    ----------
    area_mm2:
        Die area in mm^2 (converted to cm^2 internally, matching the units
        of ``defect_density_per_cm2``).
    defect_density_per_cm2:
        D0 for the process node.
    alpha:
        Defect clustering parameter; the paper uses 3.

    Returns
    -------
    float
        Yield in (0, 1].
    """
    if area_mm2 < 0.0:
        raise InvalidParameterError(f"die area must be >= 0, got {area_mm2}")
    if defect_density_per_cm2 < 0.0:
        raise InvalidParameterError(
            f"defect density must be >= 0, got {defect_density_per_cm2}"
        )
    if alpha <= 0.0:
        raise InvalidParameterError(f"alpha must be positive, got {alpha}")
    mean_defects = mm2_to_cm2(area_mm2) * defect_density_per_cm2
    return (1.0 + mean_defects / alpha) ** (-alpha)


def poisson_yield(area_mm2: float, defect_density_per_cm2: float) -> float:
    """Poisson yield model, the alpha -> infinity limit of Eq. 6.

    Provided for ablation: the negative-binomial model with finite alpha is
    always more optimistic because clustered defects waste fewer dies.
    """
    if area_mm2 < 0.0:
        raise InvalidParameterError(f"die area must be >= 0, got {area_mm2}")
    if defect_density_per_cm2 < 0.0:
        raise InvalidParameterError(
            f"defect density must be >= 0, got {defect_density_per_cm2}"
        )
    return math.exp(-mm2_to_cm2(area_mm2) * defect_density_per_cm2)


def seeds_yield(area_mm2: float, defect_density_per_cm2: float) -> float:
    """Seeds yield model, the alpha = 1 special case of Eq. 6."""
    return negative_binomial_yield(area_mm2, defect_density_per_cm2, alpha=1.0)


def area_for_target_yield(
    target_yield: float,
    defect_density_per_cm2: float,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Invert Eq. 6: the die area (mm^2) that achieves ``target_yield``.

    Useful for calibration (the paper quotes "48% die yield" for a 4.3 B
    transistor chip at 250 nm, which pins down that node's implied area).
    Raises for degenerate inputs (D0 = 0 means any area yields 100%).
    """
    if not 0.0 < target_yield <= 1.0:
        raise InvalidParameterError(
            f"target yield must be in (0, 1], got {target_yield}"
        )
    if defect_density_per_cm2 <= 0.0:
        raise InvalidParameterError(
            "defect density must be positive to invert the yield model"
        )
    if alpha <= 0.0:
        raise InvalidParameterError(f"alpha must be positive, got {alpha}")
    mean_defects = alpha * (target_yield ** (-1.0 / alpha) - 1.0)
    return mean_defects / defect_density_per_cm2 * 100.0  # cm^2 -> mm^2
