"""Wafer geometry: gross dies per wafer and wafer demand.

The paper computes the number of wafers as "the final number of chips
multiplied by the die area divided by the wafer area", with partial edge
dies accounted for (Sec. 5). Two standard gross-die estimators are
provided:

* ``dies_per_wafer_simple`` — plain area ratio. Reproduces the paper's
  "43 dies per 300 mm wafer" example for a ~1650 mm^2 die.
* ``dies_per_wafer`` — area ratio minus the circumference correction
  ``pi * d / sqrt(2 * A)``, the widely used first-order edge-die model.

The default model is the *simple* estimator, matching the paper's quoted
example; the corrected estimator is available for ablation studies and is
always less or equally optimistic.
"""

from __future__ import annotations

import math

from ..errors import InvalidParameterError
from ..units import WAFER_AREA_MM2, WAFER_DIAMETER_MM


def dies_per_wafer_simple(
    die_area_mm2: float,
    wafer_diameter_mm: float = WAFER_DIAMETER_MM,
) -> float:
    """Gross dies per wafer as the plain wafer-to-die area ratio.

    Partial edge dies are "accounted for" by truncating the fractional die
    (the returned value is continuous; callers floor it when they need an
    integer count). Matches the paper's 250 nm example: a ~1650 mm^2 die on
    a 300 mm wafer gives ~43 gross dies.
    """
    _validate(die_area_mm2, wafer_diameter_mm)
    wafer_area = math.pi * (wafer_diameter_mm / 2.0) ** 2
    return wafer_area / die_area_mm2


def dies_per_wafer(
    die_area_mm2: float,
    wafer_diameter_mm: float = WAFER_DIAMETER_MM,
) -> float:
    """Gross dies per wafer with the first-order edge-die correction.

        DPW = pi * (d/2)^2 / A  -  pi * d / sqrt(2 * A)

    The subtracted term estimates dies lost on the circular edge. For dies
    so large that the estimate goes non-positive the function returns 1.0 if
    the die still physically fits on the wafer, else 0.0.
    """
    _validate(die_area_mm2, wafer_diameter_mm)
    wafer_area = math.pi * (wafer_diameter_mm / 2.0) ** 2
    estimate = wafer_area / die_area_mm2 - (
        math.pi * wafer_diameter_mm / math.sqrt(2.0 * die_area_mm2)
    )
    if estimate >= 1.0:
        return estimate
    return 1.0 if die_area_mm2 <= wafer_area else 0.0


def good_dies_per_wafer(
    die_area_mm2: float,
    die_yield: float,
    wafer_diameter_mm: float = WAFER_DIAMETER_MM,
    edge_corrected: bool = False,
) -> float:
    """Expected functional dies per wafer: gross dies times die yield."""
    if not 0.0 <= die_yield <= 1.0:
        raise InvalidParameterError(f"die yield must be in [0, 1], got {die_yield}")
    gross = (
        dies_per_wafer(die_area_mm2, wafer_diameter_mm)
        if edge_corrected
        else dies_per_wafer_simple(die_area_mm2, wafer_diameter_mm)
    )
    return gross * die_yield


def wafers_required(
    dies_needed: float,
    die_area_mm2: float,
    die_yield: float,
    wafer_diameter_mm: float = WAFER_DIAMETER_MM,
    edge_corrected: bool = False,
) -> float:
    """Wafers to order so that ``dies_needed`` good dies are expected.

    Returns a continuous wafer count (the models treat wafer demand as a
    rate; integer rounding is irrelevant at the paper's volumes and would
    add spurious steps to the CAS derivative). Raises if the die cannot be
    produced at all (die larger than the wafer, or zero yield).
    """
    if dies_needed < 0.0:
        raise InvalidParameterError(f"dies needed must be >= 0, got {dies_needed}")
    if dies_needed == 0.0:
        return 0.0
    good = good_dies_per_wafer(
        die_area_mm2, die_yield, wafer_diameter_mm, edge_corrected
    )
    if good <= 0.0:
        raise InvalidParameterError(
            f"a {die_area_mm2:.0f} mm^2 die with yield {die_yield:.3f} "
            "produces no good dies per wafer"
        )
    return dies_needed / good


def wafer_area_mm2(wafer_diameter_mm: float = WAFER_DIAMETER_MM) -> float:
    """Area of a circular wafer in mm^2."""
    if wafer_diameter_mm <= 0.0:
        raise InvalidParameterError(
            f"wafer diameter must be positive, got {wafer_diameter_mm}"
        )
    return math.pi * (wafer_diameter_mm / 2.0) ** 2


def _validate(die_area_mm2: float, wafer_diameter_mm: float) -> None:
    if die_area_mm2 <= 0.0:
        raise InvalidParameterError(
            f"die area must be positive, got {die_area_mm2}"
        )
    if wafer_diameter_mm <= 0.0:
        raise InvalidParameterError(
            f"wafer diameter must be positive, got {wafer_diameter_mm}"
        )


#: Convenience constant mirroring :data:`repro.units.WAFER_AREA_MM2`.
STANDARD_WAFER_AREA_MM2 = WAFER_AREA_MM2
