"""Process-technology substrate: nodes, density, yield, wafers, efforts.

This package models everything the paper attributes to the foundry and the
process roadmap (Sections 3 and 5): per-node parameters, the negative-
binomial yield model (Eq. 6), wafer geometry with edge-die accounting, and
the regression-fitted engineering-effort curves.
"""

from .database import ROADMAP, TechnologyDatabase, TAP_LATENCY_WEEKS
from .density import DENSITY_MTR_PER_MM2, implied_die_area_mm2
from .effort import (
    ExponentialFit,
    LinearFit,
    LogLinearInterpolator,
    engineering_weeks_to_calendar_weeks,
    fit_exponential,
    fit_linear,
)
from .learning import YieldLearningCurve, technology_at_maturity
from .node import ProcessNode
from .salvage import (
    SalvageSpec,
    binomial_tail,
    expected_good_units,
    salvage_gain,
    salvage_yield,
)
from .validate import Finding, assert_clean, lint_database
from .wafer import (
    dies_per_wafer,
    dies_per_wafer_simple,
    good_dies_per_wafer,
    wafer_area_mm2,
    wafers_required,
)
from .yield_model import (
    DEFAULT_ALPHA,
    area_for_target_yield,
    negative_binomial_yield,
    poisson_yield,
    seeds_yield,
)

__all__ = [
    "DEFAULT_ALPHA",
    "DENSITY_MTR_PER_MM2",
    "ExponentialFit",
    "Finding",
    "LinearFit",
    "LogLinearInterpolator",
    "ProcessNode",
    "ROADMAP",
    "SalvageSpec",
    "TAP_LATENCY_WEEKS",
    "TechnologyDatabase",
    "YieldLearningCurve",
    "area_for_target_yield",
    "assert_clean",
    "binomial_tail",
    "dies_per_wafer",
    "dies_per_wafer_simple",
    "engineering_weeks_to_calendar_weeks",
    "expected_good_units",
    "fit_exponential",
    "fit_linear",
    "good_dies_per_wafer",
    "implied_die_area_mm2",
    "lint_database",
    "negative_binomial_yield",
    "poisson_yield",
    "salvage_gain",
    "salvage_yield",
    "seeds_yield",
    "technology_at_maturity",
    "wafer_area_mm2",
    "wafers_required",
]
