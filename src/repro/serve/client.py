"""A small blocking HTTP client for the evaluation service.

Built on :mod:`http.client` so tests, benchmarks, and the smoke script
can exercise the real wire protocol (status codes, headers, raw body
bytes — the byte-identity guarantee is checked on exactly what arrived)
without any dependency beyond the stdlib.

Retry behavior
--------------
By default the client performs exactly one exchange and never raises on
non-2xx statuses — error handling stays the caller's assertion, which is
what the test suites rely on. Passing ``max_retries > 0`` opts into
backpressure handling: a 429 is retried up to ``max_retries`` times,
sleeping the server's ``Retry-After`` (clamped to ``max_retry_after``)
plus bounded random jitter so synchronized clients do not re-stampede,
and a 503 whose body carries the ``draining`` error code raises the
typed :class:`ServerDrainingError` instead of burning retries on a
server that will not come back — callers redirect to another replica.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional


@dataclass(frozen=True)
class ServeResponse:
    """One HTTP exchange: status, headers (lower-cased keys), raw body."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON."""
        return json.loads(self.body)

    @property
    def batch_size(self) -> int:
        """The ``X-Batch-Size`` header, or 0 when absent."""
        return int(self.headers.get("x-batch-size", "0") or "0")

    @property
    def request_id(self) -> str:
        """The ``X-Request-Id`` header, or '' when absent."""
        return self.headers.get("x-request-id", "")

    @property
    def trace_id(self) -> str:
        """The ``X-Trace-Id`` header ('' when the server isn't tracing
        or logging): the key to fetch this request's stitched spans
        from ``GET /debug/trace``."""
        return self.headers.get("x-trace-id", "")

    @property
    def error_code(self) -> str:
        """The structured error code of a non-2xx body ('' when none)."""
        try:
            payload = self.json()
        except ValueError:
            return ""
        if isinstance(payload, dict) and isinstance(
            payload.get("error"), dict
        ):
            return str(payload["error"].get("code", ""))
        return ""


class ServeClientError(Exception):
    """Base class for typed client-side failures; carries the response."""

    def __init__(self, message: str, response: ServeResponse) -> None:
        super().__init__(message)
        self.response = response


class ServerDrainingError(ServeClientError):
    """The server answered 503/draining: it is shutting down.

    Raised only when retries are enabled (``max_retries > 0``) — a
    draining server never recovers, so retrying against it is wasted
    work; callers should fail over instead.
    """


class ServeClient:
    """Blocking client for one server; one connection per call.

    A fresh connection per request keeps concurrent use trivially safe
    (``http.client`` connections are not thread-safe) and exercises the
    server's accept path the way independent tenants would.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        max_retries: int = 0,
        max_retry_after: float = 5.0,
        _sleep: Callable[[float], None] = time.sleep,
        _rng: Optional[random.Random] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.max_retry_after = max_retry_after
        self._sleep = _sleep
        self._rng = _rng or random.Random()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> ServeResponse:
        """One logical exchange (plus opted-in 429 retries).

        With the default ``max_retries=0`` this is exactly one wire
        exchange and never raises on non-2xx statuses. With retries
        enabled, 429 responses are retried after the jittered
        ``Retry-After`` and a draining 503 raises
        :class:`ServerDrainingError`.
        """
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            response = self._exchange(method, path, body, headers)
            if self.max_retries == 0:
                return response
            if (
                response.status == 503
                and response.error_code == "draining"
            ):
                raise ServerDrainingError(
                    "server is draining; fail over to another replica",
                    response,
                )
            if response.status != 429 or attempt == attempts - 1:
                return response
            self._sleep(self._backoff_seconds(response))
        return response  # pragma: no cover - loop always returns

    def _backoff_seconds(self, response: ServeResponse) -> float:
        """The jittered, clamped Retry-After of one 429 response."""
        try:
            retry_after = float(response.headers.get("retry-after", "1"))
        except ValueError:
            retry_after = 1.0
        retry_after = min(max(retry_after, 0.0), self.max_retry_after)
        # Full jitter (0.5x-1.5x) decorrelates synchronized clients
        # without ever waiting longer than 1.5x the clamped hint.
        return retry_after * (0.5 + self._rng.random())

    def _exchange(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Mapping[str, str]],
    ) -> ServeResponse:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                method, path, body=body, headers=dict(headers or {})
            )
            raw = connection.getresponse()
            payload = raw.read()
            return ServeResponse(
                status=raw.status,
                headers={
                    name.lower(): value for name, value in raw.getheaders()
                },
                body=payload,
            )
        finally:
            connection.close()

    def get(self, path: str) -> ServeResponse:
        return self.request("GET", path)

    def post(
        self,
        path: str,
        payload: Any,
        deadline_ms: Optional[float] = None,
    ) -> ServeResponse:
        """POST ``payload`` as JSON; ``deadline_ms`` sets ``X-Deadline-Ms``."""
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        return self.request(
            "POST", path, body=json.dumps(payload).encode("utf-8"),
            headers=headers,
        )


__all__ = [
    "ServeClient",
    "ServeClientError",
    "ServeResponse",
    "ServerDrainingError",
]
