"""A small blocking HTTP client for the evaluation service.

Built on :mod:`http.client` so tests, benchmarks, and the smoke script
can exercise the real wire protocol (status codes, headers, raw body
bytes — the byte-identity guarantee is checked on exactly what arrived)
without any dependency beyond the stdlib.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class ServeResponse:
    """One HTTP exchange: status, headers (lower-cased keys), raw body."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON."""
        return json.loads(self.body)

    @property
    def batch_size(self) -> int:
        """The ``X-Batch-Size`` header, or 0 when absent."""
        return int(self.headers.get("x-batch-size", "0") or "0")


class ServeClient:
    """Blocking client for one server; one connection per call.

    A fresh connection per request keeps concurrent use trivially safe
    (``http.client`` connections are not thread-safe) and exercises the
    server's accept path the way independent tenants would.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> ServeResponse:
        """One HTTP exchange; returns the full response, never raises
        on non-2xx statuses (error handling is the caller's assertion)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                method, path, body=body, headers=dict(headers or {})
            )
            raw = connection.getresponse()
            payload = raw.read()
            return ServeResponse(
                status=raw.status,
                headers={
                    name.lower(): value for name, value in raw.getheaders()
                },
                body=payload,
            )
        finally:
            connection.close()

    def get(self, path: str) -> ServeResponse:
        return self.request("GET", path)

    def post(
        self,
        path: str,
        payload: Any,
        deadline_ms: Optional[float] = None,
    ) -> ServeResponse:
        """POST ``payload`` as JSON; ``deadline_ms`` sets ``X-Deadline-Ms``."""
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        return self.request(
            "POST", path, body=json.dumps(payload).encode("utf-8"),
            headers=headers,
        )


__all__ = ["ServeClient", "ServeResponse"]
