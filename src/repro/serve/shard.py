"""Horizontally sharded serve: a prefork worker pool with sticky routes.

One :class:`~repro.serve.server.EvalServer` runs on one asyncio loop and
therefore one core. This module scales the service across processes
while keeping every guarantee PR 7's coalescing service makes:

* **Prefork worker pool** — a parent supervisor spawns N worker
  processes, each a full ``EvalServer`` (own loop, own batcher, own
  metrics registry) bound to an ephemeral loopback port.
* **Sticky routing** — the parent accepts the public socket and
  forwards each request to the worker chosen by rendezvous hashing of
  :func:`routing_key`, a cheap shadow of the batcher's group key
  computed straight from the JSON body. Requests the batcher *could*
  coalesce always share a routing key, so they land on the same worker
  and fuse there — which is exactly what preserves the byte-identity
  contract under sharding (a group split across workers would still be
  correct, but would coalesce less).
* **Zero-copy warm caches** — the parent computes the named designs'
  invariants and compiled portfolio once, publishes the tensors through
  :mod:`repro.engine.shm`, and every worker seeds its identity-keyed
  caches with attached read-only views instead of re-deriving them.
  The supervisor holds one shm lease per worker *process* and releases
  it when the process is reaped, so even a ``kill -9`` mid-attach
  cannot strand a segment.
* **Aggregated observability** — ``GET /metrics`` fans out to every
  worker and merges the per-worker Prometheus dumps (each tagged
  ``worker="N"``, the router's own registry tagged
  ``worker="router"``); ``GET /healthz`` reports per-worker liveness,
  pid, restart count, and warm-cache state; ``GET /debug/obs`` is the
  fleet-wide live ops snapshot and ``GET /debug/trace`` merges every
  worker's recorded spans with the router's own, so one request's
  trace — router admission, worker handling, batch membership, engine
  kernels — stitches into a single tree
  (:func:`repro.obs.distributed.stitch_trace`).
* **Trace propagation** — with tracing on, the router mints a
  ``traceparent`` context per request at admission and forwards it
  (plus ``X-Request-Id``) on the worker hop; at drain it collects
  every worker's spans over ``/debug/trace`` and writes one Chrome
  trace with a distinct process lane per worker.
* **Lifecycle** — dead workers are respawned with exponential backoff;
  SIGTERM/SIGINT triggers a rolling drain: new requests are refused
  with 503 while every accepted request (in any worker) completes, then
  workers are terminated one at a time and their shm leases released.

``--workers 1`` never enters this module — the CLI runs today's
single-process server unchanged.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..engine.requests import knob_signature
from ..engine.shm import SHARED_STORE, Lease
from ..obs import instrument
from ..obs.distributed import (
    TraceContext,
    mint_request_id,
    mint_trace_context,
    parse_traceparent,
)
from ..obs.log import RequestLogger
from ..obs.metrics import get_registry, merge_prometheus_texts
from ..obs.slo import SLOTracker
from ..obs.trace import (
    SpanRecord,
    TRACE_SCHEMA,
    Tracer,
    chrome_trace_from_spans,
    current_tracer,
    install_tracer,
    uninstall_tracer,
)
from .protocol import (
    BATCHED_ENDPOINTS,
    DEFAULT_N_CHIPS,
    BadRequestError,
    ServeState,
    WarmBundle,
    build_warm_bundle,
    canonical_json,
    error_body,
    normalize_stress_selector,
)
from .server import _TRACE_SPAN_LIMIT, ServerConfig, _outcome, _parse_head

#: How often the supervisor checks worker liveness (seconds).
_MONITOR_INTERVAL_S = 0.2

#: Per-worker fan-out timeout for /metrics and /healthz aggregation.
_FANOUT_TIMEOUT_S = 5.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


# -- sticky routing ----------------------------------------------------------


def _route_number(value: Any, default: float) -> Any:
    """Mirror the protocol's ``_number`` defaulting without validation.

    Valid numeric fields coerce to float exactly like the parser does
    (so ``1e7`` and ``10000000`` route identically); invalid values pass
    through untouched — the worker will reject them with a 400, so their
    route only needs to be deterministic, not meaningful.
    """
    if value is None:
        return default
    if isinstance(value, bool):
        return ["bool", value]
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _signature_jsonable(signature: Tuple[object, ...]) -> List[Any]:
    """Encode a :func:`knob_signature` canonically (frozenset -> sorted)."""
    kind = signature[0]
    encoded: Any = (
        ["nodes", sorted(kind)] if isinstance(kind, frozenset) else kind
    )
    return [encoded, *signature[1:]]


def routing_key(endpoint: str, body: bytes) -> bytes:
    """The sticky-routing key of one request (a batcher-group shadow).

    Consistency contract, pinned by ``tests/serve/test_shard.py``: two
    requests the worker-side batcher would put in one group always
    produce equal routing keys, so the group is never split across
    workers. The key is deliberately *coarser* than the batcher key for
    ``/evaluate`` (it ignores nothing) and exactly as fine for ``/mc``,
    ``/scenarios``, and ``/splits``. Computed from the raw JSON alone — no design
    resolution, no scenario validation — so the router stays cheap, and
    malformed bodies just route *somewhere* deterministic and collect
    their 400 from the worker.
    """
    try:
        parsed = json.loads(body)
    except ValueError:
        parsed = None
    if not isinstance(parsed, Mapping):
        return b"opaque:" + endpoint.encode() + b":" + body[:128]
    scenario = str(parsed.get("scenario", "nominal"))
    if endpoint == "evaluate":
        signature = knob_signature(
            parsed.get("capacity"),
            parsed.get("queue_weeks"),
            parsed.get("d0_scale"),
            parsed.get("wafer_rate_scale"),
        )
        return canonical_json(
            ["evaluate", scenario, _signature_jsonable(signature)]
        )
    if endpoint == "mc":
        return canonical_json(
            [
                "mc",
                scenario,
                parsed.get("samples", 1024),
                parsed.get("seed", 0),
                bool(parsed.get("with_cost", True)),
                _route_number(parsed.get("n_chips"), DEFAULT_N_CHIPS),
                _route_number(parsed.get("variation"), 0.1),
                _route_number(parsed.get("queue_weeks"), 2.0),
                _route_number(parsed.get("capacity"), 0.9),
            ]
        )
    if endpoint == "scenarios":
        try:
            selector: Any = list(
                normalize_stress_selector(parsed.get("scenarios"))
            )
        except BadRequestError:
            # Malformed selectors still route *somewhere* deterministic
            # and collect their 400 from the worker.
            selector = ["opaque", repr(parsed.get("scenarios"))]
        return canonical_json(
            [
                "scenarios",
                scenario,
                selector,
                parsed.get("samples", 1024),
                parsed.get("seed", 0),
                bool(parsed.get("with_cost", True)),
                bool(parsed.get("correlated", False)),
                _route_number(parsed.get("n_chips"), DEFAULT_N_CHIPS),
                _route_number(parsed.get("variation"), 0.1),
                _route_number(parsed.get("queue_weeks"), 2.0),
                _route_number(parsed.get("capacity"), 0.9),
            ]
        )
    if endpoint == "splits":
        spec = parsed.get("design", "a11")
        if isinstance(spec, str):
            label: Any = spec
        elif isinstance(spec, Mapping):
            label = str(spec.get("library"))
            if "cores" in spec:
                label = f"{label}:{spec['cores']}"
        else:
            label = ["opaque", str(type(spec).__name__)]
        pairs = parsed.get("pairs")
        if isinstance(pairs, (list, tuple)):
            pairs = [
                [str(item[0]), str(item[1])]
                if isinstance(item, (list, tuple)) and len(item) == 2
                else ["opaque"]
                for item in pairs
            ]
        else:
            pairs = ["opaque"]
        return canonical_json(
            [
                "splits",
                scenario,
                label,
                pairs,
                _route_number(parsed.get("n_chips"), DEFAULT_N_CHIPS),
                bool(parsed.get("refine", False)),
                bool(parsed.get("with_cas", True)),
            ]
        )
    return canonical_json(["other", endpoint, scenario])


def rendezvous_worker(key: bytes, slots: Sequence[int]) -> int:
    """Pick one worker slot by highest-random-weight (rendezvous) hash.

    Deterministic across processes (BLAKE2b, no ``PYTHONHASHSEED``
    dependence), so benches and tests can predict routes; minimal
    disruption when a slot dies — only that slot's keys move.
    """
    if not slots:
        raise ValueError("rendezvous over an empty worker set")
    best_slot = slots[0]
    best_score = b""
    for slot in slots:
        score = hashlib.blake2b(
            b"%d|" % slot + key, digest_size=8
        ).digest()
        if score > best_score:
            best_score = score
            best_slot = slot
    return best_slot


# -- worker process ----------------------------------------------------------


def _worker_main(
    worker_id: int,
    config: ServerConfig,
    warm: Optional[WarmBundle],
    backend: str,
    conn,
) -> None:
    """Entry point of one shard worker process (spawn-safe).

    Boots a full :class:`EvalServer` on an ephemeral loopback port,
    seeds its warm caches from the supervisor's shm publication, reports
    ``(host, port, pid)`` back through ``conn``, and serves until
    SIGTERM/SIGINT *or* until the pipe hits EOF — the parent holds its
    end open for the worker's lifetime, so a killed parent can never
    leave orphaned workers behind.
    """
    from .server import EvalServer

    if backend:
        from ..engine.compiled import parse_backend_spec, set_backend

        set_backend(*parse_backend_spec(backend))

    stop_event = threading.Event()

    def _watch_parent() -> None:
        try:
            conn.recv()
        except (EOFError, OSError):
            pass
        stop_event.set()

    threading.Thread(
        target=_watch_parent, name="shard-parent-watch", daemon=True
    ).start()

    state = ServeState(warm=warm)
    server = EvalServer(config=config, state=state)

    def _ready(host: str, port: int) -> None:
        try:
            conn.send(("ready", host, port, os.getpid()))
        except (BrokenPipeError, OSError):  # parent died during boot
            stop_event.set()

    server.run_forever(stop_event=stop_event, ready=_ready)


@dataclass
class _Worker:
    """Supervisor-side record of one worker slot."""

    slot: int
    process: Any = None
    conn: Any = None
    host: str = "127.0.0.1"
    port: int = 0
    pid: int = 0
    restarts: int = 0
    ready: bool = False
    leases: Tuple[Lease, ...] = ()
    idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = field(
        default_factory=list
    )

    def alive(self) -> bool:
        return (
            self.ready
            and self.process is not None
            and self.process.is_alive()
        )


class WorkerUnavailableError(Exception):
    """The chosen worker could not serve the forwarded request."""


# -- supervisor --------------------------------------------------------------


@dataclass(frozen=True)
class ShardConfig:
    """Tunables for one :class:`ShardSupervisor`.

    ``server`` is the per-worker template: its batching knobs are used
    verbatim, while host/port/worker_id are overridden per worker
    (workers always bind ephemeral loopback ports; only the supervisor
    listens on ``host:port``). Worker-side ``trace_out``/``profile_out``
    are also overridden: the supervisor collects every worker's spans at
    drain and writes the single merged Chrome trace to ``trace_out``
    here, and per-worker profiles get a ``.workerN`` suffix so they
    never clobber each other. ``workers=0`` resolves to
    ``os.cpu_count()``.
    """

    workers: int = 0
    host: str = "127.0.0.1"
    port: int = 0
    server: ServerConfig = field(default_factory=ServerConfig)
    backend: str = ""
    warm: bool = True
    drain_grace_s: float = 10.0
    worker_start_timeout_s: float = 120.0
    respawn_backoff_s: float = 0.5
    respawn_backoff_cap_s: float = 15.0
    trace_out: str = ""

    def resolved_workers(self) -> int:
        count = self.workers or (os.cpu_count() or 1)
        if count < 1:
            raise ValueError(f"need at least 1 worker, got {count}")
        return count


class ShardSupervisor:
    """Parent process: sticky router + worker pool + shm publication."""

    def __init__(self, config: Optional[ShardConfig] = None) -> None:
        self.config = config or ShardConfig()
        self.host = self.config.host
        self.port = self.config.port
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[_Worker] = []
        self._warm: Optional[WarmBundle] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[asyncio.Task, None] = {}
        self._monitor_task: Optional[asyncio.Task] = None
        self._respawn_tasks: Dict[int, asyncio.Task] = {}
        self._draining = False
        self._in_flight = 0
        # Router-side observability: its own SLO window and request log
        # (role="router" — the end-to-end view including the forward
        # hop), in-flight request records for /debug/obs, and a tracer
        # installed only when the template asks for tracing and none is
        # already active in this process.
        self.slo = SLOTracker(window_s=self.config.server.slo_window_s)
        self.logger = RequestLogger(
            path=self.config.server.log_json or None, role="router"
        )
        self._in_flight_requests: Dict[str, Dict[str, Any]] = {}
        self._installed_tracer: Optional[Tracer] = None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def workers(self) -> Tuple[_Worker, ...]:
        return tuple(self._workers)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Publish warm caches, boot every worker, bind the public port."""
        if self.config.server.trace and current_tracer() is None:
            self._installed_tracer = Tracer(limit=_TRACE_SPAN_LIMIT)
            install_tracer(self._installed_tracer)
        count = self.config.resolved_workers()
        if self.config.warm:
            self._warm = build_warm_bundle(ServeState())
        self._workers = [_Worker(slot=slot) for slot in range(count)]
        for worker in self._workers:
            self._spawn_process(worker)
        await asyncio.gather(
            *(self._wait_ready(worker) for worker in self._workers)
        )
        instrument.set_workers_alive(
            sum(1 for w in self._workers if w.alive())
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        self._monitor_task = asyncio.create_task(self._monitor())

    def _spawn_process(self, worker: _Worker) -> None:
        """Start one worker process (leases taken *before* the spawn)."""
        leases = []
        if self._warm is not None:
            leases = [
                SHARED_STORE.lease(handle) for handle in self._warm.handles
            ]
        parent_conn, child_conn = self._ctx.Pipe()
        template = self.config.server
        config = replace(
            template,
            host="127.0.0.1",
            port=0,
            worker_id=worker.slot,
            # The supervisor collects worker spans over /debug/trace at
            # drain and writes the one merged Chrome trace itself;
            # profiles split per worker so they never clobber.
            trace_out="",
            profile_out=(
                f"{template.profile_out}.worker{worker.slot}"
                if template.profile_out
                else ""
            ),
        )
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker.slot,
                config,
                self._warm,
                self.config.backend,
                child_conn,
            ),
            name=f"shard-worker-{worker.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker holds its own copy
        worker.process = process
        worker.conn = parent_conn
        worker.ready = False
        worker.leases = tuple(leases)

    async def _wait_ready(self, worker: _Worker) -> None:
        """Block (without blocking the loop) until a worker reports in."""
        loop = asyncio.get_running_loop()
        timeout = self.config.worker_start_timeout_s
        conn = worker.conn

        def _recv():
            if conn.poll(timeout):
                return conn.recv()
            raise TimeoutError(
                f"worker {worker.slot} did not report ready within "
                f"{timeout:g}s"
            )

        try:
            message = await loop.run_in_executor(None, _recv)
        except (EOFError, OSError) as error:
            raise RuntimeError(
                f"worker {worker.slot} died during startup"
            ) from error
        if not (isinstance(message, tuple) and message[0] == "ready"):
            raise RuntimeError(
                f"worker {worker.slot} sent unexpected handshake "
                f"{message!r}"
            )
        _tag, worker.host, worker.port, worker.pid = message
        worker.ready = True

    async def stop(self) -> None:
        """Rolling drain: finish accepted work, then stop workers in turn.

        New requests are refused (503) the moment draining starts.
        Every request already forwarded completes — the router waits for
        its own in-flight count, and each worker's SIGTERM drain waits
        for its admitted batches — then workers are terminated one at a
        time, each reaped and its shm leases released before the next,
        and finally the supervisor drops its own warm-tensor references
        so the segments unlink.
        """
        # The listener stays open while draining: clients that connect
        # mid-drain get an explicit 503/draining, not a refused socket.
        self._draining = True
        deadline = time.monotonic() + self.config.drain_grace_s
        while self._in_flight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._monitor_task = None
        for task in list(self._respawn_tasks.values()):
            task.cancel()
        self._respawn_tasks.clear()
        # Workers are still up: collect their spans *now* so the merged
        # Chrome trace (one process lane per worker) can be written
        # before the pool is torn down. Export must never block the
        # drain, so failures are swallowed.
        # Export keys off the *live* tracer, not ownership: when an
        # outer harness installed the process-global tracer, the router
        # spans landed there and the merged trace is still writable.
        if self.config.trace_out and current_tracer() is not None:
            try:
                merged = await self._aggregate_trace()
                chrome = chrome_trace_from_spans(
                    merged["spans"],
                    process_names={
                        int(pid): name
                        for pid, name in merged["process_names"].items()
                    },
                )
                with open(
                    self.config.trace_out, "w", encoding="utf-8"
                ) as handle:
                    json.dump(chrome, handle, indent=2, default=str)
                    handle.write("\n")
            except Exception:
                pass
        for worker in self._workers:
            await self._stop_worker(worker)
        instrument.set_workers_alive(0)
        if self._server is not None:
            self._server.close()
        if self._connections:
            done, pending = await asyncio.wait(
                set(self._connections), timeout=2.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        if self._warm is not None:
            for handle in self._warm.handles:
                SHARED_STORE.release(handle)
            self._warm = None
        if self._server is not None:
            await self._server.wait_closed()
        if self._installed_tracer is not None:
            # Only uninstall what we installed — an outer harness (obs
            # session, test fixture) may own the process-global tracer.
            if current_tracer() is self._installed_tracer:
                uninstall_tracer()
            self._installed_tracer = None
        self.logger.close()

    async def _stop_worker(self, worker: _Worker) -> None:
        """SIGTERM one worker, wait out its drain, escalate, reap."""
        await self._close_idle(worker)
        process = worker.process
        if process is None:
            self._release_worker(worker)
            return
        loop = asyncio.get_running_loop()
        if process.is_alive():
            try:
                os.kill(process.pid, signal.SIGTERM)
            except (ProcessLookupError, OSError):
                pass
            await loop.run_in_executor(
                None, process.join, self.config.drain_grace_s
            )
        if process.is_alive():  # drain overran its grace: escalate
            process.kill()
            await loop.run_in_executor(None, process.join, 5.0)
        worker.ready = False
        self._release_worker(worker)

    def _release_worker(self, worker: _Worker) -> None:
        """Reap-side cleanup: shm leases and the handshake pipe."""
        for lease in worker.leases:
            lease.release()
        worker.leases = ()
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None

    async def _close_idle(self, worker: _Worker) -> None:
        idle, worker.idle = worker.idle, []
        for _reader, writer in idle:
            writer.close()

    # -- worker supervision --------------------------------------------------

    async def _monitor(self) -> None:
        """Detect dead workers and schedule their respawn with backoff."""
        while not self._draining:
            await asyncio.sleep(_MONITOR_INTERVAL_S)
            for worker in self._workers:
                if (
                    worker.ready
                    and worker.process is not None
                    and not worker.process.is_alive()
                    and worker.slot not in self._respawn_tasks
                ):
                    worker.ready = False
                    self._respawn_tasks[worker.slot] = asyncio.create_task(
                        self._respawn(worker)
                    )
            instrument.set_workers_alive(
                sum(1 for w in self._workers if w.alive())
            )

    async def _respawn(self, worker: _Worker) -> None:
        """Reap one dead worker and bring up its replacement."""
        loop = asyncio.get_running_loop()
        try:
            await self._close_idle(worker)
            if worker.process is not None:
                await loop.run_in_executor(None, worker.process.join, 5.0)
            # The reap releases the dead process's leases uncondition-
            # ally — this is the path that makes kill -9 leak-free.
            self._release_worker(worker)
            instrument.record_respawn(worker.slot)
            backoff = min(
                self.config.respawn_backoff_s * (2 ** worker.restarts),
                self.config.respawn_backoff_cap_s,
            )
            worker.restarts += 1
            await asyncio.sleep(backoff)
            if self._draining:
                return
            self._spawn_process(worker)
            await self._wait_ready(worker)
        except asyncio.CancelledError:
            raise
        except Exception:
            # Startup failed (e.g. mid-shutdown); the monitor will not
            # retry until the slot is marked ready again, so schedule
            # another attempt unless we are draining.
            if not self._draining:
                await asyncio.sleep(self.config.respawn_backoff_s)
                self._respawn_tasks.pop(worker.slot, None)
                worker.ready = True  # let the monitor re-detect the death
                return
        finally:
            self._respawn_tasks.pop(worker.slot, None)

    # -- forwarding ----------------------------------------------------------

    async def _acquire(
        self, worker: _Worker
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """A connection to one worker: pooled when possible, else fresh.

        Returns ``(reader, writer, pooled)`` — ``pooled`` tells the
        forwarder a failure may just be a stale keep-alive connection
        worth one retry on a fresh socket.
        """
        while worker.idle:
            reader, writer = worker.idle.pop()
            if not writer.is_closing():
                return reader, writer, True
            writer.close()
        reader, writer = await asyncio.open_connection(
            worker.host, worker.port
        )
        return reader, writer, False

    async def _forward(
        self,
        worker: _Worker,
        method: str,
        path: str,
        headers: Mapping[str, str],
        body: bytes,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Relay one request to a worker over its keep-alive pool."""
        for attempt in (0, 1):
            try:
                reader, writer, pooled = await self._acquire(worker)
            except (ConnectionError, OSError) as error:
                raise WorkerUnavailableError(
                    f"worker {worker.slot} is unreachable: {error}"
                ) from error
            try:
                lines = [
                    f"{method} {path} HTTP/1.1",
                    f"Host: {worker.host}:{worker.port}",
                    f"Content-Length: {len(body)}",
                ]
                for name in (
                    "content-type",
                    "x-deadline-ms",
                    "traceparent",
                    "x-request-id",
                ):
                    value = headers.get(name)
                    if value is not None:
                        lines.append(f"{name}: {value}")
                writer.write(
                    ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                    + body
                )
                await writer.drain()
                status, response_headers, payload = await _read_response(
                    reader
                )
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                OSError,
            ) as error:
                writer.close()
                if pooled and attempt == 0:
                    continue  # stale keep-alive: retry on a fresh socket
                raise WorkerUnavailableError(
                    f"worker {worker.slot} dropped the connection: {error}"
                ) from error
            if response_headers.get("connection", "").lower() == "close":
                writer.close()
            else:
                worker.idle.append((reader, writer))
            return status, response_headers, payload
        raise WorkerUnavailableError(  # pragma: no cover - loop returns
            f"worker {worker.slot} unavailable"
        )

    def _alive_slots(self) -> List[int]:
        return [w.slot for w in self._workers if w.alive()]

    # -- HTTP front end ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = None
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive or self._draining:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            await _write_response(
                writer,
                400,
                error_body("invalid_request", "headers too large"),
                close=True,
            )
            return False
        try:
            method, path, headers = _parse_head(head)
        except ValueError as error:
            await _write_response(
                writer,
                400,
                error_body("invalid_request", str(error)),
                close=True,
            )
            return False
        path = path.split("?", 1)[0]

        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await _write_response(
                writer,
                400,
                error_body("invalid_request", "bad Content-Length header"),
                close=True,
            )
            return False
        max_body = self.config.server.max_body_bytes
        if length > max_body:
            await _write_response(
                writer,
                413,
                error_body(
                    "payload_too_large",
                    f"body of {length} bytes exceeds the "
                    f"{max_body}-byte limit",
                ),
                close=True,
            )
            return False
        if length:
            body = await reader.readexactly(length)

        status, payload, extra = await self._route(
            method, path, headers, body
        )
        keep = (
            headers.get("connection", "").lower() != "close"
            and not self._draining
            and status != 503
        )
        await _write_response(
            writer,
            status,
            payload,
            content_type=extra.pop("Content-Type", "application/json"),
            headers=extra,
            close=not keep,
        )
        return keep

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            return 200, canonical_json(await self._aggregate_healthz()), {}
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            text = await self._aggregate_metrics()
            return (
                200,
                text.encode("utf-8"),
                {"Content-Type": "text/plain; version=0.0.4"},
            )
        if path == "/debug/obs":
            if method != "GET":
                return _method_not_allowed("GET")
            return 200, canonical_json(await self._aggregate_obs()), {}
        if path == "/debug/trace":
            if method != "GET":
                return _method_not_allowed("GET")
            return 200, canonical_json(await self._aggregate_trace()), {}
        endpoint = path.lstrip("/")
        if endpoint not in BATCHED_ENDPOINTS:
            return 404, error_body("not_found", f"no route for {path!r}"), {}
        if method != "POST":
            return _method_not_allowed("POST")
        if self._draining:
            instrument.record_rejection("draining")
            return (
                503,
                error_body("draining", "server is draining"),
                {},
            )
        slots = self._alive_slots()
        if not slots:
            return (
                503,
                error_body(
                    "worker_unavailable", "no live workers to serve this"
                ),
                {},
            )
        slot = rendezvous_worker(routing_key(endpoint, body), slots)
        worker = self._workers[slot]
        instrument.record_route(slot)
        # Admission: every routed request gets a request id here (the
        # worker echoes an inbound one rather than minting its own) and,
        # when tracing or logging is on, a trace context whose span id
        # becomes the worker-side span's parent — that is the stitch
        # point of the distributed trace. Inbound client contexts are
        # honored so an upstream caller's trace continues through us.
        started = time.perf_counter()
        started_ns = time.time_ns()
        tracer = current_tracer()
        request_id = headers.get("x-request-id") or mint_request_id()
        ctx = parse_traceparent(headers.get("traceparent"))
        if ctx is None and (tracer is not None or self.logger.active):
            ctx = mint_trace_context(sampled=tracer is not None)
        forward_headers: Dict[str, str] = dict(headers)
        forward_headers["x-request-id"] = request_id
        if ctx is not None:
            forward_headers["traceparent"] = ctx.to_traceparent()
        self._in_flight += 1
        self._in_flight_requests[request_id] = {
            "request_id": request_id,
            "trace_id": ctx.trace_id if ctx is not None else "",
            "endpoint": endpoint,
            "worker": slot,
            "started_unix_ns": started_ns,
        }
        response_headers: Dict[str, str] = {}
        try:
            try:
                status, response_headers, payload = await self._forward(
                    worker, method, path, forward_headers, body
                )
            except WorkerUnavailableError as error:
                status = 503
                payload = error_body("worker_unavailable", str(error))
        finally:
            self._in_flight -= 1
            self._in_flight_requests.pop(request_id, None)
        extra: Dict[str, str] = {}
        for name in (
            "x-batch-size",
            "retry-after",
            "x-request-id",
            "x-trace-id",
        ):
            value = response_headers.get(name)
            if value is not None:
                extra["-".join(p.capitalize() for p in name.split("-"))] = (
                    value
                )
        extra.setdefault("X-Request-Id", request_id)
        if ctx is not None:
            extra.setdefault("X-Trace-Id", ctx.trace_id)
        content_type = response_headers.get("content-type")
        if content_type:
            extra["Content-Type"] = content_type
        batch_size = int(response_headers.get("x-batch-size", "0") or "0")
        self._finish_route(
            endpoint, slot, status, batch_size, started, started_ns,
            request_id, ctx,
        )
        return status, payload, extra

    def _finish_route(
        self,
        endpoint: str,
        slot: int,
        status: int,
        batch_size: int,
        started: float,
        started_ns: int,
        request_id: str,
        ctx: Optional[TraceContext],
    ) -> None:
        """Router-side bookkeeping for one routed request.

        The router deliberately does *not* call
        :func:`instrument.record_request` — the worker already did, and
        ``/metrics`` aggregates both sides, so counting here would
        double every request. It keeps its own SLO window (the
        end-to-end client view, including the forward hop) and its own
        log/span records.
        """
        elapsed = time.perf_counter() - started
        self.slo.observe(endpoint, status, elapsed)
        # Ring always collects (the /debug/obs "recent" view); the
        # logger only touches disk when a log path was configured.
        self.logger.log(
            {
                "ts_unix_ns": time.time_ns(),
                "request_id": request_id,
                "trace_id": ctx.trace_id if ctx is not None else "",
                "endpoint": endpoint,
                "status": status,
                "latency_ms": round(elapsed * 1000.0, 3),
                "batch_size": batch_size,
                "backend": "router",
                "outcome": _outcome(status),
                "worker": slot,
            }
        )
        tracer = current_tracer()
        if tracer is None or ctx is None or not ctx.sampled:
            return
        # Same interleaved-await reasoning as the worker's serve.request
        # span: record parentless and merge via adopt(). ``ctx_span`` is
        # the hex the worker recorded as ``parent_ctx`` — the stitch.
        tracer.adopt(
            [
                SpanRecord(
                    name="serve.router",
                    span_id=tracer._next_id(),
                    parent_id=None,
                    start_unix_ns=started_ns,
                    duration_ns=int(elapsed * 1e9),
                    cpu_ns=0,
                    thread_id=threading.get_ident(),
                    process_id=os.getpid(),
                    attributes={
                        "endpoint": endpoint,
                        "status": status,
                        "request_id": request_id,
                        "trace_id": ctx.trace_id,
                        "ctx_span": ctx.span_id,
                        "worker": "router",
                        "routed_to": slot,
                        **({"batch_size": batch_size} if batch_size else {}),
                    },
                    status="ok" if status < 500 else f"error: {status}",
                )
            ]
        )

    # -- aggregation ---------------------------------------------------------

    async def _fetch_worker(
        self, worker: _Worker, path: str
    ) -> Optional[Tuple[int, Dict[str, str], bytes]]:
        try:
            return await asyncio.wait_for(
                self._forward(worker, "GET", path, {}, b""),
                timeout=_FANOUT_TIMEOUT_S,
            )
        except (WorkerUnavailableError, asyncio.TimeoutError):
            return None

    async def _aggregate_metrics(self) -> str:
        """Merge every worker's /metrics (worker-labelled) with ours."""
        alive = [w for w in self._workers if w.alive()]
        responses = await asyncio.gather(
            *(self._fetch_worker(worker, "/metrics") for worker in alive)
        )
        parts: List[Tuple[Dict[str, str], str]] = []
        for worker, response in zip(alive, responses):
            if response is not None and response[0] == 200:
                parts.append(
                    (
                        {"worker": str(worker.slot)},
                        _strip_router_families(
                            response[2].decode("utf-8")
                        ),
                    )
                )
        # Refresh the router's SLO gauges at scrape time, mirroring the
        # worker-side publish in EvalServer._route.
        self.slo.publish()
        parts.append(
            ({"worker": "router"}, get_registry().to_prometheus_text())
        )
        return merge_prometheus_texts(parts)

    async def _aggregate_healthz(self) -> Dict[str, Any]:
        """Per-worker liveness, identity, and warm-cache state."""
        entries: List[Dict[str, Any]] = []
        fetches = await asyncio.gather(
            *(
                self._fetch_worker(worker, "/healthz")
                if worker.alive()
                else _none()
                for worker in self._workers
            )
        )
        for worker, response in zip(self._workers, fetches):
            entry: Dict[str, Any] = {
                "worker": worker.slot,
                "pid": worker.pid,
                "alive": worker.alive(),
                "restarts": worker.restarts,
            }
            if response is not None and response[0] == 200:
                try:
                    reported = json.loads(response[2])
                except ValueError:
                    reported = {}
                entry["status"] = reported.get("status", "unknown")
                entry["warm_cache"] = reported.get("warm_cache", "unknown")
            else:
                entry["status"] = (
                    "unreachable" if worker.alive() else "dead"
                )
            entries.append(entry)
        return {
            "status": "draining" if self._draining else "ok",
            "workers": entries,
        }

    async def _aggregate_obs(self) -> Dict[str, Any]:
        """The fleet-wide live ops snapshot behind ``GET /debug/obs``.

        The router's own view (in-flight forwards, recent log records,
        SLO status) plus each live worker's ``/debug/obs`` verbatim —
        dead or unreachable workers appear with ``reachable: false`` so
        the surface never hides a sick shard.
        """
        now = time.time_ns()
        in_flight = sorted(
            (dict(entry) for entry in self._in_flight_requests.values()),
            key=lambda entry: entry["started_unix_ns"],
        )
        for entry in in_flight:
            entry["age_ms"] = round(
                (now - entry["started_unix_ns"]) / 1e6, 3
            )
        snapshot: Dict[str, Any] = {
            "role": "router",
            "pid": os.getpid(),
            "draining": self._draining,
            "tracing": current_tracer() is not None,
            "workers_alive": len(self._alive_slots()),
            "in_flight": in_flight,
            "recent": self.logger.recent(),
            "slo": self.slo.status(),
        }
        fetches = await asyncio.gather(
            *(
                self._fetch_worker(worker, "/debug/obs")
                if worker.alive()
                else _none()
                for worker in self._workers
            )
        )
        workers: List[Dict[str, Any]] = []
        for worker, response in zip(self._workers, fetches):
            entry: Dict[str, Any] = {
                "worker": worker.slot,
                "pid": worker.pid,
                "alive": worker.alive(),
                "reachable": False,
            }
            if response is not None and response[0] == 200:
                try:
                    entry.update(json.loads(response[2]))
                    entry["reachable"] = True
                except ValueError:
                    pass
            workers.append(entry)
        snapshot["workers"] = workers
        return snapshot

    async def _aggregate_trace(self) -> Dict[str, Any]:
        """Every worker's spans merged with the router's own.

        The payload behind ``GET /debug/trace`` and the source of the
        drain-time Chrome export: ``process_names`` maps each pid to its
        lane label so the merged trace renders one lane per process.
        """
        spans: List[Dict[str, Any]] = []
        process_names: Dict[int, str] = {os.getpid(): "router"}
        tracer = current_tracer()
        if tracer is not None:
            spans.extend(
                record.to_jsonable() for record in tracer.spans()
            )
        alive = [w for w in self._workers if w.alive()]
        fetches = await asyncio.gather(
            *(
                self._fetch_worker(worker, "/debug/trace")
                for worker in alive
            )
        )
        for worker, response in zip(alive, fetches):
            if response is None or response[0] != 200:
                continue
            try:
                reported = json.loads(response[2])
            except ValueError:
                continue
            process_names[int(reported.get("pid", worker.pid))] = (
                f"worker {worker.slot}"
            )
            spans.extend(reported.get("spans", ()))
        spans.sort(
            key=lambda record: (
                record.get("start_unix_ns", 0),
                str(record.get("span_id", "")),
            )
        )
        return {
            "schema": TRACE_SCHEMA,
            "pid": os.getpid(),
            "role": "router",
            "process_names": process_names,
            "spans": spans,
        }

    # -- blocking entry point (CLI) ------------------------------------------

    def run_forever(
        self,
        stop_event: Optional[threading.Event] = None,
        ready: Optional[Any] = None,
    ) -> None:
        """Serve until SIGINT/SIGTERM (or ``stop_event``), then drain."""

        async def _main() -> None:
            await self.start()
            if ready is not None:
                ready(self.host, self.port)
            loop = asyncio.get_running_loop()
            stopper: asyncio.Future = loop.create_future()

            def _request_stop() -> None:
                if not stopper.done():
                    stopper.set_result(None)

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, _request_stop)
                except (NotImplementedError, RuntimeError):
                    pass
            waiter = None
            if stop_event is not None:
                waiter = loop.run_in_executor(None, stop_event.wait)
                waiter.add_done_callback(lambda _: _request_stop())
            try:
                await stopper
            finally:
                await self.stop()
                if waiter is not None and stop_event is not None:
                    stop_event.set()
                    await waiter

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass


async def _none() -> None:
    return None


#: Families only the router increments. Workers still render them (the
#: instruments are defined process-wide and zero-valued gauges/counters
#: always appear), so worker dumps must drop them before relabelling or
#: the merged exposition would carry duplicate series.
_ROUTER_ONLY_FAMILIES = (
    "serve_routed_total",
    "serve_workers_alive",
    "serve_worker_respawns_total",
)


def _strip_router_families(text: str) -> str:
    """Remove router-only metric families from one worker's dump."""

    def _keep(line: str) -> bool:
        probe = line
        for prefix in ("# HELP ", "# TYPE "):
            if line.startswith(prefix):
                probe = line[len(prefix):]
                break
        return not any(
            probe.startswith(family) for family in _ROUTER_ONLY_FAMILIES
        )

    return "\n".join(
        line for line in text.splitlines() if _keep(line)
    ) + "\n"


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Parse one worker HTTP response: status, headers, exact body."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ConnectionError(f"malformed status line {lines[0]!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line or ":" not in line:
            continue
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    payload = await reader.readexactly(length) if length else b""
    return status, headers, payload


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: bytes,
    content_type: str = "application/json",
    headers: Optional[Dict[str, str]] = None,
    close: bool = False,
) -> None:
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in (headers or {}).items():
        if name not in ("Content-Type",):
            lines.append(f"{name}: {value}")
    if close:
        lines.append("Connection: close")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
    try:
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass


def _method_not_allowed(allow: str) -> Tuple[int, bytes, Dict[str, str]]:
    return (
        405,
        error_body("method_not_allowed", f"use {allow}"),
        {"Allow": allow},
    )


# -- test/bench harness ------------------------------------------------------


class ShardThread:
    """A :class:`ShardSupervisor` on a dedicated thread + event loop.

    The in-process harness mirroring :class:`~repro.serve.server.ServerThread`:
    ``start()`` blocks until the public port is bound *and* every worker
    has reported ready; ``stop()`` runs the rolling drain and joins the
    thread. Usable as a context manager.
    """

    def __init__(self, config: Optional[ShardConfig] = None) -> None:
        self.supervisor = ShardSupervisor(config=config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.supervisor.host

    @property
    def port(self) -> int:
        return self.supervisor.port

    def start(self, timeout: float = 180.0) -> "ShardThread":
        self._thread = threading.Thread(
            target=self._run, name="shard-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=timeout)
        if self._startup_error is not None:
            raise RuntimeError(
                "shard supervisor failed to start"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError(
                f"shard supervisor did not start within {timeout:g} s"
            )
        return self

    def _run(self) -> None:
        async def _main() -> None:
            loop = asyncio.get_running_loop()
            self._loop = loop
            self._stop_future: asyncio.Future = loop.create_future()
            try:
                await self.supervisor.start()
            except BaseException as error:
                self._startup_error = error
                self._ready.set()
                try:
                    await self.supervisor.stop()
                except Exception:
                    pass
                return
            self._ready.set()
            await self._stop_future
            await self.supervisor.stop()

        asyncio.run(_main())
        self._stopped.set()

    def stop(self) -> None:
        """Drain and shut down; safe to call from any thread, once."""
        loop = self._loop
        if loop is None or self._stopped.is_set():
            return

        def _request() -> None:
            if not self._stop_future.done():
                self._stop_future.set_result(None)

        try:
            loop.call_soon_threadsafe(_request)
        except RuntimeError:  # loop already closed
            pass
        if self._thread is not None:
            self._thread.join(timeout=120.0)

    def __enter__(self) -> "ShardThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = [
    "ShardConfig",
    "ShardSupervisor",
    "ShardThread",
    "WorkerUnavailableError",
    "rendezvous_worker",
    "routing_key",
]
