"""Request parsing, shared state, and batch execution for repro.serve.

This module is the server's *pure* core: it turns JSON request bodies
into batcher payloads (:func:`parse_request`) and executes fused batches
of them (:func:`execute_batch`) — no sockets, no asyncio — so the whole
protocol is unit-testable without a running server.

Determinism and identity
------------------------
The engine's invariant LRU is identity-keyed: two structurally equal
``ChipDesign`` objects are different cache entries, and two
``TechnologyDatabase.default()`` calls never share anything. A service
that rebuilt objects per request would therefore recompile invariants
on every call *and* lose the fused-batch design dedup. ``ServeState``
prevents both: one technology database for the process, one memoized
``TTMModel`` per scenario, one cost model, and an interning cache that
maps each design spec's canonical JSON to a single ``ChipDesign``
instance reused across requests.

Responses are rendered with :func:`canonical_json` (sorted keys, no
whitespace), and every response body is a pure function of its own
request plus server state — batch metadata travels in HTTP headers —
which is what makes "coalesced == solo, byte for byte" testable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.export import to_jsonable
from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..design.library import a11, raven_multicore, zen2, zen2_monolithic
from ..design.serialize import design_from_dict
from ..engine.batch_split import DEFAULT_SPLIT_GRID, batch_split, refine_split_grid
from ..engine.invariants import (
    cached_invariants,
    design_invariants,
    seed_design_invariants,
)
from ..engine.portfolio import compile_portfolio, portfolio_fingerprint
from ..engine.requests import (
    POINT_METRICS,
    PointRequest,
    fused_point_eval,
    point_signature,
)
from ..engine.shm import (
    InvariantsShare,
    PortfolioShare,
    share_design_invariants,
    share_portfolio,
)
from ..errors import ReproError
from ..market import scenarios
from ..montecarlo.scenario_study import run_scenario_study
from ..montecarlo.spec import default_correlated_spec, default_supply_spec
from ..montecarlo.stress import stress_scenarios
from ..montecarlo.study import compare_designs
from ..technology.database import TechnologyDatabase
from ..ttm.model import TTMModel

#: Endpoints served through the coalescing batcher.
BATCHED_ENDPOINTS: Tuple[str, ...] = ("evaluate", "mc", "splits", "scenarios")

#: Default nominal demand when a request omits ``n_chips``.
DEFAULT_N_CHIPS = 1e7

#: Cap on distinct interned designs held per server.
DESIGN_CACHE_LIMIT = 512

#: Library designs addressable by plain string. The A11 defaults to its
#: 7 nm re-release target, not the original 10 nm (which the dataset
#: models as having zero production capacity — see NodeUnavailableError);
#: this matches the ``ttm-cas mc`` default.
_NAMED_DESIGNS: Dict[str, Callable[[], ChipDesign]] = {
    "a11": partial(a11, "7nm"),
    "zen2": zen2,
    "raven": raven_multicore,
}

#: Library factories addressable via ``{"library": ..., "process": ...}``.
_LIBRARY_FACTORIES: Dict[str, Callable[..., ChipDesign]] = {
    "a11": a11,
    "zen2-monolithic": zen2_monolithic,
    "raven": raven_multicore,
}

#: Single-process factories usable by /splits (ported per node).
_SPLIT_FACTORIES: Dict[str, Callable[..., ChipDesign]] = {
    "a11": a11,
    "zen2-monolithic": zen2_monolithic,
    "raven": raven_multicore,
}


class BadRequestError(Exception):
    """A request the protocol rejects; maps to HTTP 400."""

    def __init__(self, message: str, code: str = "invalid_request") -> None:
        super().__init__(message)
        self.code = code


def canonical_json(value: Any) -> bytes:
    """The canonical wire encoding: sorted keys, no whitespace, UTF-8."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def error_body(code: str, message: str) -> bytes:
    """The structured error payload every non-2xx response carries."""
    return canonical_json({"error": {"code": code, "message": message}})


def _require_mapping(body: Any) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise BadRequestError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def _number(
    body: Mapping[str, Any],
    key: str,
    default: Optional[float] = None,
    required: bool = False,
) -> Optional[float]:
    if key not in body:
        if required:
            raise BadRequestError(f"missing required field {key!r}")
        return default
    value = body[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(
            f"field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def _integer(
    body: Mapping[str, Any], key: str, default: int
) -> int:
    value = body.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(
            f"field {key!r} must be an integer, got {value!r}"
        )
    return value


def _capacity(body: Mapping[str, Any]) -> Optional[Any]:
    if "capacity" not in body:
        return None
    value = body["capacity"]
    if isinstance(value, Mapping):
        out: Dict[str, float] = {}
        for node, fraction in value.items():
            if isinstance(fraction, bool) or not isinstance(
                fraction, (int, float)
            ):
                raise BadRequestError(
                    f"capacity for node {node!r} must be a number, "
                    f"got {fraction!r}"
                )
            out[str(node)] = float(fraction)
        if not out:
            raise BadRequestError("capacity mapping must not be empty")
        return out
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(
            f"field 'capacity' must be a number or a node mapping, "
            f"got {value!r}"
        )
    return float(value)


def _metrics(body: Mapping[str, Any]) -> Tuple[str, ...]:
    value = body.get("metrics")
    if value is None:
        return POINT_METRICS
    if not isinstance(value, (list, tuple)) or not value:
        raise BadRequestError(
            "field 'metrics' must be a non-empty list of metric names"
        )
    metrics = []
    for name in value:
        if name not in POINT_METRICS:
            raise BadRequestError(
                f"unknown metric {name!r}; choose from {list(POINT_METRICS)}"
            )
        if name not in metrics:
            metrics.append(name)
    return tuple(metrics)


@dataclass(frozen=True)
class WarmBundle:
    """Picklable warm-cache publication for shard workers.

    The supervisor computes the named designs' invariants and their
    compiled portfolio once, publishes the tensors through
    ``repro.engine.shm``, and ships this bundle to every worker. A
    worker interns its *own* design/technology objects (the engine's
    caches are identity-keyed) and seeds them with the attached
    zero-copy views, so N workers share one copy of the warm tensors
    instead of re-deriving N. The model knobs ride along because they
    are part of the cache keys: seeding under the knobs the tensors were
    computed with keeps the entries correct even if defaults diverge.
    """

    labels: Tuple[str, ...]
    invariants: InvariantsShare
    portfolio: Optional[PortfolioShare]
    engineers: int
    alpha: float
    edge_corrected: bool
    block_parallel: bool

    @property
    def handles(self) -> Tuple[Any, ...]:
        """Every tensor handle the bundle references (for leasing)."""
        out: List[Any] = [self.invariants.handle]
        if self.portfolio is not None:
            out.append(self.portfolio.handle)
        return tuple(out)

    @property
    def source(self) -> str:
        """``shared`` for zero-copy shm views, ``inline`` for pickled."""
        return "shared" if self.invariants.handle.is_shared else "inline"


class ServeState:
    """Process-wide shared state: database, models, interned designs."""

    def __init__(
        self,
        technology: Optional[TechnologyDatabase] = None,
        warm: Optional[WarmBundle] = None,
    ) -> None:
        self.technology = technology or TechnologyDatabase.default()
        self.cost_model = CostModel.nominal(self.technology)
        self._base_model = TTMModel.nominal(self.technology)
        self._models: Dict[str, TTMModel] = {}
        self._designs: Dict[bytes, ChipDesign] = {}
        #: Where this process's warm caches came from: ``local`` (it
        #: computes them itself), ``shared`` (zero-copy shm views from
        #: the shard supervisor), or ``inline`` (the pickling fallback).
        self.warm_source = "local"
        if warm is not None:
            self._seed_warm(warm)

    def _seed_warm(self, warm: WarmBundle) -> None:
        """Seed the identity-keyed engine caches from a warm bundle."""
        shared = warm.invariants.materialize()
        designs: List[ChipDesign] = []
        for label in warm.labels:
            design = self.resolve_design(label)
            designs.append(design)
            entry = shared.get(label)
            if entry is not None:
                seed_design_invariants(
                    design,
                    self.technology,
                    entry,
                    engineers=warm.engineers,
                    alpha=warm.alpha,
                    edge_corrected=warm.edge_corrected,
                    block_parallel=warm.block_parallel,
                )
        if warm.portfolio is not None:
            tensors = warm.portfolio.materialize()
            key = portfolio_fingerprint(
                tuple(designs),
                self.technology,
                engineers=warm.engineers,
                alpha=warm.alpha,
                edge_corrected=warm.edge_corrected,
                block_parallel=warm.block_parallel,
            )
            cached_invariants(key, lambda: tensors)
        self.warm_source = warm.source

    def model_for(self, scenario: str) -> TTMModel:
        """The memoized TTM model under one named market scenario."""
        model = self._models.get(scenario)
        if model is None:
            try:
                conditions = scenarios.by_name(scenario)
            except KeyError:
                raise BadRequestError(
                    f"unknown scenario {scenario!r}; "
                    f"choose from {sorted(scenarios.SCENARIOS)}"
                ) from None
            model = self._base_model.with_foundry(
                self._base_model.foundry.with_conditions(conditions)
            )
            self._models[scenario] = model
        return model

    def resolve_design(self, spec: Any) -> ChipDesign:
        """Intern one design spec (string, library dict, or inline dict).

        Identical specs always return the *same object*, so the
        invariant LRU and the fused batcher's design dedup both see one
        design, not N copies.
        """
        key = canonical_json(spec)
        design = self._designs.get(key)
        if design is not None:
            return design
        design = self._build_design(spec)
        if len(self._designs) >= DESIGN_CACHE_LIMIT:
            self._designs.pop(next(iter(self._designs)))
        self._designs[key] = design
        return design

    def _build_design(self, spec: Any) -> ChipDesign:
        if isinstance(spec, str):
            factory = _NAMED_DESIGNS.get(spec)
            if factory is None:
                raise BadRequestError(
                    f"unknown design {spec!r}; named designs are "
                    f"{sorted(_NAMED_DESIGNS)} (or pass a library/inline "
                    "design object)"
                )
            return factory()
        spec = _require_mapping(spec)
        if "library" in spec:
            library = spec["library"]
            factory = _LIBRARY_FACTORIES.get(library)
            if factory is None:
                raise BadRequestError(
                    f"unknown design library {library!r}; "
                    f"choose from {sorted(_LIBRARY_FACTORIES)}"
                )
            kwargs: Dict[str, Any] = {}
            if "process" in spec:
                kwargs["process"] = str(spec["process"])
            elif library == "zen2-monolithic":
                raise BadRequestError(
                    "design library 'zen2-monolithic' requires 'process'"
                )
            if "cores" in spec:
                if library != "raven":
                    raise BadRequestError(
                        "'cores' only applies to the 'raven' library"
                    )
                kwargs["cores"] = _integer(spec, "cores", 16)
            extra = set(spec) - {"library", "process", "cores"}
            if extra:
                raise BadRequestError(
                    f"unknown design keys {sorted(extra)}"
                )
            try:
                return factory(**kwargs)
            except ReproError as error:
                raise BadRequestError(str(error)) from None
        if "dies" in spec:
            try:
                return design_from_dict(spec)
            except ReproError as error:
                raise BadRequestError(str(error)) from None
        raise BadRequestError(
            "design must be a known name, a {'library': ...} reference, "
            "or an inline design object with 'dies'"
        )

    def split_factory(self, spec: Any) -> Tuple[str, Callable[[str], ChipDesign]]:
        """A (label, node -> design) factory for the /splits endpoint."""
        if isinstance(spec, str):
            name, extra = spec, {}
        else:
            mapping = _require_mapping(spec)
            name = mapping.get("library")
            extra = {
                key: mapping[key] for key in mapping if key != "library"
            }
            unknown = set(extra) - {"cores"}
            if unknown:
                raise BadRequestError(
                    f"unknown split-design keys {sorted(unknown)}"
                )
        factory = _SPLIT_FACTORIES.get(name)  # type: ignore[arg-type]
        if factory is None:
            raise BadRequestError(
                f"split designs must name a single-process library "
                f"({sorted(_SPLIT_FACTORIES)}), got {name!r}"
            )
        if "cores" in extra:
            if name != "raven":
                raise BadRequestError(
                    "'cores' only applies to the 'raven' library"
                )
            cores = extra["cores"]
            if isinstance(cores, bool) or not isinstance(cores, int):
                raise BadRequestError(
                    f"field 'cores' must be an integer, got {cores!r}"
                )
            return f"{name}:{cores}", partial(factory, cores=cores)
        return str(name), factory


def build_warm_bundle(state: Optional[ServeState] = None) -> WarmBundle:
    """Compute and publish the named designs' warm caches (parent side).

    Uses (or builds) a :class:`ServeState`, derives every named library
    design's invariants plus the compiled portfolio over all of them,
    and publishes the tensors through the process-wide shm store. The
    returned bundle's handles each carry one publish reference; the
    caller owns their release (the shard supervisor leases them per
    worker and releases its own reference at shutdown).
    """
    state = state or ServeState()
    model = state._base_model
    labels = tuple(sorted(_NAMED_DESIGNS))
    designs = [state.resolve_design(label) for label in labels]
    invariants = {
        label: design_invariants(
            design,
            state.technology,
            model.engineers,
            alpha=model.alpha,
            edge_corrected=model.edge_corrected,
            block_parallel=model.block_parallel,
        )
        for label, design in zip(labels, designs)
    }
    portfolio = compile_portfolio(
        tuple(designs),
        state.technology,
        engineers=model.engineers,
        alpha=model.alpha,
        edge_corrected=model.edge_corrected,
        block_parallel=model.block_parallel,
    )
    return WarmBundle(
        labels=labels,
        invariants=share_design_invariants(invariants),
        portfolio=share_portfolio(portfolio),
        engineers=model.engineers,
        alpha=model.alpha,
        edge_corrected=model.edge_corrected,
        block_parallel=model.block_parallel,
    )


# -- parsing: body -> (group key, payload) ------------------------------------


def parse_evaluate(
    state: ServeState, body: Any
) -> Tuple[Hashable, Dict[str, Any]]:
    """Parse one /evaluate body into its batcher (key, payload)."""
    body = _require_mapping(body)
    if "design" not in body:
        raise BadRequestError("missing required field 'design'")
    design = state.resolve_design(body["design"])
    scenario = str(body.get("scenario", "nominal"))
    state.model_for(scenario)  # validate the scenario before queueing
    n_chips = _number(body, "n_chips", DEFAULT_N_CHIPS)
    if n_chips <= 0:  # type: ignore[operator]
        raise BadRequestError(f"'n_chips' must be positive, got {n_chips}")
    request = PointRequest(
        design=design,
        n_chips=n_chips,  # type: ignore[arg-type]
        capacity=_capacity(body),
        queue_weeks=_number(body, "queue_weeks"),
        d0_scale=_number(body, "d0_scale"),
        wafer_rate_scale=_number(body, "wafer_rate_scale"),
        metrics=_metrics(body),
    )
    key = ("evaluate", scenario, point_signature(request))
    payload = {
        "request": request,
        "scenario": scenario,
        "design_name": design.name,
    }
    return key, payload


def parse_mc(
    state: ServeState, body: Any
) -> Tuple[Hashable, Dict[str, Any]]:
    """Parse one /mc body into its batcher (key, payload).

    The group key pins everything that shapes the random draws —
    scenario, sample count, seed, and every spec knob — so coalesced
    studies differ only along the design axis, which is exactly what
    ``compare_designs`` fuses with common random numbers.
    """
    body = _require_mapping(body)
    if "design" not in body:
        raise BadRequestError("missing required field 'design'")
    design = state.resolve_design(body["design"])
    scenario = str(body.get("scenario", "nominal"))
    state.model_for(scenario)
    samples = _integer(body, "samples", 1024)
    if samples <= 0:
        raise BadRequestError(f"'samples' must be positive, got {samples}")
    seed = _integer(body, "seed", 0)
    mc_chips = _number(body, "n_chips", DEFAULT_N_CHIPS)
    if mc_chips <= 0:  # type: ignore[operator]
        raise BadRequestError(f"'n_chips' must be positive, got {mc_chips}")
    spec_knobs = {
        "n_chips": mc_chips,
        "variation": _number(body, "variation", 0.1),
        "queue_weeks": _number(body, "queue_weeks", 2.0),
        "capacity": _number(body, "capacity", 0.9),
    }
    with_cost = bool(body.get("with_cost", True))
    key = (
        "mc",
        scenario,
        samples,
        seed,
        with_cost,
        canonical_json(spec_knobs),
    )
    payload = {
        "design": design,
        "scenario": scenario,
        "samples": samples,
        "seed": seed,
        "with_cost": with_cost,
        "spec_knobs": spec_knobs,
        "design_name": design.name,
    }
    return key, payload


def parse_splits(
    state: ServeState, body: Any
) -> Tuple[Hashable, Dict[str, Any]]:
    """Parse one /splits body into its batcher (key, payload).

    Split sweeps don't share a fusable axis, so coalescing here is
    single-flight deduplication: the group key is the canonical body,
    and every member of a group receives the one shared evaluation.
    """
    body = _require_mapping(body)
    pairs_raw = body.get("pairs")
    if not isinstance(pairs_raw, (list, tuple)) or not pairs_raw:
        raise BadRequestError(
            "field 'pairs' must be a non-empty list of [primary, secondary] "
            "node pairs"
        )
    pairs: List[Tuple[str, str]] = []
    for item in pairs_raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise BadRequestError(
                f"each pair must be a [primary, secondary] list, got {item!r}"
            )
        pairs.append((str(item[0]), str(item[1])))
    label, factory = state.split_factory(body.get("design", "a11"))
    scenario = str(body.get("scenario", "nominal"))
    state.model_for(scenario)
    n_chips = _number(body, "n_chips", DEFAULT_N_CHIPS)
    refine = bool(body.get("refine", False))
    with_cas = bool(body.get("with_cas", True))
    normalized = {
        "pairs": [list(pair) for pair in pairs],
        "design": label,
        "scenario": scenario,
        "n_chips": n_chips,
        "refine": refine,
        "with_cas": with_cas,
    }
    key = ("splits", canonical_json(normalized))
    payload = {
        "pairs": pairs,
        "factory": factory,
        "scenario": scenario,
        "n_chips": n_chips,
        "refine": refine,
        "with_cas": with_cas,
        "design_label": label,
    }
    return key, payload


def normalize_stress_selector(value: Any) -> Tuple[str, ...]:
    """Normalize a /scenarios ``scenarios`` field to a selector tuple.

    Shared with the shard router's :func:`~repro.serve.shard.routing_key`
    (which must not resolve or validate), so the batcher group key and
    the routing key agree on the selector's canonical spelling.
    """
    if value is None:
        return ("all",)
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)) and value and all(
        isinstance(item, str) for item in value
    ):
        return tuple(value)
    raise BadRequestError(
        "field 'scenarios' must be a selector string or a non-empty "
        f"list of selector strings, got {value!r}"
    )


def parse_scenarios(
    state: ServeState, body: Any
) -> Tuple[Hashable, Dict[str, Any]]:
    """Parse one /scenarios body into its batcher (key, payload).

    Like /mc, the group key pins everything shaping the shared draw —
    market scenario, sample count, seed, spec knobs, sampling mode —
    plus the stress-scenario selector, so coalesced requests differ
    only along the design axis and fuse into one
    :func:`~repro.montecarlo.scenario_study.run_scenario_study` cube.
    The per-request ``seed`` lives in the key: requests with different
    seeds never share a batch.
    """
    body = _require_mapping(body)
    if "design" not in body:
        raise BadRequestError("missing required field 'design'")
    design = state.resolve_design(body["design"])
    scenario = str(body.get("scenario", "nominal"))
    state.model_for(scenario)
    selector = normalize_stress_selector(body.get("scenarios"))
    try:
        stress_set = stress_scenarios(selector)
    except ReproError as error:
        raise BadRequestError(str(error)) from None
    samples = _integer(body, "samples", 1024)
    if samples <= 0:
        raise BadRequestError(f"'samples' must be positive, got {samples}")
    correlated = bool(body.get("correlated", False))
    if correlated and samples % 2:
        raise BadRequestError(
            "correlated sampling is antithetic and needs an even "
            f"'samples', got {samples}"
        )
    seed = _integer(body, "seed", 0)
    mc_chips = _number(body, "n_chips", DEFAULT_N_CHIPS)
    if mc_chips <= 0:  # type: ignore[operator]
        raise BadRequestError(f"'n_chips' must be positive, got {mc_chips}")
    spec_knobs = {
        "n_chips": mc_chips,
        "variation": _number(body, "variation", 0.1),
        "queue_weeks": _number(body, "queue_weeks", 2.0),
        "capacity": _number(body, "capacity", 0.9),
    }
    with_cost = bool(body.get("with_cost", True))
    key = (
        "scenarios",
        scenario,
        selector,
        samples,
        seed,
        with_cost,
        correlated,
        canonical_json(spec_knobs),
    )
    payload = {
        "design": design,
        "scenario": scenario,
        "selector": selector,
        "stress_set": stress_set,
        "samples": samples,
        "seed": seed,
        "with_cost": with_cost,
        "correlated": correlated,
        "spec_knobs": spec_knobs,
        "design_name": design.name,
    }
    return key, payload


_PARSERS = {
    "evaluate": parse_evaluate,
    "mc": parse_mc,
    "splits": parse_splits,
    "scenarios": parse_scenarios,
}


def parse_request(
    state: ServeState, endpoint: str, body: Any
) -> Tuple[Hashable, Dict[str, Any]]:
    """Dispatch one endpoint's body to its parser."""
    return _PARSERS[endpoint](state, body)


# -- execution: (key, payloads) -> one response dict per payload ---------------


def execute_evaluate(
    state: ServeState, key: Hashable, payloads: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run one fused point-evaluation batch."""
    scenario = payloads[0]["scenario"]
    model = state.model_for(scenario)
    results = fused_point_eval(
        model,
        state.cost_model,
        [payload["request"] for payload in payloads],
    )
    return [
        {
            "design": payload["design_name"],
            "scenario": payload["scenario"],
            "metrics": metrics,
        }
        for payload, metrics in zip(payloads, results)
    ]


def execute_mc(
    state: ServeState, key: Hashable, payloads: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run one coalesced Monte Carlo study batch.

    Identical designs are deduplicated (single-flight: one study shared
    by every requester); distinct designs are fused into one
    ``compare_designs`` portfolio pass over shared draws. If two
    *different* interned designs collide on a display name (legal for
    inline designs), the batch falls back to per-design studies — the
    results are bit-identical either way, per the portfolio engine's
    common-random-numbers guarantee.
    """
    first = payloads[0]
    model = state.model_for(first["scenario"])
    knobs = first["spec_knobs"]
    spec = default_supply_spec(
        n_chips=knobs["n_chips"],
        variation=knobs["variation"],
        queue_weeks=knobs["queue_weeks"],
        capacity=knobs["capacity"],
    )
    cost_model = state.cost_model if first["with_cost"] else None

    unique: List[ChipDesign] = []
    row_of: Dict[int, int] = {}
    for payload in payloads:
        design = payload["design"]
        if id(design) not in row_of:
            row_of[id(design)] = len(unique)
            unique.append(design)

    names = [design.name for design in unique]
    run = partial(
        compare_designs,
        model,
        spec=spec,
        n_samples=first["samples"],
        seed=first["seed"],
        cost_model=cost_model,
    )
    if len(set(names)) == len(names):
        studies = run(unique)
        by_row = [studies[design.name] for design in unique]
    else:
        by_row = [run([design])[design.name] for design in unique]

    return [
        {
            "design": payload["design_name"],
            "scenario": payload["scenario"],
            "samples": payload["samples"],
            "seed": payload["seed"],
            "study": to_jsonable(by_row[row_of[id(payload["design"])]]),
        }
        for payload in payloads
    ]


def execute_splits(
    state: ServeState, key: Hashable, payloads: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run one deduplicated split-sweep group (all payloads identical)."""
    first = payloads[0]
    model = state.model_for(first["scenario"])
    result = batch_split(
        first["factory"],
        first["pairs"],
        model,
        state.cost_model,
        first["n_chips"],
        split_grid=DEFAULT_SPLIT_GRID,
        with_cas=first["with_cas"],
    )
    if first["refine"] and first["with_cas"]:
        result = batch_split(
            first["factory"],
            first["pairs"],
            model,
            state.cost_model,
            first["n_chips"],
            split_grid=refine_split_grid(result),
            with_cas=True,
        )
    best = []
    for i, pair in enumerate(result.pairs):
        evaluation = result.best_evaluation(i)
        best.append(
            {
                "pair": list(pair),
                "split": evaluation.split,
                "ttm_weeks": evaluation.ttm_weeks,
                "cost_usd": evaluation.cost_usd,
                "cas": evaluation.cas,
            }
        )
    response = {
        "design": first["design_label"],
        "scenario": first["scenario"],
        "n_chips": first["n_chips"],
        "refined": bool(first["refine"] and first["with_cas"]),
        "best": best,
    }
    return [response for _ in payloads]


def execute_scenarios(
    state: ServeState, key: Hashable, payloads: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run one coalesced scenario-cube study batch.

    Identical designs are deduplicated; distinct designs join one fused
    ``run_scenario_study`` cube over shared draws (common random
    numbers). Per the scenario engine's per-design independence, a
    design's slice of the fused cube is bit-identical to its solo
    study, so coalesced == solo byte-for-byte. Name collisions between
    *different* interned designs fall back to per-design studies.
    """
    first = payloads[0]
    model = state.model_for(first["scenario"])
    knobs = first["spec_knobs"]
    build_spec = (
        default_correlated_spec if first["correlated"] else default_supply_spec
    )
    spec = build_spec(
        n_chips=knobs["n_chips"],
        variation=knobs["variation"],
        queue_weeks=knobs["queue_weeks"],
        capacity=knobs["capacity"],
    )
    cost_model = state.cost_model if first["with_cost"] else None
    stress_set = first["stress_set"]

    unique: List[ChipDesign] = []
    row_of: Dict[int, int] = {}
    for payload in payloads:
        design = payload["design"]
        if id(design) not in row_of:
            row_of[id(design)] = len(unique)
            unique.append(design)

    names = [design.name for design in unique]
    run = partial(
        run_scenario_study,
        model,
        spec=spec,
        scenarios=stress_set,
        n_samples=first["samples"],
        seed=first["seed"],
        cost_model=cost_model,
    )
    if len(set(names)) == len(names):
        study = run(unique)
        by_row = [
            {
                scenario: study.cell(scenario, design.name)
                for scenario in study.scenarios
            }
            for design in unique
        ]
        baseline = study.baseline
    else:
        by_row = []
        baseline = stress_set.names[0]
        for design in unique:
            solo = run([design])
            baseline = solo.baseline
            by_row.append(
                {
                    scenario: solo.cell(scenario, design.name)
                    for scenario in solo.scenarios
                }
            )
    return [
        {
            "design": payload["design_name"],
            "scenario": payload["scenario"],
            "scenarios": list(stress_set.names),
            "baseline": baseline,
            "samples": payload["samples"],
            "seed": payload["seed"],
            "correlated": payload["correlated"],
            "studies": {
                scenario: to_jsonable(cell)
                for scenario, cell in by_row[
                    row_of[id(payload["design"])]
                ].items()
            },
        }
        for payload in payloads
    ]


_EXECUTORS = {
    "evaluate": execute_evaluate,
    "mc": execute_mc,
    "splits": execute_splits,
    "scenarios": execute_scenarios,
}


def execute_batch(
    state: ServeState, key: Hashable, payloads: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """The batcher's batch function: dispatch a group to its executor.

    ``key`` is a tuple whose first element names the endpoint (see the
    parsers above); the result is one JSON-compatible response dict per
    payload, in order.
    """
    endpoint = key[0]  # type: ignore[index]
    return _EXECUTORS[endpoint](state, key, payloads)


def endpoint_of(key: Hashable) -> str:
    """Metrics label for one group key (its endpoint name)."""
    return str(key[0])  # type: ignore[index]


__all__ = [
    "BATCHED_ENDPOINTS",
    "BadRequestError",
    "DEFAULT_N_CHIPS",
    "DESIGN_CACHE_LIMIT",
    "ServeState",
    "WarmBundle",
    "build_warm_bundle",
    "canonical_json",
    "endpoint_of",
    "error_body",
    "execute_batch",
    "execute_evaluate",
    "execute_mc",
    "execute_scenarios",
    "execute_splits",
    "normalize_stress_selector",
    "parse_evaluate",
    "parse_mc",
    "parse_request",
    "parse_scenarios",
    "parse_splits",
]
