"""The coalescing micro-batcher: fuse concurrent requests into one call.

Requests submitted within a small *window* (or until a *max batch*
fills) that share a compatibility key are executed as one fused batch in
a worker thread; each submitter gets its own slice of the batch result.
The window starts at the *first* arrival of a key's group — a lone
request therefore waits at most one window, and a burst of N identical
requests costs one engine dispatch instead of N.

Admission control is a bounded count of admitted-but-uncompleted
requests: past ``max_queue``, :meth:`CoalescingBatcher.submit` raises
:class:`QueueFullError` (the server maps it to ``429 Retry-After``).
While draining, new submissions raise :class:`ServerClosingError` (503)
and every pending group is flushed immediately — in-flight work always
completes, which is the graceful-shutdown guarantee.

Batch poisoning: one bad request (say, a design with zero TTM
sensitivity asking for CAS) would fail the whole fused call, so when a
batch raises, the worker retries each member solo and delivers per-item
results or errors. Good requests are never failed by a bad neighbor.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Future as ThreadFuture
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..obs import instrument
from ..obs.trace import span

#: A batch executor: (key, payloads) -> one result per payload, in order.
BatchFunction = Callable[[Hashable, Sequence[Any]], Sequence[Any]]


class QueueFullError(Exception):
    """Admission control refused the request (bounded queue is full)."""


class ServerClosingError(Exception):
    """The batcher is draining and no longer admits new requests."""


class _Group:
    """One key's open batch: payloads, their futures, and the timer.

    ``metas`` is a parallel list of optional per-request observability
    dicts the batcher stamps timing and batch membership into — kept
    apart from the payloads so trace plumbing can never perturb what
    the engine (or the coalescing group key) sees.
    """

    __slots__ = ("key", "payloads", "futures", "metas", "timer")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.payloads: List[Any] = []
        self.futures: List[asyncio.Future] = []
        self.metas: List[Optional[Dict[str, Any]]] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class CoalescingBatcher:
    """Groups compatible submissions and runs them fused in worker threads.

    Parameters
    ----------
    batch_function:
        Called in a worker thread with ``(key, payloads)``; must return
        one result per payload, in order. Exceptions trigger the
        per-item solo retry described in the module docstring.
    window_s:
        Seconds a group waits for company after its first arrival.
        ``0`` flushes every submission immediately (coalescing off —
        the bench baseline).
    max_batch:
        Group size that triggers an immediate flush.
    max_queue:
        Bound on admitted-but-uncompleted requests (admission control).
    workers:
        Worker threads executing fused batches. The default of 1
        serializes engine calls, which keeps the process-wide invariant
        cache hot and the GIL uncontended; raise it when batches block
        on anything but the CPU.
    endpoint_of:
        Maps a group key to the metrics ``endpoint`` label.
    """

    def __init__(
        self,
        batch_function: BatchFunction,
        *,
        window_s: float = 0.01,
        max_batch: int = 32,
        max_queue: int = 256,
        workers: int = 1,
        endpoint_of: Callable[[Hashable], str] = lambda key: str(key),
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max queue must be >= 1, got {max_queue}")
        self._batch_function = batch_function
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self._endpoint_of = endpoint_of
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve-batch"
        )
        self._groups: Dict[Hashable, _Group] = {}
        self._in_flight: Dict[ThreadFuture, None] = {}
        self._depth = 0
        self._draining = False
        self._batches = 0
        self._batched_requests = 0

    # -- bookkeeping -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Admitted-but-uncompleted request count (the bounded queue)."""
        return self._depth

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> Dict[str, int]:
        """Lifetime totals: batches executed and requests they carried."""
        return {
            "batches": self._batches,
            "batched_requests": self._batched_requests,
        }

    def _set_depth(self, depth: int) -> None:
        self._depth = depth
        instrument.set_queue_depth(depth)

    # -- submission ------------------------------------------------------------

    async def submit(self, key: Hashable, payload: Any) -> Tuple[Any, int]:
        """Queue one payload and await its ``(result, batch_size)``.

        Raises :class:`ServerClosingError` while draining and
        :class:`QueueFullError` past the admission bound. Other
        exceptions are whatever the batch function raised for this
        payload's solo retry.
        """
        return await self.enqueue(key, payload)

    def enqueue(
        self,
        key: Hashable,
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "asyncio.Future":
        """Queue one payload, returning its future without awaiting it.

        Must be called from the event-loop thread. The future resolves
        to ``(result, batch_size)``; callers enforcing a deadline await
        it behind :func:`asyncio.shield` and *cancel the returned
        future* on timeout, which tells delivery to skip it without
        disturbing the rest of the batch.

        ``meta``, when given, receives ``perf_counter_ns`` stamps
        (``t_enqueue`` / ``t_flush`` / ``t_exec_start`` / ``t_exec_end``)
        and the ``batch_span_id`` its request fused into — the server's
        latency breakdown and trace batch-membership links.
        """
        if self._draining:
            instrument.record_rejection("draining")
            raise ServerClosingError("server is draining; not accepting work")
        if self._depth >= self.max_queue:
            instrument.record_rejection("queue_full")
            raise QueueFullError(
                f"admission queue is full ({self.max_queue} in flight)"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._set_depth(self._depth + 1)

        group = self._groups.get(key)
        if group is None:
            group = _Group(key)
            self._groups[key] = group
            if self.window_s > 0 and self.max_batch > 1:
                group.timer = loop.call_later(
                    self.window_s, self._flush, key
                )
        if meta is not None:
            meta["t_enqueue"] = time.perf_counter_ns()
        group.payloads.append(payload)
        group.futures.append(future)
        group.metas.append(meta)
        if len(group.payloads) >= self.max_batch or (
            self.window_s <= 0 or self.max_batch <= 1
        ):
            self._flush(key)
        return future

    # -- flushing --------------------------------------------------------------

    def _flush(self, key: Hashable) -> None:
        """Move one group from pending to in-flight (event-loop thread)."""
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
        loop = asyncio.get_running_loop()
        size = len(group.payloads)
        endpoint = self._endpoint_of(key)
        self._batches += 1
        self._batched_requests += size
        instrument.record_batch(endpoint, size, max_batch=self.max_batch)
        now = time.perf_counter_ns()
        for meta in group.metas:
            if meta is not None:
                meta["t_flush"] = now
        handle = self._pool.submit(
            self._run_batch, key, endpoint, group.payloads, group.metas
        )
        self._in_flight[handle] = None
        handle.add_done_callback(
            lambda done: loop.call_soon_threadsafe(
                self._deliver, done, group, size
            )
        )

    def _run_batch(
        self,
        key: Hashable,
        endpoint: str,
        payloads: List[Any],
        metas: Optional[List[Optional[Dict[str, Any]]]] = None,
    ) -> List[Tuple[bool, Any]]:
        """Worker-thread body: fused call, solo retries on failure."""
        metas = metas if metas is not None else [None] * len(payloads)
        start = time.perf_counter_ns()
        for meta in metas:
            if meta is not None:
                meta["t_exec_start"] = start
        try:
            with span(
                "serve.batch", endpoint=endpoint, size=len(payloads)
            ) as active:
                if active.span_id is not None:
                    # Batch membership: the batch span links to every
                    # request it fused; each request's meta learns which
                    # batch span it rode in (stitch_trace uses both).
                    links = [
                        {
                            "request_id": meta.get("request_id"),
                            "trace_id": meta.get("trace_id"),
                        }
                        for meta in metas
                        if meta is not None
                    ]
                    if links:
                        active.set("links", links)
                    for meta in metas:
                        if meta is not None:
                            meta["batch_span_id"] = active.span_id
                try:
                    results = list(self._batch_function(key, payloads))
                    if len(results) != len(payloads):
                        raise RuntimeError(
                            f"batch function returned {len(results)} results "
                            f"for {len(payloads)} payloads"
                        )
                    return [(True, result) for result in results]
                except Exception:
                    if len(payloads) == 1:
                        raise
                outcomes: List[Tuple[bool, Any]] = []
                for payload in payloads:
                    try:
                        (solo,) = self._batch_function(key, [payload])
                        outcomes.append((True, solo))
                    except Exception as error:
                        outcomes.append((False, error))
                return outcomes
        finally:
            end = time.perf_counter_ns()
            for meta in metas:
                if meta is not None:
                    meta["t_exec_end"] = end

    def _deliver(
        self, handle: ThreadFuture, group: _Group, size: int
    ) -> None:
        """Resolve the group's futures from a finished batch (loop thread)."""
        self._in_flight.pop(handle, None)
        self._set_depth(self._depth - size)
        error = handle.exception()
        for i, future in enumerate(group.futures):
            if future.done():  # submitter gave up (deadline); drop quietly
                continue
            if error is not None:
                future.set_exception(error)
                continue
            ok, value = handle.result()[i]
            if ok:
                future.set_result((value, size))
            else:
                future.set_exception(value)

    # -- shutdown --------------------------------------------------------------

    async def drain(self) -> None:
        """Refuse new work, flush pending groups, wait out in-flight batches.

        Idempotent; afterwards the worker pool is shut down and every
        previously admitted request has been delivered a result (or an
        error) — nothing is abandoned.
        """
        self._draining = True
        for key in list(self._groups):
            self._flush(key)
        while self._in_flight:
            handles = list(self._in_flight)
            await asyncio.gather(
                *(asyncio.wrap_future(handle) for handle in handles),
                return_exceptions=True,
            )
            # _deliver runs via call_soon_threadsafe; yield so it lands.
            await asyncio.sleep(0)
        self._pool.shutdown(wait=True)


__all__ = [
    "BatchFunction",
    "CoalescingBatcher",
    "QueueFullError",
    "ServerClosingError",
]
