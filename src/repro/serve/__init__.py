"""repro.serve: the multi-tenant coalescing evaluation service.

A zero-heavy-dependency async HTTP/JSON server (stdlib ``asyncio`` only)
that exposes the repro engine to concurrent callers:

* :mod:`repro.serve.batcher` — the coalescing micro-batcher: concurrent
  requests with compatible shapes fuse into one engine dispatch sharing
  the warm process-wide invariant cache;
* :mod:`repro.serve.protocol` — request parsing, compatibility keys,
  the shared :class:`ServeState` (interned designs, memoized scenario
  models), and the fused batch executors;
* :mod:`repro.serve.server` — the HTTP/1.1 front end
  (``/evaluate``, ``/mc``, ``/splits``, ``/metrics``, ``/healthz``),
  backpressure, deadlines, graceful drain;
* :mod:`repro.serve.shard` — the prefork worker pool: a parent-side
  sticky router (rendezvous-hashed coalescing groups), zero-copy warm
  caches published through :mod:`repro.engine.shm`, aggregated
  ``/metrics`` and ``/healthz``, rolling drain and worker respawn;
* :mod:`repro.serve.client` — a small blocking client used by tests,
  benchmarks, and the smoke script (opt-in 429 retry with jittered
  ``Retry-After`` backoff).

The contract callers rely on: a coalesced response is byte-identical to
the response the same request would get alone on an idle server — with
or without sharding. Batch size is surfaced only in the
``X-Batch-Size`` header, never in a body.
"""

from .batcher import (
    BatchFunction,
    CoalescingBatcher,
    QueueFullError,
    ServerClosingError,
)
from .client import (
    ServeClient,
    ServeClientError,
    ServeResponse,
    ServerDrainingError,
)
from .protocol import (
    BATCHED_ENDPOINTS,
    BadRequestError,
    ServeState,
    WarmBundle,
    build_warm_bundle,
    canonical_json,
    parse_request,
)
from .server import EvalServer, ServerConfig, ServerThread
from .shard import (
    ShardConfig,
    ShardSupervisor,
    ShardThread,
    WorkerUnavailableError,
    rendezvous_worker,
    routing_key,
)

__all__ = [
    "BATCHED_ENDPOINTS",
    "BadRequestError",
    "BatchFunction",
    "CoalescingBatcher",
    "EvalServer",
    "QueueFullError",
    "ServeClient",
    "ServeClientError",
    "ServeResponse",
    "ServeState",
    "ServerClosingError",
    "ServerConfig",
    "ServerDrainingError",
    "ServerThread",
    "ShardConfig",
    "ShardSupervisor",
    "ShardThread",
    "WarmBundle",
    "WorkerUnavailableError",
    "build_warm_bundle",
    "canonical_json",
    "parse_request",
    "rendezvous_worker",
    "routing_key",
]
