"""The asyncio HTTP/JSON evaluation server (hand-rolled, stdlib-only).

A deliberately small HTTP/1.1 implementation on
``asyncio.start_server`` — request line, headers, ``Content-Length``
bodies, keep-alive — because the service needs exactly six routes and
zero heavy dependencies:

========  ===========  ===================================================
method    path         behavior
========  ===========  ===================================================
``GET``   /healthz     liveness + draining flag
``GET``   /metrics     the process metrics registry as Prometheus text
``POST``  /evaluate    single-design point evaluation (coalesced)
``POST``  /mc          Monte Carlo supply study (coalesced across designs)
``POST``  /splits      multi-process split sweep (single-flight dedup)
``POST``  /scenarios   fused stress-scenario cube (coalesced across designs)
========  ===========  ===================================================

POST bodies are JSON; responses are canonical JSON (sorted keys, no
whitespace). Batch metadata never enters a response body — the number of
requests the fused call carried rides in the ``X-Batch-Size`` header —
so a response's bytes are a pure function of its own request, which is
the service's determinism guarantee.

Failure paths: malformed JSON → 400, unknown route → 404, wrong method
→ 405, oversized body → 413, admission-queue overflow → 429 with
``Retry-After``, draining → 503, per-request deadline (the
``X-Deadline-Ms`` header, or the server default) → 504. Every error
carries a structured ``{"error": {"code", "message"}}`` body.

:class:`ServerThread` wraps the server in a background thread with its
own event loop for tests, benchmarks, and in-process smoke runs.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs import instrument
from ..obs.metrics import get_registry
from ..obs.trace import SpanRecord, current_tracer
from .batcher import CoalescingBatcher, QueueFullError, ServerClosingError
from .protocol import (
    BATCHED_ENDPOINTS,
    BadRequestError,
    ServeState,
    canonical_json,
    endpoint_of,
    error_body,
    execute_batch,
    parse_request,
)

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`EvalServer` (CLI flags map 1:1).

    ``batch_threads`` sizes the thread pool that executes fused batches
    (the CLI's ``--batch-threads``; process-level parallelism is the
    shard supervisor's ``--workers``). ``worker_id`` is set only when
    this server runs as one shard worker — it adds worker identity to
    ``/healthz`` and changes nothing else.
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window_ms: float = 10.0
    max_batch: int = 32
    max_queue: int = 256
    batch_threads: int = 1
    deadline_ms: float = 30_000.0
    max_body_bytes: int = 1_048_576
    worker_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch window must be >= 0 ms, got {self.batch_window_ms}"
            )
        if self.deadline_ms < 0:
            raise ValueError(
                f"deadline must be >= 0 ms (0 disables), got "
                f"{self.deadline_ms}"
            )


class EvalServer:
    """The evaluation service: batcher + HTTP front end on one loop."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        state: Optional[ServeState] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.state = state or ServeState()
        self.host = self.config.host
        self.port = self.config.port
        self.batcher: Optional[CoalescingBatcher] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Dict[asyncio.Task, None] = {}
        self._draining = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        self.batcher = CoalescingBatcher(
            lambda key, payloads: execute_batch(self.state, key, payloads),
            window_s=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
            max_queue=self.config.max_queue,
            workers=self.config.batch_threads,
            endpoint_of=endpoint_of,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight batches, then close.

        New requests are refused (503) the moment draining starts, every
        already-admitted request still receives its response, and open
        keep-alive connections are closed once quiet.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self.batcher is not None:
            await self.batcher.drain()
        if self._connections:
            done, pending = await asyncio.wait(
                set(self._connections), timeout=2.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        if self._server is not None:
            await self._server.wait_closed()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = None
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive or self._draining:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            await self._respond(
                writer, 400, error_body("invalid_request", "headers too large")
            )
            return False
        started = time.perf_counter()
        started_ns = time.time_ns()
        try:
            method, path, headers = _parse_head(head)
        except ValueError as error:
            await self._respond(
                writer, 400, error_body("invalid_request", str(error))
            )
            return False
        path = path.split("?", 1)[0]
        endpoint = path.lstrip("/") or "root"

        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await self._respond(
                writer,
                400,
                error_body("invalid_request", "bad Content-Length header"),
            )
            return False
        if length > self.config.max_body_bytes:
            await self._respond(
                writer,
                413,
                error_body(
                    "payload_too_large",
                    f"body of {length} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit",
                ),
                close=True,
            )
            self._finish(endpoint, 413, started, started_ns, 0)
            return False
        if length:
            body = await reader.readexactly(length)

        status, payload, extra = await self._route(
            method, path, headers, body
        )
        keep = (
            headers.get("connection", "").lower() != "close"
            and not self._draining
            and status != 503
        )
        if not keep:
            extra = dict(extra)
            extra["Connection"] = "close"
        await self._respond(
            writer,
            status,
            payload,
            content_type=extra.pop("Content-Type", "application/json"),
            headers=extra,
            close=not keep,
        )
        batch_size = int(extra.get("X-Batch-Size", 0) or 0)
        self._finish(endpoint, status, started, started_ns, batch_size)
        return keep

    def _finish(
        self,
        endpoint: str,
        status: int,
        started: float,
        started_ns: int,
        batch_size: int,
    ) -> None:
        """Per-request accounting: metrics always, a span when tracing."""
        elapsed = time.perf_counter() - started
        instrument.record_request(endpoint, status, elapsed)
        tracer = current_tracer()
        if tracer is None:
            return
        # Concurrent requests interleave awaits on one thread, so the
        # tracer's thread-local nesting stack cannot scope them; record
        # a parentless span directly and merge it via adopt().
        attributes: Dict[str, Any] = {
            "endpoint": endpoint,
            "status": status,
        }
        if batch_size:
            attributes["batch_size"] = batch_size
        tracer.adopt(
            [
                SpanRecord(
                    name="serve.request",
                    span_id=tracer._next_id(),
                    parent_id=None,
                    start_unix_ns=started_ns,
                    duration_ns=int(elapsed * 1e9),
                    cpu_ns=0,
                    thread_id=threading.get_ident(),
                    process_id=os.getpid(),
                    attributes=attributes,
                    status="ok" if status < 500 else f"error: {status}",
                )
            ]
        )

    # -- routing ---------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            health: Dict[str, Any] = {
                "status": "draining" if self._draining else "ok"
            }
            if self.config.worker_id is not None:
                health["worker"] = self.config.worker_id
                health["pid"] = os.getpid()
                health["warm_cache"] = getattr(
                    self.state, "warm_source", "local"
                )
            return 200, canonical_json(health), {}
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            text = get_registry().to_prometheus_text()
            return (
                200,
                text.encode("utf-8"),
                {"Content-Type": "text/plain; version=0.0.4"},
            )
        endpoint = path.lstrip("/")
        if endpoint in BATCHED_ENDPOINTS:
            if method != "POST":
                return _method_not_allowed("POST")
            return await self._handle_batched(endpoint, headers, body)
        return (
            404,
            error_body("not_found", f"no route for {path!r}"),
            {},
        )

    async def _handle_batched(
        self, endpoint: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        try:
            parsed = json.loads(body)
        except ValueError as error:
            return (
                400,
                error_body("invalid_json", f"body is not valid JSON: {error}"),
                {},
            )
        try:
            key, payload = parse_request(self.state, endpoint, parsed)
        except BadRequestError as error:
            return 400, error_body(error.code, str(error)), {}

        deadline_ms = self.config.deadline_ms
        header_deadline = headers.get("x-deadline-ms")
        if header_deadline is not None:
            try:
                deadline_ms = float(header_deadline)
            except ValueError:
                return (
                    400,
                    error_body(
                        "invalid_request",
                        f"X-Deadline-Ms must be a number, "
                        f"got {header_deadline!r}",
                    ),
                    {},
                )

        assert self.batcher is not None
        try:
            future = self.batcher.enqueue(key, payload)
        except QueueFullError as error:
            retry_after = max(1, int(self.config.batch_window_ms / 1000.0) + 1)
            return (
                429,
                error_body("queue_full", str(error)),
                {"Retry-After": str(retry_after)},
            )
        except ServerClosingError as error:
            return 503, error_body("draining", str(error)), {}

        try:
            if deadline_ms > 0:
                result, batch_size = await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline_ms / 1000.0
                )
            else:
                result, batch_size = await future
        except asyncio.TimeoutError:
            # Tell delivery this slot was abandoned; the rest of the
            # batch is untouched.
            future.cancel()
            instrument.record_rejection("deadline")
            return (
                504,
                error_body(
                    "deadline_exceeded",
                    f"request exceeded its {deadline_ms:g} ms deadline",
                ),
                {},
            )
        except BadRequestError as error:
            return 400, error_body(error.code, str(error)), {}
        except ReproError as error:
            return 400, error_body("invalid_request", str(error)), {}
        except Exception as error:  # noqa: BLE001 - the 500 boundary
            return (
                500,
                error_body("internal", f"{type(error).__name__}: {error}"),
                {},
            )
        return (
            200,
            canonical_json(result),
            {"X-Batch-Size": str(batch_size)},
        )

    # -- response writing ------------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
        ]
        for name, value in (headers or {}).items():
            if name not in ("Content-Type",):
                lines.append(f"{name}: {value}")
        if close and "Connection" not in (headers or {}):
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- blocking entry point (CLI) --------------------------------------------

    def run_forever(
        self,
        stop_event: Optional[threading.Event] = None,
        ready: Optional[Any] = None,
    ) -> None:
        """Serve until SIGINT/SIGTERM (or ``stop_event``), then drain.

        ``ready`` is called with ``(host, port)`` once the socket is
        bound — the CLI uses it to announce the ephemeral port.
        """

        async def _main() -> None:
            await self.start()
            if ready is not None:
                ready(self.host, self.port)
            loop = asyncio.get_running_loop()
            stopper: asyncio.Future = loop.create_future()

            def _request_stop() -> None:
                if not stopper.done():
                    stopper.set_result(None)

            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, _request_stop)
                except (NotImplementedError, RuntimeError):
                    pass
            waiter = None
            if stop_event is not None:
                waiter = loop.run_in_executor(None, stop_event.wait)
                waiter.add_done_callback(lambda _: _request_stop())
            try:
                await stopper
            finally:
                await self.stop()
                if waiter is not None and stop_event is not None:
                    stop_event.set()
                    await waiter

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    """(method, path, lower-cased headers) from one request head."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise ValueError(f"undecodable request head: {error}") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise ValueError(f"malformed header line {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, headers


def _method_not_allowed(allow: str) -> Tuple[int, bytes, Dict[str, str]]:
    return (
        405,
        error_body("method_not_allowed", f"use {allow}"),
        {"Allow": allow},
    )


class ServerThread:
    """An :class:`EvalServer` on a dedicated thread + event loop.

    The in-process harness used by tests, benchmarks, and the smoke
    client: ``start()`` blocks until the ephemeral port is bound,
    ``stop()`` drains gracefully and joins the thread. Usable as a
    context manager.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        state: Optional[ServeState] = None,
    ) -> None:
        self.server = EvalServer(config=config, state=state)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError(
                "server failed to start"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30 s")
        return self

    def _run(self) -> None:
        async def _main() -> None:
            loop = asyncio.get_running_loop()
            self._loop = loop
            self._stop_future: asyncio.Future = loop.create_future()
            try:
                await self.server.start()
            except BaseException as error:
                self._startup_error = error
                self._ready.set()
                return
            self._ready.set()
            await self._stop_future
            await self.server.stop()

        asyncio.run(_main())
        self._stopped.set()

    def stop(self) -> None:
        """Drain and shut down; safe to call from any thread, once."""
        loop = self._loop
        if loop is None or self._stopped.is_set():
            return

        def _request() -> None:
            if not self._stop_future.done():
                self._stop_future.set_result(None)

        try:
            loop.call_soon_threadsafe(_request)
        except RuntimeError:  # loop already closed
            pass
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = [
    "EvalServer",
    "ServerConfig",
    "ServerThread",
]
