"""The asyncio HTTP/JSON evaluation server (hand-rolled, stdlib-only).

A deliberately small HTTP/1.1 implementation on
``asyncio.start_server`` — request line, headers, ``Content-Length``
bodies, keep-alive — because the service needs exactly six routes and
zero heavy dependencies:

============  ============  ==============================================
method        path          behavior
============  ============  ==============================================
``GET``       /healthz      liveness + draining flag
``GET``       /metrics      the process metrics registry as Prometheus text
``GET``       /debug/obs    live ops snapshot (in-flight, recent, SLOs)
``GET``       /debug/trace  recorded spans as schema-tagged JSON
``POST``      /evaluate     single-design point evaluation (coalesced)
``POST``      /mc           Monte Carlo supply study (coalesced)
``POST``      /splits       multi-process split sweep (single-flight dedup)
``POST``      /scenarios    fused stress-scenario cube (coalesced)
============  ============  ==============================================

POST bodies are JSON; responses are canonical JSON (sorted keys, no
whitespace). Batch metadata never enters a response body — the number of
requests the fused call carried rides in the ``X-Batch-Size`` header —
so a response's bytes are a pure function of its own request, which is
the service's determinism guarantee. The same rule covers the
observability identifiers: ``X-Request-Id`` / ``X-Trace-Id`` response
headers and the inbound ``traceparent`` context
(:mod:`repro.obs.distributed`) never touch a body, so coalesced
responses stay byte-identical to solo ones with tracing enabled.

Failure paths: malformed JSON → 400, unknown route → 404, wrong method
→ 405, oversized body → 413, admission-queue overflow → 429 with
``Retry-After``, draining → 503, per-request deadline (the
``X-Deadline-Ms`` header, or the server default) → 504. Every error
carries a structured ``{"error": {"code", "message"}}`` body.

:class:`ServerThread` wraps the server in a background thread with its
own event loop for tests, benchmarks, and in-process smoke runs.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs import instrument
from ..obs.distributed import (
    TraceContext,
    mint_request_id,
    mint_trace_context,
    parse_traceparent,
)
from ..obs.log import RequestLogger
from ..obs.metrics import get_registry
from ..obs.profile import SamplingProfiler
from ..obs.slo import SLOTracker
from ..obs.trace import (
    SpanRecord,
    TRACE_SCHEMA,
    Tracer,
    current_tracer,
    install_tracer,
    uninstall_tracer,
)
from .batcher import CoalescingBatcher, QueueFullError, ServerClosingError
from .protocol import (
    BATCHED_ENDPOINTS,
    BadRequestError,
    ServeState,
    canonical_json,
    endpoint_of,
    error_body,
    execute_batch,
    parse_request,
)

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`EvalServer` (CLI flags map 1:1).

    ``batch_threads`` sizes the thread pool that executes fused batches
    (the CLI's ``--batch-threads``; process-level parallelism is the
    shard supervisor's ``--workers``). ``worker_id`` is set only when
    this server runs as one shard worker — it adds worker identity to
    ``/healthz`` and ``/debug/*`` and changes nothing else.

    Observability (all opt-in): ``trace`` installs a bounded process
    tracer at startup (``trace_out`` writes the Chrome trace at stop —
    left empty for shard workers, whose spans the supervisor collects
    over ``/debug/trace`` instead); ``log_json`` appends one JSON line
    per request; ``profile_hz`` starts the sampling profiler
    (``profile_out`` writes collapsed stacks at stop).
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window_ms: float = 10.0
    max_batch: int = 32
    max_queue: int = 256
    batch_threads: int = 1
    deadline_ms: float = 30_000.0
    max_body_bytes: int = 1_048_576
    worker_id: Optional[int] = None
    trace: bool = False
    trace_out: str = ""
    log_json: str = ""
    slo_window_s: float = 300.0
    profile_hz: float = 0.0
    profile_out: str = ""

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch window must be >= 0 ms, got {self.batch_window_ms}"
            )
        if self.deadline_ms < 0:
            raise ValueError(
                f"deadline must be >= 0 ms (0 disables), got "
                f"{self.deadline_ms}"
            )
        if self.slo_window_s <= 0:
            raise ValueError(
                f"SLO window must be > 0 s, got {self.slo_window_s}"
            )
        if self.profile_hz < 0:
            raise ValueError(
                f"profile rate must be >= 0 Hz (0 disables), got "
                f"{self.profile_hz}"
            )


#: Rolling span window a serve-installed tracer keeps (a long-lived
#: worker must not grow without bound).
_TRACE_SPAN_LIMIT = 20_000


class EvalServer:
    """The evaluation service: batcher + HTTP front end on one loop."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        state: Optional[ServeState] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.state = state or ServeState()
        self.host = self.config.host
        self.port = self.config.port
        self.batcher: Optional[CoalescingBatcher] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Dict[asyncio.Task, None] = {}
        self._draining = False
        self.slo = SLOTracker(window_s=self.config.slo_window_s)
        self.logger = RequestLogger(
            path=self.config.log_json or None,
            role=(
                "worker" if self.config.worker_id is not None else "server"
            ),
        )
        self._in_flight: Dict[str, Dict[str, Any]] = {}
        self._profiler: Optional[SamplingProfiler] = None
        self._installed_tracer: Optional[Tracer] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self.config.trace and current_tracer() is None:
            self._installed_tracer = install_tracer(
                Tracer(limit=_TRACE_SPAN_LIMIT)
            )
        if self.config.profile_hz > 0:
            self._profiler = SamplingProfiler(
                hz=self.config.profile_hz
            ).start()
        self.batcher = CoalescingBatcher(
            lambda key, payloads: execute_batch(self.state, key, payloads),
            window_s=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
            max_queue=self.config.max_queue,
            workers=self.config.batch_threads,
            endpoint_of=endpoint_of,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight batches, then close.

        New requests are refused (503) the moment draining starts, every
        already-admitted request still receives its response, and open
        keep-alive connections are closed once quiet.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self.batcher is not None:
            await self.batcher.drain()
        if self._connections:
            done, pending = await asyncio.wait(
                set(self._connections), timeout=2.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        if self._server is not None:
            await self._server.wait_closed()
        if self._profiler is not None:
            self._profiler.stop()
            if self.config.profile_out:
                self._profiler.write_collapsed(self.config.profile_out)
            self._profiler = None
        if self._installed_tracer is not None:
            # Only a tracer this server installed is torn down here; a
            # caller-managed tracer (tests, ObsSession) stays put.
            uninstall_tracer()
            if self.config.trace_out:
                self._installed_tracer.write_chrome_trace(
                    self.config.trace_out
                )
            self._installed_tracer = None
        self.logger.close()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = None
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive or self._draining:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            await self._respond(
                writer, 400, error_body("invalid_request", "headers too large")
            )
            return False
        started = time.perf_counter()
        started_ns = time.time_ns()
        try:
            method, path, headers = _parse_head(head)
        except ValueError as error:
            await self._respond(
                writer, 400, error_body("invalid_request", str(error))
            )
            return False
        path = path.split("?", 1)[0]
        endpoint = path.lstrip("/") or "root"
        obs = self._admit(endpoint, headers)

        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            self._in_flight.pop(obs["request_id"], None)
            await self._respond(
                writer,
                400,
                error_body("invalid_request", "bad Content-Length header"),
            )
            return False
        if length > self.config.max_body_bytes:
            await self._respond(
                writer,
                413,
                error_body(
                    "payload_too_large",
                    f"body of {length} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit",
                ),
                close=True,
            )
            self._finish(endpoint, 413, started, started_ns, 0, obs)
            return False
        if length:
            body = await reader.readexactly(length)

        status, payload, extra = await self._route(
            method, path, headers, body, obs
        )
        extra = dict(extra)
        extra.setdefault("X-Request-Id", obs["request_id"])
        ctx: Optional[TraceContext] = obs["ctx"]
        if ctx is not None:
            extra.setdefault("X-Trace-Id", ctx.trace_id)
        keep = (
            headers.get("connection", "").lower() != "close"
            and not self._draining
            and status != 503
        )
        if not keep:
            extra["Connection"] = "close"
        await self._respond(
            writer,
            status,
            payload,
            content_type=extra.pop("Content-Type", "application/json"),
            headers=extra,
            close=not keep,
        )
        batch_size = int(extra.get("X-Batch-Size", 0) or 0)
        self._finish(endpoint, status, started, started_ns, batch_size, obs)
        return keep

    def _admit(self, endpoint: str, headers: Dict[str, str]) -> Dict[str, Any]:
        """Mint/parse per-request observability identity.

        The trace context comes from the inbound ``traceparent`` header
        (the shard router minted it at admission) or is minted fresh
        when this process is the admission point and tracing or request
        logging is on. ``meta`` is the dict the batcher stamps timing
        and batch membership into.
        """
        request_id = headers.get("x-request-id") or mint_request_id()
        ctx = parse_traceparent(headers.get("traceparent"))
        inbound = ctx is not None
        tracing = current_tracer() is not None
        if ctx is None and (tracing or self.logger.active):
            ctx = mint_trace_context(sampled=tracing)
        obs: Dict[str, Any] = {
            "request_id": request_id,
            "ctx": ctx,
            "ctx_inbound": inbound,
            "endpoint": endpoint,
            "meta": {
                "request_id": request_id,
                "trace_id": ctx.trace_id if ctx is not None else "",
            },
        }
        self._in_flight[request_id] = {
            "request_id": request_id,
            "trace_id": ctx.trace_id if ctx is not None else "",
            "endpoint": endpoint,
            "started_unix_ns": time.time_ns(),
        }
        return obs

    def _finish(
        self,
        endpoint: str,
        status: int,
        started: float,
        started_ns: int,
        batch_size: int,
        obs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Per-request accounting: metrics + SLO always, a structured
        log record always (ring; file when configured), a span when
        tracing."""
        elapsed = time.perf_counter() - started
        instrument.record_request(endpoint, status, elapsed)
        self.slo.observe(endpoint, status, elapsed)

        request_id = trace_id = ""
        ctx: Optional[TraceContext] = None
        meta: Dict[str, Any] = {}
        if obs is not None:
            self._in_flight.pop(obs["request_id"], None)
            request_id = obs["request_id"]
            ctx = obs["ctx"]
            trace_id = ctx.trace_id if ctx is not None else ""
            meta = obs["meta"]
        breakdown = _latency_breakdown(meta, elapsed)

        record: Dict[str, Any] = {
            "ts_unix_ns": time.time_ns(),
            "request_id": request_id,
            "trace_id": trace_id,
            "endpoint": endpoint,
            "status": status,
            "latency_ms": round(elapsed * 1000.0, 3),
            "batch_size": batch_size,
            "backend": instrument.backend_label(),
            "outcome": _outcome(status),
        }
        if self.config.worker_id is not None:
            record["worker"] = self.config.worker_id
        if breakdown:
            record["breakdown"] = breakdown
        self.logger.log(record)

        tracer = current_tracer()
        if tracer is None or (ctx is not None and not ctx.sampled):
            return
        # Concurrent requests interleave awaits on one thread, so the
        # tracer's thread-local nesting stack cannot scope them; record
        # a parentless span directly and merge it via adopt().
        attributes: Dict[str, Any] = {
            "endpoint": endpoint,
            "status": status,
        }
        if request_id:
            attributes["request_id"] = request_id
        if ctx is not None:
            attributes["trace_id"] = ctx.trace_id
            # Inbound context: the router's span hex is our parent.
            # Self-minted: our own span hex, for downstream stitching.
            key = "parent_ctx" if obs and obs["ctx_inbound"] else "ctx_span"
            attributes[key] = ctx.span_id
        if batch_size:
            attributes["batch_size"] = batch_size
        if meta.get("batch_span_id"):
            attributes["batch_span_id"] = meta["batch_span_id"]
        if self.config.worker_id is not None:
            attributes["worker"] = self.config.worker_id
        attributes.update(breakdown)
        tracer.adopt(
            [
                SpanRecord(
                    name="serve.request",
                    span_id=tracer._next_id(),
                    parent_id=None,
                    start_unix_ns=started_ns,
                    duration_ns=int(elapsed * 1e9),
                    cpu_ns=0,
                    thread_id=threading.get_ident(),
                    process_id=os.getpid(),
                    attributes=attributes,
                    status="ok" if status < 500 else f"error: {status}",
                )
            ]
        )

    # -- routing ---------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        obs: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            health: Dict[str, Any] = {
                "status": "draining" if self._draining else "ok"
            }
            if self.config.worker_id is not None:
                health["worker"] = self.config.worker_id
                health["pid"] = os.getpid()
                health["warm_cache"] = getattr(
                    self.state, "warm_source", "local"
                )
            return 200, canonical_json(health), {}
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            # Burn-rate gauges refresh at scrape time: idle servers pay
            # nothing between scrapes.
            self.slo.publish()
            text = get_registry().to_prometheus_text()
            return (
                200,
                text.encode("utf-8"),
                {"Content-Type": "text/plain; version=0.0.4"},
            )
        if path == "/debug/obs":
            if method != "GET":
                return _method_not_allowed("GET")
            return 200, canonical_json(self.obs_snapshot()), {}
        if path == "/debug/trace":
            if method != "GET":
                return _method_not_allowed("GET")
            tracer = current_tracer()
            data: Dict[str, Any] = (
                tracer.to_jsonable()
                if tracer is not None
                else {"schema": TRACE_SCHEMA, "spans": []}
            )
            data["pid"] = os.getpid()
            data["worker"] = self.config.worker_id
            return 200, canonical_json(data), {}
        endpoint = path.lstrip("/")
        if endpoint in BATCHED_ENDPOINTS:
            if method != "POST":
                return _method_not_allowed("POST")
            return await self._handle_batched(endpoint, headers, body, obs)
        return (
            404,
            error_body("not_found", f"no route for {path!r}"),
            {},
        )

    def obs_snapshot(self) -> Dict[str, Any]:
        """The live ops view behind ``GET /debug/obs``."""
        now_ns = time.time_ns()
        tracer = current_tracer()
        in_flight = sorted(
            (
                {
                    **entry,
                    "age_ms": round(
                        (now_ns - entry["started_unix_ns"]) / 1e6, 3
                    ),
                }
                for entry in list(self._in_flight.values())
            ),
            key=lambda e: -e["age_ms"],
        )
        return {
            "role": (
                "worker" if self.config.worker_id is not None else "server"
            ),
            "worker": self.config.worker_id,
            "pid": os.getpid(),
            "draining": self._draining,
            "tracing": tracer is not None,
            "spans_recorded": (
                len(tracer.spans()) if tracer is not None else 0
            ),
            "profiling": self._profiler is not None,
            "in_flight": in_flight,
            "recent": self.logger.recent(),
            "slo": self.slo.status(),
        }

    async def _handle_batched(
        self,
        endpoint: str,
        headers: Dict[str, str],
        body: bytes,
        obs: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        try:
            parsed = json.loads(body)
        except ValueError as error:
            return (
                400,
                error_body("invalid_json", f"body is not valid JSON: {error}"),
                {},
            )
        try:
            key, payload = parse_request(self.state, endpoint, parsed)
        except BadRequestError as error:
            return 400, error_body(error.code, str(error)), {}

        deadline_ms = self.config.deadline_ms
        header_deadline = headers.get("x-deadline-ms")
        if header_deadline is not None:
            try:
                deadline_ms = float(header_deadline)
            except ValueError:
                return (
                    400,
                    error_body(
                        "invalid_request",
                        f"X-Deadline-Ms must be a number, "
                        f"got {header_deadline!r}",
                    ),
                    {},
                )

        assert self.batcher is not None
        try:
            future = self.batcher.enqueue(
                key, payload, meta=obs["meta"] if obs is not None else None
            )
        except QueueFullError as error:
            retry_after = max(1, int(self.config.batch_window_ms / 1000.0) + 1)
            return (
                429,
                error_body("queue_full", str(error)),
                {"Retry-After": str(retry_after)},
            )
        except ServerClosingError as error:
            return 503, error_body("draining", str(error)), {}

        try:
            if deadline_ms > 0:
                result, batch_size = await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline_ms / 1000.0
                )
            else:
                result, batch_size = await future
        except asyncio.TimeoutError:
            # Tell delivery this slot was abandoned; the rest of the
            # batch is untouched.
            future.cancel()
            instrument.record_rejection("deadline")
            return (
                504,
                error_body(
                    "deadline_exceeded",
                    f"request exceeded its {deadline_ms:g} ms deadline",
                ),
                {},
            )
        except BadRequestError as error:
            return 400, error_body(error.code, str(error)), {}
        except ReproError as error:
            return 400, error_body("invalid_request", str(error)), {}
        except Exception as error:  # noqa: BLE001 - the 500 boundary
            return (
                500,
                error_body("internal", f"{type(error).__name__}: {error}"),
                {},
            )
        return (
            200,
            canonical_json(result),
            {"X-Batch-Size": str(batch_size)},
        )

    # -- response writing ------------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
        ]
        for name, value in (headers or {}).items():
            if name not in ("Content-Type",):
                lines.append(f"{name}: {value}")
        if close and "Connection" not in (headers or {}):
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- blocking entry point (CLI) --------------------------------------------

    def run_forever(
        self,
        stop_event: Optional[threading.Event] = None,
        ready: Optional[Any] = None,
    ) -> None:
        """Serve until SIGINT/SIGTERM (or ``stop_event``), then drain.

        ``ready`` is called with ``(host, port)`` once the socket is
        bound — the CLI uses it to announce the ephemeral port.
        """

        async def _main() -> None:
            await self.start()
            if ready is not None:
                ready(self.host, self.port)
            loop = asyncio.get_running_loop()
            stopper: asyncio.Future = loop.create_future()

            def _request_stop() -> None:
                if not stopper.done():
                    stopper.set_result(None)

            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, _request_stop)
                except (NotImplementedError, RuntimeError):
                    pass
            waiter = None
            if stop_event is not None:
                waiter = loop.run_in_executor(None, stop_event.wait)
                waiter.add_done_callback(lambda _: _request_stop())
            try:
                await stopper
            finally:
                await self.stop()
                if waiter is not None and stop_event is not None:
                    stop_event.set()
                    await waiter

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass


def _outcome(status: int) -> str:
    """Log-record outcome classification for one response status."""
    if status < 400:
        return "ok"
    if status == 429:
        return "rejected"
    if status == 503:
        return "draining"
    if status == 504:
        return "deadline"
    if status < 500:
        return "client_error"
    return "server_error"


def _latency_breakdown(
    meta: Dict[str, Any], elapsed_s: float
) -> Dict[str, float]:
    """Queue / batch-wait / compute / serialize split from the batcher's
    ``perf_counter_ns`` stamps (empty for requests that never enqueued).

    ``serialize_ms`` is the remainder — parse, response write, and
    event-loop scheduling — clamped at zero against clock skew between
    the loop thread and the executor thread.
    """
    stamps = [
        meta.get(key)
        for key in ("t_enqueue", "t_flush", "t_exec_start", "t_exec_end")
    ]
    if any(stamp is None for stamp in stamps):
        return {}
    t_enqueue, t_flush, t_exec_start, t_exec_end = stamps
    queue_ms = max(0.0, (t_flush - t_enqueue) / 1e6)
    batch_wait_ms = max(0.0, (t_exec_start - t_flush) / 1e6)
    compute_ms = max(0.0, (t_exec_end - t_exec_start) / 1e6)
    total_ms = elapsed_s * 1000.0
    serialize_ms = max(
        0.0, total_ms - queue_ms - batch_wait_ms - compute_ms
    )
    return {
        "queue_ms": round(queue_ms, 3),
        "batch_wait_ms": round(batch_wait_ms, 3),
        "compute_ms": round(compute_ms, 3),
        "serialize_ms": round(serialize_ms, 3),
    }


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    """(method, path, lower-cased headers) from one request head."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise ValueError(f"undecodable request head: {error}") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise ValueError(f"malformed header line {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, headers


def _method_not_allowed(allow: str) -> Tuple[int, bytes, Dict[str, str]]:
    return (
        405,
        error_body("method_not_allowed", f"use {allow}"),
        {"Allow": allow},
    )


class ServerThread:
    """An :class:`EvalServer` on a dedicated thread + event loop.

    The in-process harness used by tests, benchmarks, and the smoke
    client: ``start()`` blocks until the ephemeral port is bound,
    ``stop()`` drains gracefully and joins the thread. Usable as a
    context manager.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        state: Optional[ServeState] = None,
    ) -> None:
        self.server = EvalServer(config=config, state=state)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError(
                "server failed to start"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30 s")
        return self

    def _run(self) -> None:
        async def _main() -> None:
            loop = asyncio.get_running_loop()
            self._loop = loop
            self._stop_future: asyncio.Future = loop.create_future()
            try:
                await self.server.start()
            except BaseException as error:
                self._startup_error = error
                self._ready.set()
                return
            self._ready.set()
            await self._stop_future
            await self.server.stop()

        asyncio.run(_main())
        self._stopped.set()

    def stop(self) -> None:
        """Drain and shut down; safe to call from any thread, once."""
        loop = self._loop
        if loop is None or self._stopped.is_set():
            return

        def _request() -> None:
            if not self._stop_future.done():
                self._stop_future.set_result(None)

        try:
            loop.call_soon_threadsafe(_request)
        except RuntimeError:  # loop already closed
            pass
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


__all__ = [
    "EvalServer",
    "ServerConfig",
    "ServerThread",
]
