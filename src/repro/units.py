"""Unit conventions and conversion helpers.

The model quotes quantities in the same units as the paper:

* time in **calendar weeks** (all TTM results, latencies),
* engineering effort in **engineer-weeks**,
* wafer production rates in **kilo-wafers per month** (Table 2) internally
  converted to wafers/week,
* areas in **mm^2** (die) and **cm^2** (defect densities, Eq. 6),
* transistor counts in absolute transistors, densities in
  **million transistors per mm^2** (MTr/mm^2),
* money in **USD**.

Keeping every conversion in one module prevents the classic
kilo-wafers-vs-wafers and mm^2-vs-cm^2 mistakes from leaking into the model
equations.
"""

from __future__ import annotations

import math

#: Average number of weeks per month (365.25 days / 7 days / 12 months).
WEEKS_PER_MONTH = 365.25 / 7.0 / 12.0

#: Working hours in one engineer-week (used only for reporting).
HOURS_PER_ENGINEER_WEEK = 40.0

#: Diameter of the standard wafer used throughout the evaluation (Sec. 5).
WAFER_DIAMETER_MM = 300.0

#: Usable area of a 300 mm wafer in mm^2.
WAFER_AREA_MM2 = math.pi * (WAFER_DIAMETER_MM / 2.0) ** 2

#: mm^2 in one cm^2 (defect densities are quoted per cm^2).
MM2_PER_CM2 = 100.0

#: Transistors represented by one "MTr" density unit.
TRANSISTORS_PER_MTR = 1.0e6


def kwpm_to_wafers_per_week(kilo_wafers_per_month: float) -> float:
    """Convert a Table-2 style rate (kWafers/month) to wafers/week."""
    return kilo_wafers_per_month * 1000.0 / WEEKS_PER_MONTH


def wafers_per_week_to_kwpm(wafers_per_week: float) -> float:
    """Convert wafers/week back to kilo-wafers/month (for reporting)."""
    return wafers_per_week * WEEKS_PER_MONTH / 1000.0


def mm2_to_cm2(area_mm2: float) -> float:
    """Convert mm^2 to cm^2 (Eq. 6 evaluates die area in cm^2)."""
    return area_mm2 / MM2_PER_CM2


def transistors_to_area_mm2(transistors: float, density_mtr_per_mm2: float) -> float:
    """Die area implied by a transistor count at a given density."""
    if density_mtr_per_mm2 <= 0.0:
        raise ValueError("transistor density must be positive")
    return transistors / (density_mtr_per_mm2 * TRANSISTORS_PER_MTR)


def weeks_to_engineer_hours(weeks: float, engineers: int) -> float:
    """Calendar weeks of an `engineers`-strong team, in engineer-hours."""
    return weeks * engineers * HOURS_PER_ENGINEER_WEEK


def format_weeks(weeks: float) -> str:
    """Human-readable week count, e.g. ``'24.8 weeks'``."""
    return f"{weeks:.1f} weeks"


def format_usd(amount: float) -> str:
    """Human-readable USD amount with automatic K/M/B scaling."""
    sign = "-" if amount < 0 else ""
    value = abs(amount)
    for threshold, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if value >= threshold:
            return f"{sign}${value / threshold:.2f}{suffix}"
    return f"{sign}${value:.2f}"
