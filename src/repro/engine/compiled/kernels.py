"""Single-pass fused loop kernels for the compiled backend.

Each kernel here replaces a chain of NumPy array expressions with one
pass over the sample axis, writing into caller-allocated output arrays
and allocating nothing itself (Numba ``nopython`` friendly: inputs are
plain ndarrays, ints, floats and bools only). The *per-element
operation order replicates the NumPy expressions exactly* — same
association, same evaluation order, the running maxima visiting
elements in index order exactly as ``np.max`` does — which is what
makes float64 results bit-for-bit identical to the NumPy backend (the
equivalence suite pins this). When editing a kernel, keep every
parenthesisation in sync with the corresponding expression in
:mod:`repro.engine.batch` / :mod:`repro.engine.portfolio`; a merely
algebraically-equal rewrite will break the bit-equality contract.

Anything numerically delicate stays on the NumPy side of the adapter
boundary on purpose: yield powers (libm ``pow`` may differ between
NumPy and Numba), ``np.sum`` reductions (pairwise, not sequential),
and the invariant helpers. The kernels only see pre-resolved dense
tensors.

Portfolio kernels take integer *sample-stride flags* (``0`` when that
input's sample axis has length 1, else ``1``) so broadcast inputs are
indexed without materializing the broadcast: element ``s`` of a
length-1 axis is read as ``a[..., s * flag]``.

With Numba installed, :func:`get_kernel` returns an ``njit`` dispatcher
(``fastmath=False`` — reassociation would break bit-equality), cached
in the shared invariant LRU under ``("compiled-kernel", name, tag)``.
Without Numba the same Python functions run as-is.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from ..invariants import cached_invariants
from . import _import_numba


def ttm_core(
    rates,
    backlog,
    wafers,
    quantities,
    testing,
    tapeout,
    fab_latency,
    pipelined,
    tapeout_scalar,
    tap_latency,
    assembly,
    design_weeks,
    ready_out,
    fabrication_out,
    packaging_out,
    total_out,
):
    """Fused batch TTM: per-node ready + fab/packaging/total weeks.

    Shapes: ``rates``/``backlog``/``wafers``/``ready_out`` are (P, S);
    ``quantities``/``testing`` and the remaining outputs are (S,);
    ``tapeout``/``fab_latency`` are (P,).
    """
    n_processes = rates.shape[0]
    n_samples = rates.shape[1]
    for s in range(n_samples):
        quantity = quantities[s]
        best = 0.0
        for i in range(n_processes):
            rate = rates[i, s]
            node_total = (
                backlog[i, s] / rate + (quantity * wafers[i, s]) / rate
            ) + fab_latency[i]
            ready = tapeout[i] + node_total
            ready_out[i, s] = ready
            if pipelined:
                value = ready
            else:
                value = node_total
            if i == 0 or value > best:
                best = value
        if pipelined:
            fabrication = best - tapeout_scalar
        else:
            fabrication = best
        packaging = (tap_latency + quantity * testing[s]) + quantity * assembly
        fabrication_out[s] = fabrication
        packaging_out[s] = packaging
        total_out[s] = (
            (design_weeks + tapeout_scalar) + fabrication
        ) + packaging


def cas_core(
    rates,
    backlog,
    wafers,
    quantities,
    testing,
    tapeout,
    fab_latency,
    max_rate,
    pipelined,
    tapeout_scalar,
    tap_latency,
    assembly,
    design_weeks,
    relative_step,
    sensitivity_out,
    total_out,
):
    """Fused batch CAS: central-difference TTM sensitivity per node.

    For every node ``p`` the perturbed totals re-walk all nodes with
    node ``p``'s rate replaced — the same full recompute the NumPy path
    performs, so the op order (and the bits) match.
    """
    n_processes = rates.shape[0]
    n_samples = rates.shape[1]
    for s in range(n_samples):
        quantity = quantities[s]
        packaging = (tap_latency + quantity * testing[s]) + quantity * assembly
        total = 0.0
        for p in range(n_processes):
            step = rates[p, s] * relative_step
            rate_up = max_rate[p] * ((rates[p, s] + 1.0 * step) / max_rate[p])
            rate_down = max_rate[p] * (
                (rates[p, s] + (-1.0) * step) / max_rate[p]
            )
            best_up = 0.0
            best_down = 0.0
            for i in range(n_processes):
                if i == p:
                    r_up = rate_up
                    r_down = rate_down
                else:
                    r_up = rates[i, s]
                    r_down = rates[i, s]
                node_up = (
                    backlog[i, s] / r_up + (quantity * wafers[i, s]) / r_up
                ) + fab_latency[i]
                node_down = (
                    backlog[i, s] / r_down + (quantity * wafers[i, s]) / r_down
                ) + fab_latency[i]
                if pipelined:
                    value_up = tapeout[i] + node_up
                    value_down = tapeout[i] + node_down
                else:
                    value_up = node_up
                    value_down = node_down
                if i == 0 or value_up > best_up:
                    best_up = value_up
                if i == 0 or value_down > best_down:
                    best_down = value_down
            if pipelined:
                fab_up = best_up - tapeout_scalar
                fab_down = best_down - tapeout_scalar
            else:
                fab_up = best_up
                fab_down = best_down
            total_up = (
                (design_weeks + tapeout_scalar) + fab_up
            ) + packaging
            total_down = (
                (design_weeks + tapeout_scalar) + fab_down
            ) + packaging
            slope = (total_up - total_down) / (2.0 * step)
            sensitivity = abs(slope)
            sensitivity_out[p, s] = sensitivity
            if p == 0:
                total = sensitivity
            else:
                total = total + sensitivity
        total_out[s] = total


def cost_core(
    quantities,
    wafers,
    node_cost,
    yields,
    counts,
    ntts,
    areas,
    package_base,
    handling,
    area_usd,
    test_usd,
    wafer_out,
    testing_out,
    packaging_out,
):
    """Fused batch cost: wafer, testing and packaging USD per sample.

    ``wafers``/``yields`` are (P, S)/(K, S) dense tensors; per-profile
    scalars (``counts``/``ntts``/``areas``) are (K,).
    """
    n_processes = wafers.shape[0]
    n_profiles = yields.shape[0]
    n_samples = quantities.shape[0]
    for s in range(n_samples):
        quantity = quantities[s]
        wafer_usd = 0.0
        for i in range(n_processes):
            wafer_usd = wafer_usd + (quantity * wafers[i, s]) * node_cost[i]
        testing_usd = 0.0
        packaging_usd = quantity * package_base
        for k in range(n_profiles):
            dies_tested = (quantity * counts[k]) / yields[k, s]
            testing_usd = testing_usd + (dies_tested * ntts[k]) * test_usd
            packaging_usd = packaging_usd + (quantity * counts[k]) * (
                handling + areas[k] * area_usd
            )
        wafer_out[s] = wafer_usd
        testing_out[s] = testing_usd
        packaging_out[s] = packaging_usd


def portfolio_ttm_core(
    rates,
    stride_rates,
    backlog,
    stride_backlog,
    wafers,
    stride_wafers,
    testing,
    stride_testing,
    quantities,
    stride_qd,
    stride_qs,
    node_mask,
    tapeout,
    fab_latency,
    tapeout_scalars,
    assembly,
    design_weeks,
    pipelined,
    tap_latency,
    fabrication_out,
    packaging_out,
    total_out,
):
    """Fused portfolio TTM over the (designs, nodes, samples) tensor.

    Masked (padded) node slots are skipped; the running max visits the
    unmasked nodes in index order, matching the NumPy ``-inf`` mask.
    ``quantities`` is normalized to 2-D (designs?, samples?) with its
    own stride flags.
    """
    n_designs = node_mask.shape[0]
    n_nodes = node_mask.shape[1]
    n_samples = total_out.shape[1]
    for d in range(n_designs):
        tapeout_scalar = tapeout_scalars[d]
        for s in range(n_samples):
            quantity = quantities[d * stride_qd, s * stride_qs]
            best = 0.0
            first = True
            for n in range(n_nodes):
                if not node_mask[d, n]:
                    continue
                rate = rates[d, n, s * stride_rates]
                node_total = (
                    backlog[d, n, s * stride_backlog] / rate
                    + (quantity * wafers[d, n, s * stride_wafers]) / rate
                ) + fab_latency[d, n]
                if pipelined:
                    value = tapeout[d, n] + node_total
                else:
                    value = node_total
                if first or value > best:
                    best = value
                    first = False
            if pipelined:
                fabrication = best - tapeout_scalar
            else:
                fabrication = best
            packaging = (
                tap_latency + quantity * testing[d, s * stride_testing]
            ) + quantity * assembly[d]
            fabrication_out[d, s] = fabrication
            packaging_out[d, s] = packaging
            total_out[d, s] = (
                (design_weeks[d] + tapeout_scalar) + fabrication
            ) + packaging


def portfolio_cas_core(
    rates,
    stride_rates,
    backlog,
    stride_backlog,
    wafers,
    stride_wafers,
    testing,
    stride_testing,
    quantities,
    stride_qd,
    stride_qs,
    node_mask,
    tapeout,
    fab_latency,
    max_rate,
    tapeout_scalars,
    assembly,
    design_weeks,
    pipelined,
    tap_latency,
    relative_step,
    sensitivity_out,
    total_out,
):
    """Fused portfolio CAS; padded node slots contribute exactly +0.0."""
    n_designs = node_mask.shape[0]
    n_nodes = node_mask.shape[1]
    n_samples = total_out.shape[1]
    for d in range(n_designs):
        tapeout_scalar = tapeout_scalars[d]
        for s in range(n_samples):
            quantity = quantities[d * stride_qd, s * stride_qs]
            packaging = (
                tap_latency + quantity * testing[d, s * stride_testing]
            ) + quantity * assembly[d]
            total = 0.0
            for p in range(n_nodes):
                if not node_mask[d, p]:
                    sensitivity = 0.0
                else:
                    base = rates[d, p, s * stride_rates]
                    step = base * relative_step
                    rate_up = max_rate[d, p] * (
                        (base + 1.0 * step) / max_rate[d, p]
                    )
                    rate_down = max_rate[d, p] * (
                        (base + (-1.0) * step) / max_rate[d, p]
                    )
                    best_up = 0.0
                    best_down = 0.0
                    first = True
                    for n in range(n_nodes):
                        if not node_mask[d, n]:
                            continue
                        if n == p:
                            r_up = rate_up
                            r_down = rate_down
                        else:
                            r_up = rates[d, n, s * stride_rates]
                            r_down = r_up
                        wafer_load = (
                            quantity * wafers[d, n, s * stride_wafers]
                        )
                        queue = backlog[d, n, s * stride_backlog]
                        node_up = (
                            queue / r_up + wafer_load / r_up
                        ) + fab_latency[d, n]
                        node_down = (
                            queue / r_down + wafer_load / r_down
                        ) + fab_latency[d, n]
                        if pipelined:
                            value_up = tapeout[d, n] + node_up
                            value_down = tapeout[d, n] + node_down
                        else:
                            value_up = node_up
                            value_down = node_down
                        if first or value_up > best_up:
                            best_up = value_up
                        if first or value_down > best_down:
                            best_down = value_down
                        first = False
                    if pipelined:
                        fab_up = best_up - tapeout_scalar
                        fab_down = best_down - tapeout_scalar
                    else:
                        fab_up = best_up
                        fab_down = best_down
                    total_up = (
                        (design_weeks[d] + tapeout_scalar) + fab_up
                    ) + packaging
                    total_down = (
                        (design_weeks[d] + tapeout_scalar) + fab_down
                    ) + packaging
                    slope = (total_up - total_down) / (2.0 * step)
                    sensitivity = abs(slope)
                sensitivity_out[d, p, s] = sensitivity
                if p == 0:
                    total = sensitivity
                else:
                    total = total + sensitivity
            total_out[d, s] = total


def portfolio_cost_accum_core(
    quantities,
    stride_qd,
    stride_qs,
    yields,
    stride_yields,
    profile_design,
    counts,
    ntts,
    areas,
    package_base,
    handling,
    area_usd,
    test_usd,
    testing_out,
    packaging_out,
):
    """Fused portfolio testing/packaging accumulation over die profiles.

    Profiles are visited in ascending index order, replicating the
    ``np.add.at`` accumulation order of the NumPy path.
    """
    n_designs = testing_out.shape[0]
    n_samples = testing_out.shape[1]
    n_profiles = counts.shape[0]
    for d in range(n_designs):
        for s in range(n_samples):
            testing_out[d, s] = 0.0
            packaging_out[d, s] = (
                quantities[d * stride_qd, s * stride_qs] * package_base
            )
    for k in range(n_profiles):
        design = profile_design[k]
        for s in range(n_samples):
            quantity = quantities[design * stride_qd, s * stride_qs]
            dies_tested = (quantity * counts[k]) / yields[k, s * stride_yields]
            testing_out[design, s] = (
                testing_out[design, s] + (dies_tested * ntts[k]) * test_usd
            )
            packaging_out[design, s] = packaging_out[design, s] + (
                quantity * counts[k]
            ) * (handling + areas[k] * area_usd)


def scenario_eval_core(
    demand_mult,
    cap_cols,
    cap_idx,
    queue_mult,
    queue_add,
    queue_identity,
    wafer_mult,
    group_idx,
    quantities,
    stride_qd,
    stride_qs,
    cap_base,
    stride_cap,
    has_cap_base,
    cond_frac,
    queue_base,
    stride_queue,
    has_queue_base,
    quotes,
    rate_base,
    stride_rate,
    has_rate_base,
    wafers_groups,
    stride_wafers,
    testing_groups,
    stride_testing,
    node_mask,
    tapeout,
    fab_latency,
    max_rate,
    tapeout_scalars,
    assembly,
    design_weeks,
    pipelined,
    tap_latency,
    relative_step,
    with_cas,
    fabrication_out,
    total_out,
    cas_total_out,
):
    """Fused (scenarios, designs, samples) TTM + CAS cube in one pass.

    Scenario transforms arrive as SoA multiplier vectors (``(K,)``;
    per-node capacity multipliers as ``cap_cols``/``cap_idx`` columns)
    and are applied to the *base* sample arrays inline, with the same
    per-element op order the looped oracle performs on materialized
    transformed arrays. ``wafers_groups``/``testing_groups`` hold one
    D0-derived tensor per unique defect multiplier (``group_idx`` maps
    scenarios to groups) — the numerically delicate yield powers stay
    NumPy-side, shared across scenarios.

    CAS uses leave-one-out node maxima: the node reduction is a max
    (exact, so reassociation is bitwise safe), so each perturbation
    recomputes only node ``p``'s candidate and recombines it with the
    precomputed max over the other nodes — ``O(1)`` per perturbation
    instead of the oracle's full node re-walk, with identical bits.
    ``cas_total_out`` receives the summed sensitivity (the caller
    inverts after its positivity check).
    """
    n_scenarios = total_out.shape[0]
    n_designs = total_out.shape[1]
    n_samples = total_out.shape[2]
    n_nodes = node_mask.shape[1]
    rates_row = np.empty(n_nodes)
    backlog_row = np.empty(n_nodes)
    load_row = np.empty(n_nodes)
    value_row = np.empty(n_nodes)
    loo_row = np.empty(n_nodes)
    for k in range(n_scenarios):
        dm = demand_mult[k]
        qm = queue_mult[k]
        qa = queue_add[k]
        q_identity = queue_identity[k]
        wm = wafer_mult[k]
        g = group_idx[k]
        for d in range(n_designs):
            tapeout_scalar = tapeout_scalars[d]
            for s in range(n_samples):
                quantity = quantities[d * stride_qd, s * stride_qs]
                if dm != 1.0:
                    quantity = quantity * dm
                best = 0.0
                first = True
                for p in range(n_nodes):
                    if not node_mask[d, p]:
                        value_row[p] = -np.inf
                        continue
                    if has_rate_base:
                        rate_scale = rate_base[s * stride_rate]
                        if wm != 1.0:
                            rate_scale = rate_scale * wm
                        scaled_max = max_rate[d, p] * rate_scale
                    elif wm != 1.0:
                        scaled_max = max_rate[d, p] * wm
                    else:
                        scaled_max = max_rate[d, p] * 1.0
                    mult = cap_cols[k, cap_idx[d, p]]
                    if has_cap_base:
                        fraction = cap_base[s * stride_cap]
                        if mult != 1.0:
                            fraction = fraction * mult
                    else:
                        fraction = cond_frac[d, p]
                        if mult != 1.0:
                            fraction = fraction * mult
                    rate = scaled_max * fraction
                    if has_queue_base:
                        queue_weeks = queue_base[s * stride_queue]
                        if not q_identity:
                            queue_weeks = queue_weeks * qm + qa
                        queue_load = queue_weeks * scaled_max
                    else:
                        queue_load = quotes[d, p] * scaled_max
                    wafer_load = (
                        quantity
                        * wafers_groups[g, d, p, s * stride_wafers]
                    )
                    node_total = (
                        queue_load / rate + wafer_load / rate
                    ) + fab_latency[d, p]
                    if pipelined:
                        value = tapeout[d, p] + node_total
                    else:
                        value = node_total
                    rates_row[p] = rate
                    backlog_row[p] = queue_load
                    load_row[p] = wafer_load
                    value_row[p] = value
                    if first or value > best:
                        best = value
                        first = False
                if pipelined:
                    fabrication = best - tapeout_scalar
                else:
                    fabrication = best
                testing = testing_groups[g, d, s * stride_testing]
                packaging = (
                    tap_latency + quantity * testing
                ) + quantity * assembly[d]
                fabrication_out[k, d, s] = fabrication
                total_out[k, d, s] = (
                    (design_weeks[d] + tapeout_scalar) + fabrication
                ) + packaging
                if not with_cas:
                    continue
                running = -np.inf
                for p in range(n_nodes):
                    loo_row[p] = running
                    if value_row[p] > running:
                        running = value_row[p]
                running = -np.inf
                for p in range(n_nodes - 1, -1, -1):
                    if running > loo_row[p]:
                        loo_row[p] = running
                    if value_row[p] > running:
                        running = value_row[p]
                total = 0.0
                for p in range(n_nodes):
                    if not node_mask[d, p]:
                        sensitivity = 0.0
                    else:
                        base = rates_row[p]
                        step = base * relative_step
                        rate_up = max_rate[d, p] * (
                            (base + 1.0 * step) / max_rate[d, p]
                        )
                        rate_down = max_rate[d, p] * (
                            (base + (-1.0) * step) / max_rate[d, p]
                        )
                        queue_load = backlog_row[p]
                        wafer_load = load_row[p]
                        node_up = (
                            queue_load / rate_up + wafer_load / rate_up
                        ) + fab_latency[d, p]
                        node_down = (
                            queue_load / rate_down + wafer_load / rate_down
                        ) + fab_latency[d, p]
                        if pipelined:
                            value_up = tapeout[d, p] + node_up
                            value_down = tapeout[d, p] + node_down
                        else:
                            value_up = node_up
                            value_down = node_down
                        others = loo_row[p]
                        best_up = others
                        if value_up > best_up:
                            best_up = value_up
                        best_down = others
                        if value_down > best_down:
                            best_down = value_down
                        if pipelined:
                            fab_up = best_up - tapeout_scalar
                            fab_down = best_down - tapeout_scalar
                        else:
                            fab_up = best_up
                            fab_down = best_down
                        total_up = (
                            (design_weeks[d] + tapeout_scalar) + fab_up
                        ) + packaging
                        total_down = (
                            (design_weeks[d] + tapeout_scalar) + fab_down
                        ) + packaging
                        slope = (total_up - total_down) / (2.0 * step)
                        sensitivity = abs(slope)
                    if p == 0:
                        total = sensitivity
                    else:
                        total = total + sensitivity
                cas_total_out[k, d, s] = total


#: Kernel name -> pure-Python source function.
KERNEL_SOURCES: Dict[str, Callable[..., None]] = {
    "ttm": ttm_core,
    "cas": cas_core,
    "cost": cost_core,
    "portfolio_ttm": portfolio_ttm_core,
    "portfolio_cas": portfolio_cas_core,
    "portfolio_cost_accum": portfolio_cost_accum_core,
    "scenario_eval": scenario_eval_core,
}


def jit_compile(function: Callable[..., None]) -> Callable[..., None]:
    """``numba.njit`` the kernel when Numba is present, else pass through.

    ``fastmath`` stays off: reassociation/FMA contraction would break
    the bit-for-bit float64 contract with the NumPy backend.
    """
    numba = _import_numba()
    if numba is None:
        return function
    return numba.njit(cache=False, fastmath=False, nogil=True)(function)


def _numba_tag() -> str:
    numba = _import_numba()
    return getattr(numba, "__version__", "python") if numba else "python"


def get_kernel(name: str) -> Callable[..., None]:
    """The (possibly jitted) kernel dispatcher for ``name``, LRU-cached."""
    source = KERNEL_SOURCES[name]
    return cached_invariants(
        ("compiled-kernel", name, _numba_tag()),
        lambda: jit_compile(source),
    )


def warm_up_kernels() -> None:
    """Run every kernel once on tiny inputs to force jit compilation."""
    f = np.ones(1)
    f2 = np.ones((1, 1))
    f3 = np.ones((1, 1, 1))
    mask = np.ones((1, 1), dtype=bool)
    idx = np.zeros(1, dtype=np.intp)
    for dtype in (np.float64,):
        a = f.astype(dtype)
        a2 = f2.astype(dtype)
        a3 = f3.astype(dtype)
        out1 = np.empty(1, dtype=dtype)
        out2 = np.empty((1, 1), dtype=dtype)
        out3 = np.empty((1, 1, 1), dtype=dtype)
        get_kernel("ttm")(
            a2, a2, a2, a, a, a, a, True, 1.0, 1.0, 1.0, 1.0,
            out2.copy(), out1.copy(), out1.copy(), out1.copy(),
        )
        get_kernel("cas")(
            a2, a2, a2, a, a, a, a, a, True, 1.0, 1.0, 1.0, 1.0, 1e-3,
            out2.copy(), out1.copy(),
        )
        get_kernel("cost")(
            a, a2, a, a2, a, a, a, 1.0, 1.0, 1.0, 1.0,
            out1.copy(), out1.copy(), out1.copy(),
        )
        get_kernel("portfolio_ttm")(
            a3, 1, a3, 1, a3, 1, a2, 1, a2, 1, 1, mask, a2, a2, a, a, a,
            True, 1.0, out2.copy(), out2.copy(), out2.copy(),
        )
        get_kernel("portfolio_cas")(
            a3, 1, a3, 1, a3, 1, a2, 1, a2, 1, 1, mask, a2, a2, a2, a, a,
            a, True, 1.0, 1e-3, out3.copy(), out2.copy(),
        )
        get_kernel("portfolio_cost_accum")(
            a2, 1, 1, a2, 1, idx, a, a, a, 1.0, 1.0, 1.0, 1.0,
            out2.copy(), out2.copy(),
        )
        a4 = np.ones((1, 1, 1, 1), dtype=dtype)
        get_kernel("scenario_eval")(
            a, a2, idx.reshape(1, 1), a, a.copy() * 0.0,
            np.ones(1, dtype=bool), a, idx, a2, 1, 1,
            a, 1, True, a2, a, 1, True, a2, a, 1, True,
            a4, 1, a3, 1, mask, a2, a2, a2, a, a, a,
            True, 1.0, 1e-3, True,
            out3.copy(), out3.copy(), out3.copy(),
        )


__all__ = [
    "KERNEL_SOURCES",
    "cas_core",
    "cost_core",
    "get_kernel",
    "jit_compile",
    "portfolio_cas_core",
    "portfolio_cost_accum_core",
    "portfolio_ttm_core",
    "scenario_eval_core",
    "ttm_core",
    "warm_up_kernels",
]
