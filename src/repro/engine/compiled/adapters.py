"""Adapters between the engine's public kernels and the fused loops.

Each adapter takes the same pre-resolved inputs the NumPy expressions
consume (invariants, validated quantities, ``_SupplyArrays`` /
``_PortfolioSupply`` tensors), materializes them into dense C-order
arrays, invokes the fused kernel from :mod:`.kernels`, and reassembles
the public result dataclass. The split of work is deliberate:

* everything *numerically delicate* stays NumPy-side — yield powers,
  ``np.sum`` reductions (pairwise), the invariant helpers — so the
  float64 results are bit-for-bit identical to the NumPy backend;
* everything *bandwidth-bound* (the per-sample fused chain) runs in the
  kernel.

Batch adapters flatten the full broadcast shape to one sample axis and
reshape outputs back. ``per_node_ready_weeks`` is returned at the full
broadcast shape (the NumPy path keeps each node's pre-``testing``
broadcast shape; values are identical under broadcasting). Portfolio
adapters keep the native ``(designs, nodes, samples)`` tensors and use
stride flags instead of materializing broadcasts.

float32 mode casts the TTM/cost kernel inputs (and therefore outputs)
to float32. CAS adapters always run float64 internally: the central
difference subtracts two nearly-equal totals, and at the default
relative step (1e-3) a float32 difference would be dominated by
rounding, not signal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..batch import (
    BatchCASResult,
    BatchCostResult,
    BatchTTMResult,
    _SupplyArrays,
)
from ..invariants import DesignInvariants
from ..portfolio import (
    PortfolioCASResult,
    PortfolioCostResult,
    PortfolioInvariants,
    PortfolioTTMResult,
    _PortfolioSupply,
    _portfolio_quantities,
)
from ...cost.model import CostModel
from ...cost.nre import design_nre
from ...design.chip import ChipDesign
from ...errors import InvalidParameterError
from ...ttm.model import TTMModel
from . import get_backend
from .kernels import get_kernel


def _active_dtype() -> np.dtype:
    return np.dtype(
        np.float32 if get_backend().dtype == "float32" else np.float64
    )


def _flat_size(shape: tuple) -> int:
    size = 1
    for extent in shape:
        size *= int(extent)
    return size


def _dense_rows(values, shape: tuple, dtype: np.dtype) -> np.ndarray:
    """Stack broadcastable per-node values into a dense (P, S) matrix."""
    values = tuple(values)
    size = _flat_size(shape)
    out = np.empty((len(values), size), dtype=dtype)
    for i, value in enumerate(values):
        out[i, :] = np.broadcast_to(
            np.asarray(value, dtype=float), shape
        ).reshape(-1)
    return out


def _dense_vector(value, shape: tuple, dtype: np.dtype) -> np.ndarray:
    """Broadcast one value to the full shape, flattened C-order."""
    size = _flat_size(shape)
    out = np.empty(size, dtype=dtype)
    out[:] = np.broadcast_to(np.asarray(value, dtype=float), shape).reshape(-1)
    return out


def _batch_shape(quantities: np.ndarray, supply: _SupplyArrays) -> tuple:
    """The full broadcast shape every batch result field lives on."""
    shapes = [quantities.shape]
    shapes.extend(np.shape(value) for value in supply.rates)
    shapes.extend(np.shape(value) for value in supply.backlog)
    shapes.extend(np.shape(value) for value in supply.wafers_per_chip)
    shapes.append(np.shape(supply.testing_weeks_per_chip))
    return np.broadcast_shapes(*shapes)


def _batch_tensors(
    quantities: np.ndarray,
    supply: _SupplyArrays,
    invariants: DesignInvariants,
    dtype: np.dtype,
):
    shape = _batch_shape(quantities, supply)
    rates = _dense_rows(supply.rates, shape, dtype)
    backlog = _dense_rows(supply.backlog, shape, dtype)
    wafers = _dense_rows(supply.wafers_per_chip, shape, dtype)
    testing = _dense_vector(supply.testing_weeks_per_chip, shape, dtype)
    flat_quantities = _dense_vector(quantities, shape, dtype)
    tapeout = np.ascontiguousarray(invariants.tapeout_weeks, dtype=dtype)
    fab_latency = np.ascontiguousarray(
        invariants.fab_latency_weeks, dtype=dtype
    )
    return (
        shape,
        rates,
        backlog,
        wafers,
        testing,
        flat_quantities,
        tapeout,
        fab_latency,
    )


def ttm_from_supply(
    model: TTMModel,
    design: ChipDesign,
    invariants: DesignInvariants,
    quantities: np.ndarray,
    supply: _SupplyArrays,
) -> BatchTTMResult:
    """Compiled-backend tail of :func:`repro.engine.batch.batch_ttm`."""
    dtype = _active_dtype()
    (
        shape,
        rates,
        backlog,
        wafers,
        testing,
        flat_quantities,
        tapeout,
        fab_latency,
    ) = _batch_tensors(quantities, supply, invariants, dtype)
    pipelined = model.schedule == "pipelined"
    if pipelined:
        tapeout_scalar = float(np.max(invariants.tapeout_weeks))
    else:
        tapeout_scalar = float(invariants.sequential_tapeout_weeks)

    n_processes = len(invariants.processes)
    size = flat_quantities.shape[0]
    ready = np.empty((n_processes, size), dtype=dtype)
    fabrication = np.empty(size, dtype=dtype)
    packaging = np.empty(size, dtype=dtype)
    total = np.empty(size, dtype=dtype)
    get_kernel("ttm")(
        rates,
        backlog,
        wafers,
        flat_quantities,
        testing,
        tapeout,
        fab_latency,
        pipelined,
        tapeout_scalar,
        float(model.tap_latency_weeks),
        float(invariants.assembly_weeks_per_chip),
        float(invariants.design_weeks),
        ready,
        fabrication,
        packaging,
        total,
    )
    total_wafers = quantities * sum(supply.wafers_per_chip)
    return BatchTTMResult(
        design=design.name,
        schedule=model.schedule,
        design_weeks=invariants.design_weeks,
        tapeout_weeks=np.broadcast_to(
            np.asarray(tapeout_scalar, dtype=dtype), shape
        ),
        fabrication_weeks=fabrication.reshape(shape),
        packaging_weeks=packaging.reshape(shape),
        total_weeks=total.reshape(shape),
        total_wafers=np.broadcast_to(
            np.asarray(total_wafers, dtype=dtype), shape
        ),
        per_node_ready_weeks={
            process: ready[i].reshape(shape)
            for i, process in enumerate(invariants.processes)
        },
    )


def cas_from_supply(
    model: TTMModel,
    design: ChipDesign,
    invariants: DesignInvariants,
    quantities: np.ndarray,
    supply: _SupplyArrays,
    relative_step: float,
) -> BatchCASResult:
    """Compiled-backend tail of :func:`repro.engine.batch.batch_cas`.

    Always runs float64 internally (see the module docstring).
    """
    dtype = np.dtype(np.float64)
    (
        shape,
        rates,
        backlog,
        wafers,
        testing,
        flat_quantities,
        tapeout,
        fab_latency,
    ) = _batch_tensors(quantities, supply, invariants, dtype)
    pipelined = model.schedule == "pipelined"
    if pipelined:
        tapeout_scalar = float(np.max(invariants.tapeout_weeks))
    else:
        tapeout_scalar = float(invariants.sequential_tapeout_weeks)

    n_processes = len(invariants.processes)
    size = flat_quantities.shape[0]
    sensitivity = np.empty((n_processes, size), dtype=dtype)
    total = np.empty(size, dtype=dtype)
    get_kernel("cas")(
        rates,
        backlog,
        wafers,
        flat_quantities,
        testing,
        tapeout,
        fab_latency,
        np.ascontiguousarray(invariants.max_rate, dtype=dtype),
        pipelined,
        tapeout_scalar,
        float(model.tap_latency_weeks),
        float(invariants.assembly_weeks_per_chip),
        float(invariants.design_weeks),
        float(relative_step),
        sensitivity,
        total,
    )
    if not np.all(total > 0.0):
        raise InvalidParameterError(
            f"design {design.name!r} has zero TTM sensitivity on all nodes; "
            "CAS is unbounded (check the production volume is non-trivial)"
        )
    return BatchCASResult(
        design=design.name,
        cas=(1.0 / total).reshape(shape),
        sensitivity={
            process: sensitivity[i].reshape(shape)
            for i, process in enumerate(invariants.processes)
        },
    )


def cost_from_parts(
    cost_model: CostModel,
    design: ChipDesign,
    invariants: DesignInvariants,
    quantities: np.ndarray,
    scale: np.ndarray,
) -> BatchCostResult:
    """Compiled-backend tail of :func:`repro.engine.batch.batch_cost`."""
    dtype = _active_dtype()
    wafers_per_chip = invariants.wafers_per_chip_at(scale)
    nre = design_nre(
        design, cost_model.technology, cost_model.engineer_week_cost_usd
    )
    shape = np.broadcast_shapes(quantities.shape, scale.shape)
    size = _flat_size(shape)
    flat_quantities = _dense_vector(quantities, shape, dtype)
    wafers = _dense_rows(wafers_per_chip, shape, dtype)
    node_cost = np.asarray(
        [
            cost_model.technology[process].wafer_cost_usd
            for process in invariants.processes
        ],
        dtype=dtype,
    )
    profiles = invariants.die_profiles
    yields = _dense_rows(
        (profile.yield_at(scale, invariants.alpha) for profile in profiles),
        shape,
        dtype,
    )
    counts = np.asarray([profile.count for profile in profiles], dtype=dtype)
    ntts = np.asarray([profile.ntt for profile in profiles], dtype=dtype)
    areas = np.asarray(
        [profile.area_mm2 for profile in profiles], dtype=dtype
    )

    wafer_usd = np.empty(size, dtype=dtype)
    testing_usd = np.empty(size, dtype=dtype)
    packaging_usd = np.empty(size, dtype=dtype)
    get_kernel("cost")(
        flat_quantities,
        wafers,
        node_cost,
        yields,
        counts,
        ntts,
        areas,
        float(cost_model.package_base_usd),
        float(cost_model.die_handling_usd),
        float(cost_model.package_area_usd_per_mm2),
        float(cost_model.test_usd_per_transistor),
        wafer_usd,
        testing_usd,
        packaging_usd,
    )
    return BatchCostResult(
        design=design.name,
        engineering_usd=nre.engineering_usd,
        fixed_usd=nre.fixed_usd,
        mask_usd=nre.mask_usd,
        wafer_usd=wafer_usd.reshape(shape),
        testing_usd=testing_usd.reshape(shape),
        packaging_usd=packaging_usd.reshape(shape),
        n_chips=np.broadcast_to(quantities, shape),
    )


def _normalized_quantities(quantities_design: np.ndarray):
    """2-D (designs?, samples?) view of ``n_chips`` plus stride flags."""
    quantities = np.ascontiguousarray(quantities_design, dtype=np.float64)
    if quantities.ndim == 0:
        quantities = quantities.reshape(1, 1)
    elif quantities.ndim == 1:
        quantities = quantities.reshape(1, -1)
    stride_design = 0 if quantities.shape[0] == 1 else 1
    stride_sample = 0 if quantities.shape[1] == 1 else 1
    return quantities, stride_design, stride_sample


def _sample_stride(extent: int) -> int:
    return 0 if extent == 1 else 1


def _portfolio_tensors(
    quantities_design: np.ndarray,
    supply: _PortfolioSupply,
    dtype: np.dtype,
):
    rates = np.ascontiguousarray(supply.rates, dtype=dtype)
    backlog = np.ascontiguousarray(supply.backlog, dtype=dtype)
    wafers = np.ascontiguousarray(supply.wafers_per_chip, dtype=dtype)
    testing = np.ascontiguousarray(
        supply.testing_weeks_per_chip, dtype=dtype
    )
    quantities, stride_qd, stride_qs = _normalized_quantities(
        quantities_design
    )
    if dtype != np.float64:
        quantities = quantities.astype(dtype)
    n_samples = np.broadcast_shapes(
        (rates.shape[2],),
        (wafers.shape[2],),
        (testing.shape[1],),
        (quantities.shape[1],),
    )[0]
    return (
        rates,
        backlog,
        wafers,
        testing,
        quantities,
        stride_qd,
        stride_qs,
        n_samples,
    )


def portfolio_ttm_from_supply(
    model: TTMModel,
    invariants: PortfolioInvariants,
    quantities_design: np.ndarray,
    supply: _PortfolioSupply,
) -> PortfolioTTMResult:
    """Compiled-backend tail of :func:`repro.engine.portfolio.portfolio_ttm`."""
    dtype = _active_dtype()
    (
        rates,
        backlog,
        wafers,
        testing,
        quantities,
        stride_qd,
        stride_qs,
        n_samples,
    ) = _portfolio_tensors(quantities_design, supply, dtype)
    pipelined = model.schedule == "pipelined"
    tapeout_scalars = np.ascontiguousarray(
        invariants.max_tapeout_weeks
        if pipelined
        else invariants.sequential_tapeout_weeks,
        dtype=dtype,
    )
    n_designs = invariants.n_designs
    fabrication = np.empty((n_designs, n_samples), dtype=dtype)
    packaging = np.empty((n_designs, n_samples), dtype=dtype)
    total = np.empty((n_designs, n_samples), dtype=dtype)
    get_kernel("portfolio_ttm")(
        rates,
        _sample_stride(rates.shape[2]),
        backlog,
        _sample_stride(backlog.shape[2]),
        wafers,
        _sample_stride(wafers.shape[2]),
        testing,
        _sample_stride(testing.shape[1]),
        quantities,
        stride_qd,
        stride_qs,
        invariants.node_mask,
        np.ascontiguousarray(invariants.tapeout_weeks, dtype=dtype),
        np.ascontiguousarray(invariants.fab_latency_weeks, dtype=dtype),
        tapeout_scalars,
        np.ascontiguousarray(invariants.assembly_weeks_per_chip, dtype=dtype),
        np.ascontiguousarray(invariants.design_weeks, dtype=dtype),
        pipelined,
        float(model.tap_latency_weeks),
        fabrication,
        packaging,
        total,
    )
    total_wafers = quantities_design * np.sum(
        supply.wafers_per_chip, axis=1
    )
    shape = np.broadcast_shapes(total.shape, np.shape(total_wafers))
    return PortfolioTTMResult(
        designs=invariants.designs,
        schedule=model.schedule,
        design_weeks=invariants.design_weeks,
        tapeout_weeks=np.broadcast_to(tapeout_scalars[:, None], shape),
        fabrication_weeks=np.broadcast_to(fabrication, shape),
        packaging_weeks=np.broadcast_to(packaging, shape),
        total_weeks=np.broadcast_to(total, shape),
        total_wafers=np.broadcast_to(
            np.asarray(total_wafers, dtype=dtype), shape
        ),
    )


def portfolio_cas_from_supply(
    model: TTMModel,
    invariants: PortfolioInvariants,
    quantities_design: np.ndarray,
    supply: _PortfolioSupply,
    relative_step: float,
) -> PortfolioCASResult:
    """Compiled-backend tail of :func:`repro.engine.portfolio.portfolio_cas`.

    Always runs float64 internally (see the module docstring).
    """
    dtype = np.dtype(np.float64)
    (
        rates,
        backlog,
        wafers,
        testing,
        quantities,
        stride_qd,
        stride_qs,
        n_samples,
    ) = _portfolio_tensors(quantities_design, supply, dtype)
    pipelined = model.schedule == "pipelined"
    tapeout_scalars = np.ascontiguousarray(
        invariants.max_tapeout_weeks
        if pipelined
        else invariants.sequential_tapeout_weeks,
        dtype=dtype,
    )
    n_designs = invariants.n_designs
    max_nodes = invariants.max_nodes
    sensitivity = np.empty((n_designs, max_nodes, n_samples), dtype=dtype)
    total = np.empty((n_designs, n_samples), dtype=dtype)
    get_kernel("portfolio_cas")(
        rates,
        _sample_stride(rates.shape[2]),
        backlog,
        _sample_stride(backlog.shape[2]),
        wafers,
        _sample_stride(wafers.shape[2]),
        testing,
        _sample_stride(testing.shape[1]),
        quantities,
        stride_qd,
        stride_qs,
        invariants.node_mask,
        np.ascontiguousarray(invariants.tapeout_weeks, dtype=dtype),
        np.ascontiguousarray(invariants.fab_latency_weeks, dtype=dtype),
        np.ascontiguousarray(invariants.max_rate, dtype=dtype),
        tapeout_scalars,
        np.ascontiguousarray(invariants.assembly_weeks_per_chip, dtype=dtype),
        np.ascontiguousarray(invariants.design_weeks, dtype=dtype),
        pipelined,
        float(model.tap_latency_weeks),
        float(relative_step),
        sensitivity,
        total,
    )
    row_positive = np.all(total > 0.0, axis=tuple(range(1, total.ndim)))
    if not np.all(row_positive):
        bad = invariants.designs[int(np.argmin(row_positive))]
        raise InvalidParameterError(
            f"design {bad!r} has zero TTM sensitivity on all nodes; "
            "CAS is unbounded (check the production volume is non-trivial)"
        )
    return PortfolioCASResult(
        designs=invariants.designs,
        processes=invariants.processes,
        cas=1.0 / total,
        sensitivity=sensitivity,
    )


def portfolio_cost_from_parts(
    cost_model: CostModel,
    invariants: PortfolioInvariants,
    quantities_node: np.ndarray,
    quantities_design: np.ndarray,
    scale: np.ndarray,
) -> PortfolioCostResult:
    """Compiled-backend tail of :func:`repro.engine.portfolio.portfolio_cost`."""
    dtype = _active_dtype()
    wafers_per_chip = invariants.wafers_per_chip_at(scale)

    engineering = np.sum(
        invariants.tapeout_effort_weeks * cost_model.engineer_week_cost_usd,
        axis=1,
    )
    fixed = np.sum(invariants.tapeout_fixed_usd, axis=1)
    masks = np.sum(invariants.mask_set_usd, axis=1)
    wafer_usd = np.sum(
        quantities_node
        * wafers_per_chip
        * invariants.wafer_cost_usd[:, :, None],
        axis=1,
    )

    yields = invariants.profile_yields(scale)
    tail = np.broadcast_shapes(
        yields.shape[1:],
        np.shape(quantities_design)[-1:] if quantities_design.ndim else (),
    )
    n_samples = tail[0] if tail else 1
    quantities, stride_qd, stride_qs = _normalized_quantities(
        quantities_design
    )
    if dtype != np.float64:
        quantities = quantities.astype(dtype)
        yields = yields.astype(dtype)
    else:
        yields = np.ascontiguousarray(yields)

    n_designs = invariants.n_designs
    testing_usd = np.empty((n_designs, n_samples), dtype=dtype)
    packaging_usd = np.empty((n_designs, n_samples), dtype=dtype)
    get_kernel("portfolio_cost_accum")(
        quantities,
        stride_qd,
        stride_qs,
        yields,
        _sample_stride(yields.shape[1]),
        invariants.profile_design,
        np.asarray(invariants.profile_count, dtype=dtype),
        np.asarray(invariants.profile_ntt, dtype=dtype),
        np.asarray(invariants.profile_area_mm2, dtype=dtype),
        float(cost_model.package_base_usd),
        float(cost_model.die_handling_usd),
        float(cost_model.package_area_usd_per_mm2),
        float(cost_model.test_usd_per_transistor),
        testing_usd,
        packaging_usd,
    )
    shape = np.broadcast_shapes(
        (n_designs,) + tail, np.shape(wafer_usd)
    )
    return PortfolioCostResult(
        designs=invariants.designs,
        engineering_usd=engineering,
        fixed_usd=fixed,
        mask_usd=masks,
        wafer_usd=np.broadcast_to(np.asarray(wafer_usd, dtype=dtype), shape),
        testing_usd=np.broadcast_to(
            testing_usd.reshape((n_designs,) + (tail if tail else ())), shape
        ),
        packaging_usd=np.broadcast_to(
            packaging_usd.reshape((n_designs,) + (tail if tail else ())),
            shape,
        ),
        n_chips=np.broadcast_to(quantities_design, shape),
    )


def _base_vector(values) -> tuple:
    """(1-D float64 contiguous view, stride flag, present flag)."""
    if values is None:
        return np.ones(1), 0, False
    array = np.ascontiguousarray(
        np.atleast_1d(np.asarray(values, dtype=np.float64))
    )
    return array, (0 if array.shape[0] == 1 else 1), True


def scenario_eval_from_parts(
    model: TTMModel,
    invariants: PortfolioInvariants,
    scenario_set,
    n_chips,
    capacity,
    queue_weeks,
    d0_scale,
    wafer_rate_scale,
    relative_step: float,
    with_cas: bool,
):
    """Compiled-backend tail of the scenario cube evaluation.

    Always runs float64 internally (the cube's bit-identity pin is a
    float64 contract, and CAS needs float64 regardless). Returns the
    ``(tapeout, fabrication, total, cas-or-None)`` tuple the NumPy path
    produces.
    """
    from ..scenario import _D0Groups

    conditions = model.foundry.conditions
    n_designs, max_nodes = invariants.node_mask.shape
    k_total = scenario_set.n_scenarios

    _, quantities_design = _portfolio_quantities(n_chips, n_designs)
    quantities, stride_qd, stride_qs = _normalized_quantities(
        quantities_design
    )

    cap_base, stride_cap, has_cap_base = _base_vector(capacity)
    queue_base, stride_queue, has_queue_base = _base_vector(queue_weeks)
    rate_base, stride_rate, has_rate_base = _base_vector(wafer_rate_scale)

    if not has_queue_base:
        for k in range(k_total):
            if not bool(scenario_set.queue_identity[k]):
                raise InvalidParameterError(
                    f"scenario {scenario_set.names[k]!r} transforms "
                    "queue weeks but no queue_weeks samples were provided"
                )

    cond_frac = np.ones((n_designs, max_nodes))
    quotes = np.zeros((n_designs, max_nodes))
    for d, processes in enumerate(invariants.processes):
        for p, name in enumerate(processes):
            quotes[d, p] = conditions.queue_weeks_for(name)
            if not has_cap_base:
                fraction = conditions.capacity_for(name)
                if fraction <= 0.0:
                    raise InvalidParameterError(
                        f"node {name!r} has zero effective capacity "
                        f"(fraction {fraction}); time-to-market would be "
                        "unbounded"
                    )
                cond_frac[d, p] = fraction

    cap_cols = np.ascontiguousarray(
        np.concatenate(
            [
                scenario_set.capacity_scale[:, None],
                scenario_set.capacity_node_scale,
            ],
            axis=1,
        )
    )
    cap_idx = np.zeros((n_designs, max_nodes), dtype=np.intp)
    for d, processes in enumerate(invariants.processes):
        for p, name in enumerate(processes):
            try:
                cap_idx[d, p] = scenario_set.capacity_nodes.index(name) + 1
            except ValueError:
                cap_idx[d, p] = 0

    # One D0-derived tensor pair per unique defect multiplier; the
    # numerically delicate yield powers run NumPy-side, shared across
    # every scenario in the group.
    d0_groups = _D0Groups(invariants, d0_scale)
    group_of: dict = {}
    group_idx = np.empty(k_total, dtype=np.intp)
    wafers_list = []
    testing_list = []
    for k in range(k_total):
        g = float(scenario_set.d0_scale[k])
        slot = group_of.get(g)
        if slot is None:
            slot = len(wafers_list)
            group_of[g] = slot
            wafers, testing, _ = d0_groups.tensors(g)
            wafers_list.append(np.asarray(wafers, dtype=np.float64))
            testing_list.append(np.asarray(testing, dtype=np.float64))
        group_idx[k] = slot
    wafers_tail = max(w.shape[2] for w in wafers_list)
    testing_tail = max(t.shape[1] for t in testing_list)
    wafers_groups = np.ascontiguousarray(
        np.stack(
            [
                np.broadcast_to(w, (n_designs, max_nodes, wafers_tail))
                for w in wafers_list
            ]
        )
    )
    testing_groups = np.ascontiguousarray(
        np.stack(
            [
                np.broadcast_to(t, (n_designs, testing_tail))
                for t in testing_list
            ]
        )
    )

    n_samples = np.broadcast_shapes(
        (quantities.shape[1],),
        (cap_base.shape[0],),
        (queue_base.shape[0],),
        (rate_base.shape[0],),
        (wafers_tail,),
        (testing_tail,),
    )[0]
    pipelined = model.schedule == "pipelined"
    tapeout_scalars = np.ascontiguousarray(
        invariants.max_tapeout_weeks
        if pipelined
        else invariants.sequential_tapeout_weeks,
        dtype=np.float64,
    )

    fabrication = np.empty((k_total, n_designs, n_samples))
    total = np.empty((k_total, n_designs, n_samples))
    cas_total = (
        np.empty((k_total, n_designs, n_samples))
        if with_cas
        else np.empty((1, 1, 1))
    )
    get_kernel("scenario_eval")(
        np.ascontiguousarray(scenario_set.demand_scale),
        cap_cols,
        cap_idx,
        np.ascontiguousarray(scenario_set.queue_scale),
        np.ascontiguousarray(scenario_set.queue_add_weeks),
        np.ascontiguousarray(scenario_set.queue_identity),
        np.ascontiguousarray(scenario_set.wafer_rate_scale),
        group_idx,
        quantities,
        stride_qd,
        stride_qs,
        cap_base,
        stride_cap,
        has_cap_base,
        cond_frac,
        queue_base,
        stride_queue,
        has_queue_base,
        quotes,
        rate_base,
        stride_rate,
        has_rate_base,
        wafers_groups,
        _sample_stride(wafers_tail),
        testing_groups,
        _sample_stride(testing_tail),
        invariants.node_mask,
        np.ascontiguousarray(invariants.tapeout_weeks, dtype=np.float64),
        np.ascontiguousarray(invariants.fab_latency_weeks, dtype=np.float64),
        np.ascontiguousarray(invariants.max_rate, dtype=np.float64),
        tapeout_scalars,
        np.ascontiguousarray(
            invariants.assembly_weeks_per_chip, dtype=np.float64
        ),
        np.ascontiguousarray(invariants.design_weeks, dtype=np.float64),
        pipelined,
        float(model.tap_latency_weeks),
        float(relative_step),
        with_cas,
        fabrication,
        total,
        cas_total,
    )
    tapeout = np.broadcast_to(
        tapeout_scalars[None, :], (k_total, n_designs)
    )
    cas = None
    if with_cas:
        for k in range(k_total):
            row_positive = np.all(cas_total[k] > 0.0, axis=1)
            if not np.all(row_positive):
                bad = invariants.designs[int(np.argmin(row_positive))]
                raise InvalidParameterError(
                    f"design {bad!r} has zero TTM sensitivity on all "
                    f"nodes under scenario {scenario_set.names[k]!r}; "
                    "CAS is unbounded (check the production volume is "
                    "non-trivial)"
                )
        cas = 1.0 / cas_total
    return tapeout, fabrication, total, cas


__all__ = [
    "cas_from_supply",
    "cost_from_parts",
    "portfolio_cas_from_supply",
    "portfolio_cost_from_parts",
    "portfolio_ttm_from_supply",
    "scenario_eval_from_parts",
    "ttm_from_supply",
]
