"""Compiled kernel backend: registry, Numba detection, float32 mode.

The NumPy kernels in :mod:`repro.engine.batch` / ``portfolio`` build a
handful of full-size temporaries per evaluation (queue drain, production,
node totals, perturbed-rate copies). This package fuses each hot kernel
into a single pass over the sample axis — written as plain Python loops
(:mod:`repro.engine.compiled.kernels`) that Numba jit-compiles when it
is installed (``pip install repro[compiled]``) and that run as ordinary
Python otherwise, so the backend is exercised by the test suite on every
machine while the speedup needs the optional dependency.

Backend selection
-----------------
The process-wide backend is a tiny registry:

* :func:`get_backend` / :func:`set_backend` — read/switch the active
  backend (``"numpy"`` is the default and the equivalence oracle;
  ``"compiled"`` routes ``batch_*`` / ``portfolio_*`` through the fused
  kernels);
* :func:`use_backend` — a context manager for scoped switches;
* ``REPRO_ENGINE_BACKEND`` — environment override applied at import
  (``numpy`` | ``compiled`` | ``compiled:float32``); invalid values
  warn and keep the default rather than fail the process.

Numerics contract: with ``dtype="float64"`` the compiled kernels
replicate the NumPy path's per-element operation order exactly, so
results are **bit-for-bit identical** (pinned by
``tests/engine/test_compiled.py``). The opt-in ``dtype="float32"`` mode
halves bandwidth at a documented cost: TTM and cost results stay within
``5e-5`` relative error of float64; CAS central differences always run
in float64 internally (a float32 difference of two ~equal totals would
be pure cancellation noise), so only their inputs are rounded.

Compiled dispatchers are cached in the shared invariant LRU
(:func:`~repro.engine.invariants.cached_invariants`) under
``("compiled-kernel", name, ...)`` keys — the same lifecycle (and the
same ``clear_invariant_cache`` eviction) as every other compiled
artifact of the engine. :func:`warm_up` forces compilation eagerly so a
benchmark or service pays the jit cost before its measured window.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from ...errors import InvalidParameterError
from ...obs.instrument import set_backend_label_provider

#: Recognized backend names.
BACKENDS: Tuple[str, ...] = ("numpy", "compiled")

#: Recognized kernel dtypes.
DTYPES: Tuple[str, ...] = ("float64", "float32")

#: Environment variable selecting the backend at import time.
BACKEND_ENV = "REPRO_ENGINE_BACKEND"


@dataclass(frozen=True)
class Backend:
    """One backend selection: implementation name plus kernel dtype."""

    name: str
    dtype: str = "float64"

    @property
    def label(self) -> str:
        """The metrics label (``backend=...``) for this selection."""
        if self.name == "compiled" and self.dtype == "float32":
            return "compiled:float32"
        return self.name


_DEFAULT = Backend("numpy", "float64")
_ACTIVE: Backend = _DEFAULT

#: Cached numba module (or False when the import failed).
_NUMBA: Any = None


def _import_numba() -> Optional[Any]:
    """The ``numba`` module when installed, else ``None`` (cached)."""
    global _NUMBA
    if _NUMBA is None:
        try:
            import numba  # type: ignore[import-not-found]

            _NUMBA = numba
        except Exception:  # pragma: no cover - environment dependent
            _NUMBA = False
    return _NUMBA or None


def numba_available() -> bool:
    """Whether the optional Numba dependency is importable."""
    return _import_numba() is not None


def get_backend() -> Backend:
    """The process-wide active backend selection."""
    return _ACTIVE


def set_backend(name: str, dtype: str = "float64") -> Backend:
    """Switch the active backend; returns the new selection.

    ``dtype="float32"`` is only meaningful for the compiled backend
    (the NumPy path is the float64 oracle by definition).
    """
    if name not in BACKENDS:
        raise InvalidParameterError(
            f"unknown engine backend {name!r}; choose from {BACKENDS}"
        )
    if dtype not in DTYPES:
        raise InvalidParameterError(
            f"unknown kernel dtype {dtype!r}; choose from {DTYPES}"
        )
    if dtype == "float32" and name != "compiled":
        raise InvalidParameterError(
            "float32 mode requires the compiled backend "
            "(the numpy path is the float64 oracle)"
        )
    global _ACTIVE
    _ACTIVE = Backend(name, dtype)
    return _ACTIVE


@contextmanager
def use_backend(name: str, dtype: str = "float64") -> Iterator[Backend]:
    """Scoped :func:`set_backend`; restores the previous selection."""
    previous = _ACTIVE
    backend = set_backend(name, dtype)
    try:
        yield backend
    finally:
        set_backend(previous.name, previous.dtype)


def backend_label() -> str:
    """The active backend's metrics label (``observed_kernel`` hook)."""
    return _ACTIVE.label


def parse_backend_spec(spec: str) -> Tuple[str, str]:
    """Parse ``"numpy"`` / ``"compiled"`` / ``"compiled:float32"``."""
    name, _, dtype = spec.partition(":")
    return name.strip(), (dtype.strip() or "float64")


def backend_info() -> Dict[str, Any]:
    """The active selection plus what it resolves to on this machine.

    ``jit`` is True only when the compiled backend is active *and*
    Numba is importable — without Numba the fused kernels still run
    (as plain Python loops, the correctness path), they are just slow.
    """
    numba = _import_numba()
    return {
        "backend": _ACTIVE.name,
        "dtype": _ACTIVE.dtype,
        "numba": getattr(numba, "__version__", None) if numba else None,
        "jit": bool(numba) and _ACTIVE.name == "compiled",
    }


def warm_up() -> Dict[str, Any]:
    """Compile (or pre-bind) every fused kernel eagerly; returns info.

    With Numba installed this triggers jit compilation of all kernel
    dispatchers on tiny dummy inputs, so the first real evaluation does
    not pay the compile latency. Without Numba it simply binds the
    Python fallbacks. Idempotent; dispatchers land in the shared
    invariant LRU.
    """
    from . import kernels

    kernels.warm_up_kernels()
    return backend_info()


def _apply_environment() -> None:
    """Honor ``REPRO_ENGINE_BACKEND`` at import; warn on bad values."""
    spec = os.environ.get(BACKEND_ENV)
    if not spec:
        return
    name, dtype = parse_backend_spec(spec)
    try:
        set_backend(name, dtype)
    except InvalidParameterError as error:
        warnings.warn(
            f"ignoring invalid {BACKEND_ENV}={spec!r}: {error}",
            RuntimeWarning,
            stacklevel=2,
        )


# Kernel metrics carry a backend label from now on; registering the
# provider here (this module is imported by repro.engine.batch) keeps
# the hot observed_kernel wrapper free of any engine import.
set_backend_label_provider(backend_label)
_apply_environment()


__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "Backend",
    "DTYPES",
    "backend_info",
    "backend_label",
    "get_backend",
    "numba_available",
    "parse_backend_spec",
    "set_backend",
    "use_backend",
    "warm_up",
]
