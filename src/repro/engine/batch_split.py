"""Vectorized multi-process split engine (the Fig. 14 pair x split sweep).

The scalar Sec. 7 path (:func:`repro.multiprocess.split.evaluate_split`)
re-derives each ported design's invariants once per (pair, split) plan:
a 10-node, 100-point study costs thousands of full scalar model
evaluations. This module evaluates the whole (pair x split-grid) tensor
through the cached :mod:`repro.engine.invariants` layer instead:

* each node's ported design is built **once** (`design_factory(node)`)
  and its line weeks / line cost over every allocated fraction come from
  one :func:`~repro.engine.batch.batch_ttm` / ``batch_cost`` call;
* the split TTM is the ``max`` over the two production lines (the order
  is filled when the slower line finishes);
* two-node CAS (Eq. 8) perturbs each node's wafer rate by the same
  relative step the scalar central difference uses — the perturbed line
  arrays are shared across every pair that touches the node;
* cost pays NRE on *both* nodes (the methodology's overhead) plus each
  line's recurring manufacturing.

Results match the scalar oracle to <= 1e-9 relative error (pinned by
``tests/engine/test_batch_split.py``); ``scripts/bench_engine.py``
tracks the speedup as the ``fig14_split_sweep`` workload.

Degenerate cells (``split >= 1.0`` or a diagonal ``primary ==
secondary`` pair) reproduce the scalar
:func:`~repro.multiprocess.split.single_process_plan` semantics: one
line, one NRE, CAS over the primary node only.

:func:`batch_split_samples` is the Monte Carlo face of the same kernel:
a fixed :class:`~repro.multiprocess.split.ProductionSplit` evaluated
across sampled supply factors (demand, capacity, queue quotes, defect
density, wafer rates), one batched call per production line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..agility.derivative import DEFAULT_RELATIVE_STEP
from ..cost.model import CostModel
from ..errors import InvalidParameterError
from ..multiprocess.split import DesignFactory, ProductionSplit, SplitEvaluation
from ..obs.instrument import observed_kernel
from ..ttm.model import TTMModel
from .batch import (
    ArrayLike,
    CapacityLike,
    _as_positive_array,
    batch_cost,
    batch_ttm,
)
from .invariants import DesignInvariants

#: Default split grid: 1% .. 100% of chips on the primary node. Kept in
#: sync with ``repro.multiprocess.optimizer.DEFAULT_SPLIT_GRID`` (which
#: cannot be imported here: the optimizer imports this module lazily to
#: break the package cycle).
DEFAULT_SPLIT_GRID: Tuple[float, ...] = tuple(s / 100.0 for s in range(1, 101))

#: Points in the second-stage grid around each pair's coarse optimum.
#: 21 points across one coarse-grid spacing turn a 1% grid into ~0.1%
#: split resolution.
DEFAULT_REFINE_POINTS = 21


def _ranking_key(evaluation: SplitEvaluation) -> Tuple[float, float]:
    """The optimizer's ordering: max CAS, ties broken toward lower TTM."""
    return (evaluation.cas, -evaluation.ttm_weeks)


@dataclass(frozen=True)
class SplitGridResult:
    """The full (pair x split) evaluation tensor with argmax helpers.

    All arrays share the shape ``(n_pairs, n_splits)``. Cells flagged in
    ``single_mask`` carry single-process semantics: their effective
    split is 1.0, ``line_weeks_secondary`` is NaN, cost pays one NRE and
    CAS senses only the primary node.

    Attributes
    ----------
    n_chips:
        Final chips the whole order fills (shared by every cell).
    pairs:
        ``(primary, secondary)`` node names, one per tensor row.
    splits:
        Effective primary-node fraction per cell (1.0 on single cells).
    ttm_weeks / cost_usd / cas:
        The three Fig. 14 panels; ``cas`` is all zeros when the tensor
        was evaluated with ``with_cas=False``.
    line_weeks_primary / line_weeks_secondary:
        Per-line completion weeks (secondary is NaN on single cells).
    single_mask:
        True where the cell degenerates to one production line.
    """

    n_chips: float
    pairs: Tuple[Tuple[str, str], ...]
    splits: np.ndarray
    ttm_weeks: np.ndarray
    cost_usd: np.ndarray
    cas: np.ndarray
    line_weeks_primary: np.ndarray
    line_weeks_secondary: np.ndarray
    single_mask: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", tuple(tuple(p) for p in self.pairs))

    @property
    def n_pairs(self) -> int:
        return self.splits.shape[0]

    @property
    def n_splits(self) -> int:
        return self.splits.shape[1]

    def pair_index(self, primary: str, secondary: str) -> int:
        """Row index of one ``(primary, secondary)`` pair."""
        try:
            return self.pairs.index((primary, secondary))
        except ValueError:
            raise InvalidParameterError(
                f"pair ({primary!r}, {secondary!r}) is not in this grid "
                f"(have {list(self.pairs)})"
            ) from None

    def evaluation(self, pair_index: int, split_index: int) -> SplitEvaluation:
        """One tensor cell as a scalar-equivalent :class:`SplitEvaluation`."""
        primary, secondary = self.pairs[pair_index]
        cell = (pair_index, split_index)
        line_weeks: Dict[str, float] = {
            primary: float(self.line_weeks_primary[cell])
        }
        if bool(self.single_mask[cell]):
            # Mirrors ``single_process_plan``: the degenerate plan names
            # the primary node on both axes.
            secondary = primary
        else:
            line_weeks[secondary] = float(self.line_weeks_secondary[cell])
        return SplitEvaluation(
            primary=primary,
            secondary=secondary,
            split=float(self.splits[cell]),
            n_chips=self.n_chips,
            ttm_weeks=float(self.ttm_weeks[cell]),
            cost_usd=float(self.cost_usd[cell]),
            cas=float(self.cas[cell]),
            line_weeks=line_weeks,
        )

    def best_index(self, pair_index: int) -> int:
        """Grid-point index of the pair's max-CAS split (lower-TTM ties).

        Exactly reproduces the scalar optimizer's ``max(evaluations,
        key=(cas, -ttm))``, including its first-wins tie behavior.
        """
        cas_row = self.cas[pair_index]
        ttm_row = self.ttm_weeks[pair_index]
        best = 0
        for j in range(1, self.n_splits):
            if (cas_row[j], -ttm_row[j]) > (cas_row[best], -ttm_row[best]):
                best = j
        return best

    def best_evaluation(self, pair_index: int) -> SplitEvaluation:
        """The pair's CAS-optimal cell."""
        return self.evaluation(pair_index, self.best_index(pair_index))

    def best_evaluations(self) -> Tuple[SplitEvaluation, ...]:
        """Each pair's CAS-optimal cell, in ``pairs`` order."""
        return tuple(self.best_evaluation(i) for i in range(self.n_pairs))

    # -- Argmax helpers over the per-pair optima --------------------------------

    def argmax_cas(self) -> Tuple[Tuple[str, str], SplitEvaluation]:
        """(pair, evaluation) with the highest CAS among per-pair optima."""
        return self._pick(lambda ev: ev.cas)

    def argmin_ttm(self) -> Tuple[Tuple[str, str], SplitEvaluation]:
        """(pair, evaluation) with the lowest TTM among per-pair optima."""
        return self._pick(lambda ev: -ev.ttm_weeks)

    def argmin_cost(self) -> Tuple[Tuple[str, str], SplitEvaluation]:
        """(pair, evaluation) with the lowest cost among per-pair optima."""
        return self._pick(lambda ev: -ev.cost_usd)

    def _pick(self, score) -> Tuple[Tuple[str, str], SplitEvaluation]:
        ranked = [
            (score(evaluation), -i, self.pairs[i], evaluation)
            for i, evaluation in enumerate(self.best_evaluations())
        ]
        _, _, pair, evaluation = max(ranked)
        return pair, evaluation


class _LineEngine:
    """Shared per-node line evaluations behind the tensor assembly.

    Every production line is the ported design running some fraction of
    the order on its own node. Line arrays depend only on (node, the
    fraction vector, which node's rate is perturbed) — never on the
    pair — so they are memoized and shared across all pairs of a study.
    The ported design itself is built once per node, which is what lets
    :func:`~repro.engine.invariants.design_invariants` cache hit.
    """

    def __init__(
        self,
        design_factory: DesignFactory,
        model: TTMModel,
        cost_model: CostModel,
        n_chips: float,
        relative_step: float,
    ) -> None:
        self.design_factory = design_factory
        self.model = model
        self.cost_model = cost_model
        self.n_chips = n_chips
        self.relative_step = relative_step
        self._designs: Dict[str, object] = {}
        self._perturbations: Dict[str, Tuple[float, float, float]] = {}
        self._totals: Dict[tuple, np.ndarray] = {}
        self._costs: Dict[tuple, np.ndarray] = {}

    def design(self, node: str):
        if node not in self._designs:
            self._designs[node] = self.design_factory(node)
        return self._designs[node]

    def perturbation(self, node: str) -> Tuple[float, float, float]:
        """(absolute step, fraction at +step, fraction at -step).

        Mirrors the scalar :func:`~repro.multiprocess.split.split_cas`:
        the node's rate is ``capacity_for(node) * max_rate``, the step is
        ``rate * relative_step``, and the perturbed rate goes back into
        the model as a capacity *fraction* (the same rate -> fraction ->
        rate round trip, so kinks land on identical abscissae).
        """
        if node not in self._perturbations:
            conditions = self.model.foundry.conditions
            fraction = conditions.capacity_for(node)
            if fraction <= 0.0:
                raise InvalidParameterError(
                    f"cannot evaluate CAS with zero capacity on {node!r}"
                )
            max_rate = self.model.foundry.technology.require_production(
                node
            ).max_wafer_rate_per_week
            rate = fraction * max_rate
            step = rate * self.relative_step
            self._perturbations[node] = (
                step,
                (rate + step) / max_rate,
                (rate - step) / max_rate,
            )
        return self._perturbations[node]

    def totals(
        self,
        node: str,
        fractions: np.ndarray,
        perturb: Optional[str] = None,
        sign: int = 0,
    ) -> np.ndarray:
        """Line completion weeks for ``fractions`` of the order on ``node``.

        ``perturb``/``sign`` evaluate the line with ``perturb``'s wafer
        rate displaced by one CAS step. Lines whose ported design never
        fabricates on ``perturb`` are returned unperturbed (and share the
        base cache entry), which is exactly the scalar behavior: the
        perturbed market conditions only move lines that use the node.
        """
        design = self.design(node)
        if perturb is not None and perturb not in design.processes:
            return self.totals(node, fractions)
        key = (node, fractions.tobytes(), perturb, sign)
        if key not in self._totals:
            capacity = None
            if perturb is not None:
                _, plus, minus = self.perturbation(perturb)
                capacity = {perturb: plus if sign > 0 else minus}
            weeks = batch_ttm(
                self.model,
                design,
                self.n_chips * fractions,
                capacity=capacity,
            ).total_weeks
            self._totals[key] = np.asarray(weeks, dtype=float).reshape(
                fractions.shape
            )
        return self._totals[key]

    def costs(self, node: str, fractions: np.ndarray) -> np.ndarray:
        """Line chip-creation cost (node NRE + recurring) per fraction."""
        key = (node, fractions.tobytes())
        if key not in self._costs:
            total = batch_cost(
                self.cost_model,
                self.design(node),
                self.n_chips * fractions,
                engineers=self.model.engineers,
            ).total_usd
            self._costs[key] = np.asarray(total, dtype=float).reshape(
                fractions.shape
            )
        return self._costs[key]


def _split_matrix(split_grid, n_pairs: int) -> np.ndarray:
    """Validate and broadcast the split grid to ``(n_pairs, n_splits)``."""
    array = np.asarray(split_grid, dtype=float)
    if array.size == 0:
        raise InvalidParameterError("split grid must be non-empty")
    if array.ndim == 1:
        array = np.broadcast_to(array, (n_pairs, array.size))
    elif array.ndim == 2:
        if array.shape[0] != n_pairs:
            raise InvalidParameterError(
                f"per-pair split grid has {array.shape[0]} rows "
                f"for {n_pairs} pairs"
            )
    else:
        raise InvalidParameterError(
            f"split grid must be 1-D or (n_pairs, n_splits), got shape "
            f"{array.shape}"
        )
    valid = (array > 0.0) & (array <= 1.0)
    if not np.all(valid):
        bad = float(array[~valid].reshape(-1)[0])
        raise InvalidParameterError(f"split must be in (0, 1], got {bad}")
    return np.array(array, dtype=float)  # owned, writable copy


@observed_kernel("engine.batch_split", lambda r: r.ttm_weeks.size)
def batch_split(
    design_factory: DesignFactory,
    pairs: Sequence[Tuple[str, str]],
    model: TTMModel,
    cost_model: CostModel,
    n_chips: float,
    split_grid: ArrayLike = DEFAULT_SPLIT_GRID,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    with_cas: bool = True,
) -> SplitGridResult:
    """Evaluate the full (pair x split-grid) tensor in one shot.

    Parameters
    ----------
    design_factory:
        Ports the architecture to a node; called once per distinct node.
    pairs:
        ``(primary, secondary)`` node names, one tensor row each.
        Diagonal pairs (``primary == secondary``) evaluate the
        single-process plan at every grid point.
    model / cost_model:
        The scalar models whose semantics the tensor reproduces.
    n_chips:
        Final chips the order fills (split across the two lines).
    split_grid:
        Primary-node fractions in (0, 1]: one shared 1-D grid, or a
        per-pair ``(n_pairs, n_splits)`` matrix (the refinement stage).
    relative_step:
        CAS central-difference step, relative to each node's rate.
    with_cas:
        Skip the CAS differences (leaving zeros) when only TTM/cost
        panels are needed; matches ``evaluate_split(..., with_cas=False)``.
    """
    pair_list: List[Tuple[str, str]] = [(str(p), str(q)) for p, q in pairs]
    if not pair_list:
        raise InvalidParameterError("need at least one node pair")
    if n_chips <= 0.0:
        raise InvalidParameterError(
            f"number of final chips must be positive, got {n_chips}"
        )
    if not 0.0 < relative_step < 1.0:
        raise InvalidParameterError(
            f"relative step must be in (0, 1), got {relative_step}"
        )
    splits = _split_matrix(split_grid, len(pair_list))
    for i, (primary, secondary) in enumerate(pair_list):
        if primary == secondary:
            splits[i, :] = 1.0
    single = splits >= 1.0

    engine = _LineEngine(
        design_factory, model, cost_model, n_chips, relative_step
    )
    n_pairs, n_splits = splits.shape
    ttm = np.empty((n_pairs, n_splits))
    cost = np.empty((n_pairs, n_splits))
    cas = np.zeros((n_pairs, n_splits))
    line_primary = np.empty((n_pairs, n_splits))
    line_secondary = np.full((n_pairs, n_splits), np.nan)

    for i, (primary, secondary) in enumerate(pair_list):
        prim_frac = np.ascontiguousarray(splits[i])
        two = ~single[i]
        has_two = bool(two.any())
        sec_frac = np.ascontiguousarray(1.0 - prim_frac[two])

        lp = engine.totals(primary, prim_frac)
        line_primary[i] = lp
        row_ttm = lp.copy()
        row_cost = engine.costs(primary, prim_frac).copy()
        if has_two:
            lq = engine.totals(secondary, sec_frac)
            line_secondary[i, two] = lq
            row_ttm[two] = np.maximum(lp[two], lq)
            row_cost[two] = row_cost[two] + engine.costs(secondary, sec_frac)
        ttm[i] = row_ttm
        cost[i] = row_cost

        if not with_cas:
            continue
        # Eq. 8: each node's rate perturbation only moves its own
        # line(s); the max over lines couples them exactly as the
        # scalar ``split_cas`` central difference does.
        step_p, _, _ = engine.perturbation(primary)
        upper = engine.totals(primary, prim_frac, perturb=primary, sign=+1)
        lower = engine.totals(primary, prim_frac, perturb=primary, sign=-1)
        if has_two:
            upper = upper.copy()
            lower = lower.copy()
            upper[two] = np.maximum(
                upper[two],
                engine.totals(secondary, sec_frac, perturb=primary, sign=+1),
            )
            lower[two] = np.maximum(
                lower[two],
                engine.totals(secondary, sec_frac, perturb=primary, sign=-1),
            )
        total_sensitivity = np.abs((upper - lower) / (2.0 * step_p))
        if has_two:
            step_q, _, _ = engine.perturbation(secondary)
            upper_q = np.maximum(
                engine.totals(primary, prim_frac, perturb=secondary, sign=+1)[
                    two
                ],
                engine.totals(secondary, sec_frac, perturb=secondary, sign=+1),
            )
            lower_q = np.maximum(
                engine.totals(primary, prim_frac, perturb=secondary, sign=-1)[
                    two
                ],
                engine.totals(secondary, sec_frac, perturb=secondary, sign=-1),
            )
            total_sensitivity[two] = total_sensitivity[two] + np.abs(
                (upper_q - lower_q) / (2.0 * step_q)
            )
        if not np.all(total_sensitivity > 0.0):
            raise InvalidParameterError(
                "split has zero TTM sensitivity; CAS is unbounded"
            )
        cas[i] = 1.0 / total_sensitivity

    return SplitGridResult(
        n_chips=float(n_chips),
        pairs=tuple(pair_list),
        splits=splits,
        ttm_weeks=ttm,
        cost_usd=cost,
        cas=cas,
        line_weeks_primary=line_primary,
        line_weeks_secondary=line_secondary,
        single_mask=single,
    )


def refine_split_grid(
    result: SplitGridResult, points: int = DEFAULT_REFINE_POINTS
) -> np.ndarray:
    """Per-pair fine grids bracketing each coarse optimum.

    For every pair, spans the interval between the CAS-optimal split's
    two grid neighbors with ``points`` evenly spaced values — a second
    :func:`batch_split` call over the returned ``(n_pairs, points)``
    matrix resolves the optimum to roughly ``spacing / (points - 1)``
    split resolution. Rows that only ever see the single-process plan
    (diagonal pairs) stay pinned at 1.0.
    """
    if points < 2:
        raise InvalidParameterError(
            f"refinement needs at least 2 points, got {points}"
        )
    fine = np.empty((result.n_pairs, points))
    for i in range(result.n_pairs):
        if bool(result.single_mask[i].all()):
            fine[i] = 1.0
            continue
        row = result.splits[i]
        best = float(row[result.best_index(i)])
        below = row[row < best]
        above = row[row > best]
        lower = float(below.max()) if below.size else best / 2.0
        upper = float(above.min()) if above.size else min(
            1.0, best + (best - lower)
        )
        fine[i] = np.linspace(lower, upper, points)
    return fine


def _affine_fit(
    fractions: np.ndarray, values: np.ndarray
) -> Tuple[float, float]:
    """(intercept, slope) of the line through the outer probe points."""
    slope = float(
        (values[2] - values[0]) / (fractions[2] - fractions[0])
    )
    return float(values[0]) - slope * float(fractions[0]), slope


def _probe_is_affine(values: np.ndarray, rtol: float = 1e-9) -> bool:
    """Whether the midpoint probe sits on the chord of the outer two."""
    predicted = (float(values[0]) + float(values[2])) / 2.0
    scale = max(abs(float(values[1])), 1.0)
    return abs(float(values[1]) - predicted) <= rtol * scale


def _affine_crossing(
    line_a: Tuple[float, float],
    line_b: Tuple[float, float],
    lo: float,
    hi: float,
) -> Optional[float]:
    """Interior zero of ``line_a - line_b`` in ``(lo, hi)``, if any."""
    slope = line_a[1] - line_b[1]
    if slope == 0.0:
        return None
    crossing = (line_b[0] - line_a[0]) / slope
    return crossing if lo < crossing < hi else None


def refine_split_exact(
    result: SplitGridResult,
    design_factory: DesignFactory,
    model: TTMModel,
    cost_model: CostModel,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    points: int = DEFAULT_REFINE_POINTS,
) -> np.ndarray:
    """Per-pair *exact* candidate splits bracketing each coarse optimum.

    Within one coarse-grid spacing, each production line's completion
    weeks are affine in the allocated fraction (the active bottleneck
    does not change), so every quantity the optimizer ranks is
    piecewise affine in the split: TTM is the max of two lines, and the
    CAS denominator is a sum of absolute differences of such maxima
    (one per perturbed node). A piecewise-affine objective attains its
    optimum at a breakpoint — a crossing of two line functions, a zero
    of a perturbation difference, or a bracket endpoint — so instead of
    carpeting the bracket with a fine grid this pass *solves* for those
    breakpoints:

    1. probe each line at the bracket's endpoints and midpoint, under
       the base scenario and the four CAS perturbations (``primary``/
       ``secondary`` rate, each displaced both ways);
    2. verify the midpoint probe is on the endpoint chord (relative
       tolerance 1e-9) — rows where any scenario bends fall back to the
       :func:`refine_split_grid` fine grid for that pair;
    3. fit the affine coefficients and enumerate every interior
       crossing and sensitivity zero as a candidate split.

    The returned ``(n_pairs, n_candidates)`` matrix (rows padded with
    their last candidate, diagonal pairs pinned at 1.0) feeds a second
    :func:`batch_split` call exactly like the fine grid does — but the
    best cell is now the bracket's true optimum, not a 0.1%-grid
    approximation of it.
    """
    if points < 2:
        raise InvalidParameterError(
            f"refinement needs at least 2 points, got {points}"
        )
    engine = _LineEngine(
        design_factory, model, cost_model, result.n_chips, relative_step
    )
    rows: List[np.ndarray] = []
    for i in range(result.n_pairs):
        if bool(result.single_mask[i].all()):
            rows.append(np.asarray([1.0]))
            continue
        primary, secondary = result.pairs[i]
        row = result.splits[i]
        best = float(row[result.best_index(i)])
        below = row[row < best]
        above = row[row > best]
        lo = float(below.max()) if below.size else best / 2.0
        hi = float(above.min()) if above.size else min(
            1.0, best + (best - lo)
        )
        probes = np.asarray([lo, (lo + hi) / 2.0, hi])
        scenarios = (
            (None, 0),
            (primary, +1),
            (primary, -1),
            (secondary, +1),
            (secondary, -1),
        )
        fits = {}
        affine = True
        for perturb, sign in scenarios:
            weeks_p = engine.totals(primary, probes, perturb, sign)
            weeks_q = engine.totals(secondary, 1.0 - probes, perturb, sign)
            if not (
                _probe_is_affine(weeks_p) and _probe_is_affine(weeks_q)
            ):
                affine = False
                break
            fits[(perturb, sign)] = (
                _affine_fit(probes, weeks_p),
                _affine_fit(probes, weeks_q),
            )
        if not affine:
            rows.append(np.linspace(lo, hi, points))
            continue

        candidates = {lo, hi}
        base_cross = _affine_crossing(*fits[(None, 0)], lo, hi)
        if base_cross is not None:
            candidates.add(base_cross)
        for node in (primary, secondary):
            up_p, up_q = fits[(node, +1)]
            dn_p, dn_q = fits[(node, -1)]
            breaks = {lo, hi}
            for pair_fit in ((up_p, up_q), (dn_p, dn_q)):
                crossing = _affine_crossing(*pair_fit, lo, hi)
                if crossing is not None:
                    breaks.add(crossing)
            edges = sorted(breaks)
            candidates.update(edges)
            # Sensitivity zeros: where the +step and -step maxima meet
            # inside a segment, the |difference| kinks at zero.
            for left, right in zip(edges, edges[1:]):
                mid = (left + right) / 2.0

                def _active(fit_p, fit_q):
                    value_p = fit_p[0] + fit_p[1] * mid
                    value_q = fit_q[0] + fit_q[1] * mid
                    return fit_p if value_p >= value_q else fit_q

                zero = _affine_crossing(
                    _active(up_p, up_q), _active(dn_p, dn_q), left, right
                )
                if zero is not None:
                    candidates.add(zero)
        ordered = sorted(candidates)
        deduped = [ordered[0]]
        for value in ordered[1:]:
            if value - deduped[-1] > 1e-12:
                deduped.append(value)
        rows.append(np.asarray(deduped))

    width = max(2, max(len(candidate_row) for candidate_row in rows))
    fine = np.empty((result.n_pairs, width))
    for i, candidate_row in enumerate(rows):
        fine[i, : len(candidate_row)] = candidate_row
        fine[i, len(candidate_row):] = candidate_row[-1]
    return fine


@dataclass(frozen=True)
class SplitSampleResult:
    """A fixed production split evaluated across sampled supply draws.

    All arrays are aligned with the sample axis. ``cost_usd`` is None
    when no cost model was supplied.
    """

    primary: str
    secondary: str
    split: float
    n_chips: np.ndarray
    ttm_weeks: np.ndarray
    cas: np.ndarray
    cost_usd: Optional[np.ndarray]
    line_weeks: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        object.__setattr__(self, "line_weeks", dict(self.line_weeks))

    @property
    def usd_per_chip(self) -> Optional[np.ndarray]:
        """Per-sample cost amortized over that sample's production run."""
        if self.cost_usd is None:
            return None
        return self.cost_usd / self.n_chips


def _resolved_fractions(
    nodes: Sequence[str],
    capacity: Optional[CapacityLike],
    model: TTMModel,
) -> Dict[str, ArrayLike]:
    """Per-node capacity fractions under the sampled ``capacity`` input."""
    conditions = model.foundry.conditions
    resolved: Dict[str, ArrayLike] = {}
    for node in nodes:
        if isinstance(capacity, Mapping):
            fraction: ArrayLike = (
                capacity[node]
                if node in capacity
                else conditions.capacity_for(node)
            )
        elif capacity is not None:
            fraction = capacity
        else:
            fraction = conditions.capacity_for(node)
        resolved[node] = fraction
    return resolved


@observed_kernel("engine.batch_split_samples", lambda r: r.ttm_weeks.size)
def batch_split_samples(
    plan: ProductionSplit,
    model: TTMModel,
    n_chips: ArrayLike,
    cost_model: Optional[CostModel] = None,
    capacity: Optional[CapacityLike] = None,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    with_cas: bool = True,
    line_invariants: Optional[Mapping[str, DesignInvariants]] = None,
) -> SplitSampleResult:
    """Push one production split through sampled supply factors.

    The Monte Carlo face of the split engine: ``n_chips`` and the
    sampled keywords broadcast exactly as in
    :func:`~repro.engine.batch.batch_ttm`, and each production line is
    one batched kernel call — a 10k-sample robustness study of a
    two-node plan costs six array evaluations, not 10k scalar ones.

    CAS is evaluated per sample: each allocation node's *effective*
    rate (sampled capacity x scaled max rate) is displaced by
    ``relative_step`` in both directions and the max-coupled line
    totals are centrally differenced, mirroring
    :func:`~repro.multiprocess.split.split_cas` under each draw's
    market conditions.

    ``line_invariants`` optionally maps allocation nodes to
    pre-compiled :class:`~repro.engine.invariants.DesignInvariants`
    (e.g. a shared-memory attach in a worker process); they feed the
    TTM/CAS line evaluations and must match ``model``'s compilation
    settings. Cost still derives its own (cached) invariants — its
    fingerprint ignores the schedule knobs.
    """
    if not 0.0 < relative_step < 1.0:
        raise InvalidParameterError(
            f"relative step must be in (0, 1), got {relative_step}"
        )
    quantities = _as_positive_array(n_chips, "number of final chips")
    allocations = plan.allocations
    designs = {node: plan.design_factory(node) for node in allocations}
    involved: List[str] = []
    for design in designs.values():
        for process in design.processes:
            if process not in involved:
                involved.append(process)
    fractions = _resolved_fractions(involved, capacity, model)
    sampled = {
        "queue_weeks": queue_weeks,
        "d0_scale": d0_scale,
        "wafer_rate_scale": wafer_rate_scale,
    }

    def line_totals(capacity_map: Mapping[str, ArrayLike]) -> Dict[str, np.ndarray]:
        return {
            node: np.asarray(
                batch_ttm(
                    model,
                    designs[node],
                    quantities * fraction,
                    capacity=dict(capacity_map),
                    invariants=(
                        None
                        if line_invariants is None
                        else line_invariants.get(node)
                    ),
                    **sampled,
                ).total_weeks,
                dtype=float,
            )
            for node, fraction in allocations.items()
        }

    lines = line_totals(fractions)
    ttm = None
    for weeks in lines.values():
        ttm = weeks if ttm is None else np.maximum(ttm, weeks)

    cost_usd = None
    if cost_model is not None:
        cost_total: ArrayLike = 0.0
        for node, fraction in allocations.items():
            cost_total = cost_total + batch_cost(
                cost_model,
                designs[node],
                quantities * fraction,
                d0_scale=d0_scale,
                engineers=model.engineers,
            ).total_usd
        cost_usd = np.broadcast_to(
            np.asarray(cost_total, dtype=float), np.shape(ttm)
        )

    cas = np.zeros(np.shape(ttm))
    if with_cas:
        rate_scale: ArrayLike = 1.0
        if wafer_rate_scale is not None:
            rate_scale = _as_positive_array(
                wafer_rate_scale, "wafer rate scale"
            )
        total_sensitivity: Optional[np.ndarray] = None
        for node in allocations:
            fraction = np.asarray(fractions[node], dtype=float)
            if not np.all(fraction > 0.0):
                raise InvalidParameterError(
                    f"cannot evaluate CAS with zero capacity on {node!r}"
                )
            scaled_max = (
                model.foundry.technology.require_production(
                    node
                ).max_wafer_rate_per_week
                * rate_scale
            )
            rate = fraction * scaled_max
            step = rate * relative_step
            perturbed: Dict[int, np.ndarray] = {}
            for sign in (+1, -1):
                displaced = dict(fractions)
                displaced[node] = (rate + sign * step) / scaled_max
                upper = None
                for weeks in line_totals(displaced).values():
                    upper = (
                        weeks if upper is None else np.maximum(upper, weeks)
                    )
                perturbed[sign] = upper
            sensitivity = np.abs(
                (perturbed[+1] - perturbed[-1]) / (2.0 * step)
            )
            total_sensitivity = (
                sensitivity
                if total_sensitivity is None
                else total_sensitivity + sensitivity
            )
        if not np.all(total_sensitivity > 0.0):
            raise InvalidParameterError(
                "split has zero TTM sensitivity; CAS is unbounded"
            )
        cas = 1.0 / total_sensitivity

    shape = np.broadcast_shapes(np.shape(ttm), quantities.shape)
    return SplitSampleResult(
        primary=plan.primary,
        secondary=plan.secondary,
        split=plan.split,
        n_chips=np.broadcast_to(quantities, shape),
        ttm_weeks=np.broadcast_to(np.asarray(ttm, dtype=float), shape),
        cas=np.broadcast_to(np.asarray(cas, dtype=float), shape),
        cost_usd=(
            None
            if cost_usd is None
            else np.broadcast_to(cost_usd, shape)
        ),
        line_weeks={
            node: np.broadcast_to(weeks, shape)
            for node, weeks in lines.items()
        },
    )


__all__ = [
    "DEFAULT_REFINE_POINTS",
    "DEFAULT_SPLIT_GRID",
    "SplitGridResult",
    "SplitSampleResult",
    "batch_split",
    "batch_split_samples",
    "refine_split_exact",
    "refine_split_grid",
]
