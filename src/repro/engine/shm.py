"""Zero-copy publication of compiled invariant tensors to process pools.

The process-pool sweeps (Fig. 14 split studies, portfolio Monte Carlo)
used to carry their compiled invariants *by value*: every chunk task
pickled the design objects, and every worker recompiled (or unpickled)
the SoA tensors before evaluating. This module publishes those tensors
once into POSIX shared memory (``multiprocessing.shared_memory``) and
hands workers a tiny picklable handle instead; workers attach the
segment read-only and reconstruct the invariants as zero-copy views.

Layers
------
* :class:`SharedTensorHandle` — one published segment: a name, a unique
  ``token``, and per-array (key, offset, shape, dtype) specs. Pickles
  to a few hundred bytes regardless of tensor size; :meth:`arrays`
  attaches (cached per process) and returns read-only views.
* :class:`InlineTensorHandle` — the graceful-degradation twin that
  simply carries the arrays through pickle. Returned whenever shared
  memory is unavailable or disabled (``REPRO_ENGINE_SHM=off``), so
  callers never branch.
* :class:`SharedInvariantStore` — the owner-side refcounted registry:
  ``publish`` creates a segment, ``release`` decrements and unlinks at
  zero, and an ``atexit`` hook unlinks stragglers so crashed runs do
  not leak ``/dev/shm`` segments.
* :class:`PortfolioShare` / :class:`InvariantsShare` — typed wrappers
  that know how to rebuild a
  :class:`~repro.engine.portfolio.PortfolioInvariants` or a
  ``{node: DesignInvariants}`` map from a handle (memoized per process
  by token).

Workers only ever *close* their attachment; the publishing process owns
the unlink. Attachments register their own ``atexit`` close, so pool
workers exit cleanly.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..obs.instrument import record_shm
from .invariants import DesignInvariants

#: Environment kill-switch: set to ``off``/``0``/``false`` to force the
#: inline (pickling) fallback even where shared memory works.
SHM_ENV = "REPRO_ENGINE_SHM"

#: Prefix for every segment this module creates (lets tests — and
#: operators — audit ``/dev/shm`` for leaks).
SEGMENT_PREFIX = "repro_shm_"

#: Offset alignment for arrays inside a segment.
_ALIGN = 64


def shm_enabled() -> bool:
    """Whether shared-memory publication is available and not disabled."""
    if os.environ.get(SHM_ENV, "").strip().lower() in {"off", "0", "false"}:
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform dependent
        return False
    return True


@dataclass(frozen=True)
class _ArraySpec:
    key: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str


# Per-process cache of attached segments (workers attach each segment
# once, not once per chunk) and of materialized invariants by token.
# One re-entrant lock guards *both* maps so attach and memoization are
# a single atomic step: a thread (or a worker about to be killed)
# observed mid-materialize can never leave an attachment recorded
# without its memoized twin, which is the window that used to strand
# references when a worker died between the two writes.
_ATTACHED: Dict[str, object] = {}
_ATTACH_LOCK = threading.RLock()
_MATERIALIZED: Dict[str, object] = {}


def _attach_segment(name: str):
    with _ATTACH_LOCK:
        segment = _ATTACHED.get(name)
        if segment is None:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(name=name)
            _ATTACHED[name] = segment
            record_shm("attach")
        return segment


def _materialize(token: str, build: "callable") -> object:
    """Memoized ``build()`` per handle token, atomic with the attach.

    ``build`` runs under the attach lock (it calls ``handle.arrays()``,
    which re-enters :func:`_attach_segment`; the lock is re-entrant), so
    the attach and its memoization commit together or not at all.
    """
    with _ATTACH_LOCK:
        cached = _MATERIALIZED.get(token)
        if cached is None:
            cached = build()
            _MATERIALIZED[token] = cached
        return cached


def _close_attachments() -> None:
    """Close (never unlink) this process's attachments at exit."""
    with _ATTACH_LOCK:
        for segment in _ATTACHED.values():
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - teardown
                pass
        _ATTACHED.clear()
        _MATERIALIZED.clear()


atexit.register(_close_attachments)


@dataclass(frozen=True)
class SharedTensorHandle:
    """Picklable reference to arrays published in one shm segment."""

    name: str
    token: str
    specs: Tuple[_ArraySpec, ...]
    total_bytes: int

    @property
    def is_shared(self) -> bool:
        return True

    def arrays(self) -> Dict[str, np.ndarray]:
        """Attach (cached per process) and return read-only views."""
        segment = _attach_segment(self.name)
        out: Dict[str, np.ndarray] = {}
        for spec in self.specs:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=segment.buf,
                offset=spec.offset,
            )
            view.flags.writeable = False
            out[spec.key] = view
        return out


@dataclass(frozen=True)
class InlineTensorHandle:
    """Fallback handle: the arrays ride along through pickle."""

    token: str
    payload: Mapping[str, np.ndarray] = field(default_factory=dict)

    @property
    def is_shared(self) -> bool:
        return False

    def arrays(self) -> Dict[str, np.ndarray]:
        return dict(self.payload)


TensorHandle = Union[SharedTensorHandle, InlineTensorHandle]


@dataclass
class _OwnedSegment:
    segment: object
    handle: SharedTensorHandle
    refcount: int


class SharedInvariantStore:
    """Owner-side registry of published segments with refcounted unlink."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owned: Dict[str, _OwnedSegment] = {}

    def publish(self, arrays: Mapping[str, np.ndarray]) -> TensorHandle:
        """Publish ``arrays`` into one shm segment (or inline fallback).

        The returned handle starts with refcount 1; pair every publish
        with exactly one :meth:`release`.
        """
        token = uuid.uuid4().hex
        if not shm_enabled():
            record_shm("fallback")
            return InlineTensorHandle(token=token, payload=dict(arrays))

        dense = {
            key: np.ascontiguousarray(value) for key, value in arrays.items()
        }
        specs = []
        offset = 0
        for key, value in dense.items():
            offset = -(-offset // _ALIGN) * _ALIGN
            specs.append(
                _ArraySpec(
                    key=key,
                    offset=offset,
                    shape=tuple(value.shape),
                    dtype=value.dtype.str,
                )
            )
            offset += value.nbytes
        total = max(offset, 1)

        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(
                create=True,
                size=total,
                name=SEGMENT_PREFIX + uuid.uuid4().hex[:16],
            )
        except (OSError, ValueError):  # pragma: no cover - env dependent
            record_shm("fallback")
            return InlineTensorHandle(token=token, payload=dense)

        for spec in specs:
            target = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=segment.buf,
                offset=spec.offset,
            )
            target[...] = dense[spec.key]
        handle = SharedTensorHandle(
            name=segment.name,
            token=token,
            specs=tuple(specs),
            total_bytes=total,
        )
        with self._lock:
            self._owned[token] = _OwnedSegment(
                segment=segment, handle=handle, refcount=1
            )
        record_shm("publish", total)
        return handle

    def retain(self, handle: TensorHandle) -> None:
        """Add a reference to a handle this store published (else no-op)."""
        with self._lock:
            owned = self._owned.get(handle.token)
            if owned is not None:
                owned.refcount += 1

    def lease(self, handle: TensorHandle) -> "Lease":
        """Retain ``handle`` behind a release-exactly-once :class:`Lease`.

        The sharded server ties one lease to each worker *process*: the
        supervisor takes it before the worker spawns and releases it
        when the process is reaped — never from inside the worker — so a
        worker killed at any point (even ``SIGKILL`` mid-attach, before
        its memoization commits) cannot strand a reference. Double
        release through the same lease is a no-op by construction, which
        is what makes the reap path safe to run from both the respawn
        monitor and the final drain.
        """
        self.retain(handle)
        return Lease(self, handle)

    def release(self, handle: Optional[TensorHandle]) -> None:
        """Drop a reference; unlink the segment when it reaches zero.

        No-op for ``None``, inline handles, and handles this process
        does not own (e.g. a worker releasing defensively).
        """
        if handle is None:
            return
        with self._lock:
            owned = self._owned.get(handle.token)
            if owned is None:
                return
            owned.refcount -= 1
            if owned.refcount > 0:
                return
            del self._owned[handle.token]
        self._destroy(owned)

    def refcount(self, handle: TensorHandle) -> int:
        """Current reference count (0 when unknown/released)."""
        with self._lock:
            owned = self._owned.get(handle.token)
            return owned.refcount if owned is not None else 0

    def close_all(self) -> None:
        """Unlink every live segment (atexit / crashed-run cleanup)."""
        with self._lock:
            owned = list(self._owned.values())
            self._owned.clear()
        for entry in owned:
            self._destroy(entry)

    def _destroy(self, owned: _OwnedSegment) -> None:
        # Drop any local attachment view of our own segment first.
        with _ATTACH_LOCK:
            attached = _ATTACHED.pop(owned.handle.name, None)
        _MATERIALIZED.pop(owned.handle.token, None)
        if attached is not None:
            try:
                attached.close()
            except (OSError, BufferError):  # pragma: no cover - teardown
                pass
        try:
            owned.segment.close()
            owned.segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - teardown
            pass


class Lease:
    """One retained reference on a store, released at most once.

    Usable as a context manager; :meth:`release` is idempotent and
    thread-safe, so owner-side cleanup paths may race without
    over-decrementing the segment's refcount.
    """

    def __init__(self, store: SharedInvariantStore, handle: TensorHandle):
        self._store = store
        self._handle = handle
        self._lock = threading.Lock()
        self._released = False

    @property
    def handle(self) -> TensorHandle:
        return self._handle

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Drop the reference (first call only; later calls no-op)."""
        with self._lock:
            if self._released:
                return
            self._released = True
        self._store.release(self._handle)

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


#: The process-wide store every engine call site shares.
SHARED_STORE = SharedInvariantStore()
atexit.register(SHARED_STORE.close_all)


#: PortfolioInvariants fields published as arrays (the rest is metadata).
PORTFOLIO_ARRAY_FIELDS = (
    "node_mask",
    "tapeout_weeks",
    "max_rate",
    "fab_latency_weeks",
    "wafers_per_chip",
    "wafer_cost_usd",
    "tapeout_effort_weeks",
    "tapeout_fixed_usd",
    "mask_set_usd",
    "sequential_tapeout_weeks",
    "max_tapeout_weeks",
    "testing_weeks_per_chip",
    "assembly_weeks_per_chip",
    "design_weeks",
    "profile_design",
    "profile_node",
    "profile_count",
    "profile_ntt",
    "profile_area_mm2",
    "profile_gross",
    "profile_testing_effort",
    "profile_mean_defects",
)


@dataclass(frozen=True)
class PortfolioShare:
    """Picklable stand-in for a compiled portfolio in worker tasks."""

    handle: TensorHandle
    designs: Tuple[str, ...]
    processes: Tuple[Tuple[str, ...], ...]
    alpha: float
    per_design: tuple
    special_profiles: tuple

    def materialize(self):
        """Rebuild the ``PortfolioInvariants`` (memoized per process)."""

        def _build():
            from .portfolio import PortfolioInvariants

            arrays = self.handle.arrays()
            return PortfolioInvariants(
                designs=self.designs,
                processes=self.processes,
                alpha=self.alpha,
                per_design=self.per_design,
                special_profiles=self.special_profiles,
                **{name: arrays[name] for name in PORTFOLIO_ARRAY_FIELDS},
            )

        return _materialize(self.handle.token, _build)


def share_portfolio(invariants) -> PortfolioShare:
    """Publish a compiled portfolio's tensors; returns the worker token."""
    arrays = {
        name: np.ascontiguousarray(getattr(invariants, name))
        for name in PORTFOLIO_ARRAY_FIELDS
    }
    return PortfolioShare(
        handle=SHARED_STORE.publish(arrays),
        designs=invariants.designs,
        processes=invariants.processes,
        alpha=invariants.alpha,
        per_design=invariants.per_design,
        special_profiles=invariants.special_profiles,
    )


#: DesignInvariants fields published as arrays (the rest is metadata).
DESIGN_ARRAY_FIELDS = (
    "tapeout_weeks",
    "max_rate",
    "fab_latency_weeks",
    "wafers_per_chip",
)


@dataclass(frozen=True)
class _DesignMeta:
    processes: Tuple[str, ...]
    sequential_tapeout_weeks: float
    testing_weeks_per_chip: float
    assembly_weeks_per_chip: float
    design_weeks: float
    alpha: float
    die_profiles: tuple


@dataclass(frozen=True)
class InvariantsShare:
    """Picklable stand-in for a ``{node: DesignInvariants}`` map."""

    handle: TensorHandle
    entries: Tuple[Tuple[str, _DesignMeta], ...]

    def materialize(self) -> Dict[str, DesignInvariants]:
        """Rebuild the invariants map (memoized per process)."""

        def _build() -> Dict[str, DesignInvariants]:
            arrays = self.handle.arrays()
            out: Dict[str, DesignInvariants] = {}
            for label, meta in self.entries:
                out[label] = DesignInvariants(
                    processes=meta.processes,
                    sequential_tapeout_weeks=meta.sequential_tapeout_weeks,
                    testing_weeks_per_chip=meta.testing_weeks_per_chip,
                    assembly_weeks_per_chip=meta.assembly_weeks_per_chip,
                    design_weeks=meta.design_weeks,
                    alpha=meta.alpha,
                    die_profiles=meta.die_profiles,
                    **{
                        name: arrays[f"{label}/{name}"]
                        for name in DESIGN_ARRAY_FIELDS
                    },
                )
            return out

        return _materialize(self.handle.token, _build)  # type: ignore[return-value]


def share_design_invariants(
    invariants_by_label: Mapping[str, DesignInvariants],
) -> InvariantsShare:
    """Publish per-label design invariants; returns the worker token."""
    arrays: Dict[str, np.ndarray] = {}
    entries = []
    for label, invariants in invariants_by_label.items():
        for name in DESIGN_ARRAY_FIELDS:
            arrays[f"{label}/{name}"] = np.ascontiguousarray(
                getattr(invariants, name), dtype=float
            )
        entries.append(
            (
                label,
                _DesignMeta(
                    processes=invariants.processes,
                    sequential_tapeout_weeks=(
                        invariants.sequential_tapeout_weeks
                    ),
                    testing_weeks_per_chip=invariants.testing_weeks_per_chip,
                    assembly_weeks_per_chip=(
                        invariants.assembly_weeks_per_chip
                    ),
                    design_weeks=invariants.design_weeks,
                    alpha=invariants.alpha,
                    die_profiles=invariants.die_profiles,
                ),
            )
        )
    return InvariantsShare(
        handle=SHARED_STORE.publish(arrays), entries=tuple(entries)
    )


def shm_usage() -> Dict[str, int]:
    """Live segment/attachment counts (for manifests and debugging)."""
    with _ATTACH_LOCK:
        attached = len(_ATTACHED)
    with SHARED_STORE._lock:
        owned = len(SHARED_STORE._owned)
    return {"owned_segments": owned, "attached_segments": attached}


__all__ = [
    "DESIGN_ARRAY_FIELDS",
    "InlineTensorHandle",
    "InvariantsShare",
    "Lease",
    "PORTFOLIO_ARRAY_FIELDS",
    "PortfolioShare",
    "SEGMENT_PREFIX",
    "SHARED_STORE",
    "SHM_ENV",
    "SharedInvariantStore",
    "SharedTensorHandle",
    "share_design_invariants",
    "share_portfolio",
    "shm_enabled",
    "shm_usage",
]
