"""Configurable parallel map for sweep/search workloads.

The analysis layers (``analysis.sweep``, ``analysis.search``, the figure
experiments) fan out over independent evaluation points. This module
provides one ordered map primitive with three executors:

* ``"serial"`` (default) -- a plain loop; always available, zero overhead.
* ``"thread"`` -- ``ThreadPoolExecutor``; useful when evaluations release
  the GIL (NumPy-heavy batch kernels) or block on I/O.
* ``"process"`` -- ``ProcessPoolExecutor``; for CPU-bound Python
  evaluations. Requires picklable functions/items; anything unpicklable
  (lambdas, closures over models) falls back to serial so sweeps never
  crash over an executor choice. Every degradation emits a
  ``RuntimeWarning`` naming the reason, so a sweep that silently lost
  its parallelism is observable (and testable with ``pytest.warns``).

Results always come back in input order and exceptions raised *by the
mapped function* propagate unchanged, so ``parallel_map(f, xs)`` is a
drop-in for ``[f(x) for x in xs]`` under every executor.

Seeded workloads pass ``seed=``: each item then receives its own
``numpy.random.Generator`` derived from ``SeedSequence(seed).spawn``, and
``function`` is called as ``function(item, rng)``. Because the child
sequence for item ``i`` depends only on ``(seed, i)`` -- never on which
worker ran it or in what order -- results are bit-for-bit identical
across all three executors.
"""

from __future__ import annotations

import pickle
import warnings
from typing import Any, Callable, Iterable, List, Optional, Tuple, TypeVar

from ..errors import InvalidParameterError

T = TypeVar("T")
R = TypeVar("R")

#: Recognized executor names.
EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


class _SeededCall:
    """Picklable adapter turning ``f(item, rng)`` into ``g((item, seq))``.

    The ``SeedSequence`` travels with the item so the Generator is
    constructed inside the worker; Generators themselves need not cross
    the process boundary.
    """

    def __init__(self, function: Callable[[T, Any], R]) -> None:
        self.function = function

    def __call__(self, pair: Tuple[T, Any]) -> R:
        import numpy as np

        item, seq = pair
        return self.function(item, np.random.default_rng(seq))


def parallel_map(
    function: Callable[..., R],
    items: Iterable[T],
    executor: str = "serial",
    max_workers: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[R]:
    """Apply ``function`` to every item, preserving input order.

    Parameters
    ----------
    function:
        The per-item evaluation. Must be picklable for the ``"process"``
        executor (module-level functions); otherwise the call degrades to
        serial execution.
    items:
        The evaluation points (consumed eagerly).
    executor:
        One of :data:`EXECUTORS`.
    max_workers:
        Worker count for the pooled executors; ``None`` uses the
        executor's default.
    seed:
        When given, item ``i`` is evaluated as ``function(item, rng_i)``
        where ``rng_i`` is a ``numpy.random.Generator`` spawned from
        ``SeedSequence(seed)``. The stream assigned to an item depends
        only on the seed and the item's position, making seeded sweeps
        deterministic across executors.
    """
    if executor not in EXECUTORS:
        raise InvalidParameterError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if max_workers is not None and max_workers < 1:
        raise InvalidParameterError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    points: List[Any] = list(items)
    if seed is not None:
        import numpy as np

        children = np.random.SeedSequence(seed).spawn(len(points))
        points = list(zip(points, children))
        function = _SeededCall(function)
    if executor == "serial" or len(points) <= 1:
        return [function(item) for item in points]

    if executor == "thread":
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(function, points))

    # Process executor: verify the payload actually pickles before paying
    # for a pool, and degrade to serial when the platform can't fork or
    # the pool breaks -- a sweep should never fail over an executor choice.
    if not _picklable(function, points):
        _warn_fallback(
            "the mapped function or its items are not picklable"
        )
        return [function(item) for item in points]
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(function, points))
    except (BrokenProcessPool, OSError, ImportError) as error:
        _warn_fallback(f"the worker pool failed ({type(error).__name__}: {error})")
        return [function(item) for item in points]


def _warn_fallback(reason: str) -> None:
    """Flag a degraded run: the caller asked for processes, got serial."""
    warnings.warn(
        f"parallel_map falling back from the process executor to serial "
        f"execution: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


__all__ = ["EXECUTORS", "parallel_map"]
