"""Configurable parallel map for sweep/search workloads.

The analysis layers (``analysis.sweep``, ``analysis.search``, the figure
experiments) fan out over independent evaluation points. This module
provides one ordered map primitive with three executors:

* ``"serial"`` (default) -- a plain loop; always available, zero overhead.
* ``"thread"`` -- ``ThreadPoolExecutor``; useful when evaluations release
  the GIL (NumPy-heavy batch kernels) or block on I/O.
* ``"process"`` -- ``ProcessPoolExecutor``; for CPU-bound Python
  evaluations. Requires picklable functions/items; anything unpicklable
  (lambdas, closures over models) falls back to serial so sweeps never
  crash over an executor choice. Every degradation emits a
  ``RuntimeWarning`` naming the reason, so a sweep that silently lost
  its parallelism is observable (and testable with ``pytest.warns``).

Results always come back in input order and exceptions raised *by the
mapped function* propagate unchanged, so ``parallel_map(f, xs)`` is a
drop-in for ``[f(x) for x in xs]`` under every executor.

Seeded workloads pass ``seed=``: each item then receives its own
``numpy.random.Generator`` derived from ``SeedSequence(seed).spawn``, and
``function`` is called as ``function(item, rng)``. Because the child
sequence for item ``i`` depends only on ``(seed, i)`` -- never on which
worker ran it or in what order -- results are bit-for-bit identical
across all three executors.

Observability: every degradation additionally increments the
``executor_fallback_total`` counter (labelled by requested/chosen
executor), and with a tracer installed (:func:`repro.obs.install_tracer`)
each call records a ``parallel_map`` span with one ``parallel_map.item``
child span per evaluation -- including evaluations that ran in process
workers, whose spans are recorded in the worker and adopted back into
the parent tracer with the results.
"""

from __future__ import annotations

import pickle
import threading
import warnings
from collections import OrderedDict
from typing import Any, Callable, Iterable, List, Optional, Tuple, TypeVar

from ..errors import InvalidParameterError
from ..obs import trace as _trace
from ..obs.instrument import record_fallback

T = TypeVar("T")
R = TypeVar("R")

#: Recognized executor names.
EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")

#: Memoized picklability verdicts keyed by (function, payload types).
#: A repeated sweep used to pay a full pickle.dumps of every chunk's
#: payload per call just to *probe*; the verdict only depends on the
#: mapped function and the item types, so it is cached (LRU-bounded).
_PROBE_CACHE: "OrderedDict[tuple, bool]" = OrderedDict()
_PROBE_CACHE_SIZE = 1024
_PROBE_LOCK = threading.Lock()


def clear_probe_cache() -> None:
    """Drop memoized picklability verdicts (mainly for tests)."""
    with _PROBE_LOCK:
        _PROBE_CACHE.clear()


def _item_type_key(item: object) -> object:
    if isinstance(item, tuple):
        return (tuple, tuple(type(element) for element in item))
    return type(item)


def _probe_key(function: object, points: List[Any]) -> tuple:
    """Cache key: the unwrapped mapped function plus the payload types."""
    target = function
    for _ in range(8):
        inner = getattr(target, "function", None)
        if inner is None:
            inner = getattr(target, "func", None)
        if inner is None or not callable(inner):
            break
        target = inner
    function_key = (
        type(target),
        getattr(target, "__module__", None),
        getattr(target, "__qualname__", None),
    )
    return function_key, frozenset(_item_type_key(p) for p in points)


def _picklable(function: object, points: List[Any]) -> bool:
    """Probe (memoized) whether the payload survives pickling.

    Verdicts are cached per (function, item types): a payload type whose
    picklability varies by *content* can reuse a stale positive verdict,
    in which case the pool's own ``PicklingError`` is caught downstream
    and the call still degrades to serial.
    """
    key = _probe_key(function, points)
    with _PROBE_LOCK:
        cached = _PROBE_CACHE.get(key)
        if cached is not None:
            _PROBE_CACHE.move_to_end(key)
            return cached
    verdict = True
    try:
        pickle.dumps(function)
        for obj in points:
            pickle.dumps(obj)
    except Exception:
        verdict = False
    with _PROBE_LOCK:
        _PROBE_CACHE[key] = verdict
        while len(_PROBE_CACHE) > _PROBE_CACHE_SIZE:
            _PROBE_CACHE.popitem(last=False)
    return verdict


class _SeededCall:
    """Picklable adapter turning ``f(item, rng)`` into ``g((item, seq))``.

    The ``SeedSequence`` travels with the item so the Generator is
    constructed inside the worker; Generators themselves need not cross
    the process boundary.
    """

    def __init__(self, function: Callable[[T, Any], R]) -> None:
        self.function = function

    def __call__(self, pair: Tuple[T, Any]) -> R:
        import numpy as np

        item, seq = pair
        return self.function(item, np.random.default_rng(seq))


class _SpanCapturingCall:
    """Picklable adapter recording worker-side spans for the parent.

    Process workers cannot share the parent's tracer, so each call runs
    under a fresh local :class:`~repro.obs.trace.Tracer` (installed for
    the duration, so nested kernel spans are captured too) and returns
    ``(result, spans)``; the parent merges the spans via ``adopt`` and
    unwraps the results.
    """

    def __init__(
        self, function: Callable[[Any], R], parent_id: Optional[str]
    ) -> None:
        self.function = function
        self.parent_id = parent_id

    def __call__(self, item: Any) -> Tuple[R, Tuple[Any, ...]]:
        local = _trace.Tracer()
        previous = _trace.current_tracer()
        _trace.install_tracer(local)
        try:
            with local.span("parallel_map.item", parent_id=self.parent_id):
                result = self.function(item)
        finally:
            if previous is None:
                _trace.uninstall_tracer()
            else:
                _trace.install_tracer(previous)
        return result, local.spans()


def parallel_map(
    function: Callable[..., R],
    items: Iterable[T],
    executor: str = "serial",
    max_workers: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[R]:
    """Apply ``function`` to every item, preserving input order.

    Parameters
    ----------
    function:
        The per-item evaluation. Must be picklable for the ``"process"``
        executor (module-level functions); otherwise the call degrades to
        serial execution.
    items:
        The evaluation points (consumed eagerly).
    executor:
        One of :data:`EXECUTORS`.
    max_workers:
        Worker count for the pooled executors; ``None`` uses the
        executor's default.
    seed:
        When given, item ``i`` is evaluated as ``function(item, rng_i)``
        where ``rng_i`` is a ``numpy.random.Generator`` spawned from
        ``SeedSequence(seed)``. The stream assigned to an item depends
        only on the seed and the item's position, making seeded sweeps
        deterministic across executors.
    """
    if executor not in EXECUTORS:
        raise InvalidParameterError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if max_workers is not None and max_workers < 1:
        raise InvalidParameterError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    points: List[Any] = list(items)
    if seed is not None:
        import numpy as np

        children = np.random.SeedSequence(seed).spawn(len(points))
        points = list(zip(points, children))
        function = _SeededCall(function)
    tracer = _trace.current_tracer()
    if tracer is None:
        return _dispatch(function, points, executor, max_workers)
    with tracer.span(
        "parallel_map",
        executor=executor,
        n_items=len(points),
        seeded=seed is not None,
    ) as root:
        return _dispatch(
            function,
            points,
            executor,
            max_workers,
            tracer=tracer,
            parent_id=root.span_id,
        )


def _dispatch(
    function: Callable[[Any], R],
    points: List[Any],
    executor: str,
    max_workers: Optional[int],
    tracer: Optional[Any] = None,
    parent_id: Optional[str] = None,
) -> List[R]:
    """Run the map on the chosen executor (tracing when ``tracer`` given).

    With a tracer, in-process evaluations (serial/thread, and the serial
    fallback) each run under a ``parallel_map.item`` span parented -- by
    explicit id, since worker threads have their own span stacks -- to
    the enclosing ``parallel_map`` span; process workers record the same
    shape locally and the spans are adopted with the results.
    """
    if tracer is None:
        item_function = function
    else:

        def item_function(item: Any) -> R:
            with tracer.span("parallel_map.item", parent_id=parent_id):
                return function(item)

    if executor == "serial" or len(points) <= 1:
        return [item_function(item) for item in points]

    if executor == "thread":
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(item_function, points))

    # Process executor: verify the payload actually pickles before paying
    # for a pool, and degrade to serial when the platform can't fork or
    # the pool breaks -- a sweep should never fail over an executor choice.
    if not _picklable(function, points):
        _warn_fallback(
            "the mapped function or its items are not picklable"
        )
        return [item_function(item) for item in points]
    worker: Callable[[Any], Any] = (
        function if tracer is None else _SpanCapturingCall(function, parent_id)
    )
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            mapped = list(pool.map(worker, points))
    except (
        BrokenProcessPool,
        OSError,
        ImportError,
        pickle.PicklingError,
    ) as error:
        _warn_fallback(f"the worker pool failed ({type(error).__name__}: {error})")
        return [item_function(item) for item in points]
    if tracer is None:
        return mapped
    results: List[R] = []
    for result, spans in mapped:
        results.append(result)
        tracer.adopt(spans)
    return results


def _warn_fallback(reason: str) -> None:
    """Flag a degraded run: the caller asked for processes, got serial.

    Emits the ``RuntimeWarning`` (naming the chosen executor) and bumps
    the ``executor_fallback_total{requested="process",chosen="serial"}``
    counter, so degradations show up in metrics dumps as well as logs.
    """
    record_fallback("process", "serial")
    warnings.warn(
        f"parallel_map falling back from the process executor to serial "
        f"execution (chosen executor: 'serial'): {reason}",
        RuntimeWarning,
        stacklevel=4,
    )


__all__ = ["EXECUTORS", "parallel_map"]
