"""Scenario-axis vectorization: one fused (scenarios x designs x samples) pass.

:mod:`repro.engine.portfolio` fused the design axis; every multi-scenario
study still pays a Python loop of per-scenario ``portfolio_*`` calls,
re-resolving the sampled supply, re-deriving the D0-dependent yield
tensors and re-running the full CAS perturbation sweep for each scenario.
This module promotes the scenario axis to a tensor dimension:
:func:`compile_scenarios` stacks named :class:`Scenario` transforms into
a structure-of-arrays :class:`ScenarioSet`, and :func:`scenario_ttm` /
:func:`scenario_cas` / :func:`scenario_cost` /
:func:`scenario_evaluate` evaluate the full ``(n_scenarios, n_designs,
n_samples)`` cube in one call, bit-for-bit identical to the looped
per-scenario oracle (``apply_scenario`` + ``portfolio_*``).

Where the fused speedup comes from (the looped oracle re-pays all of it
per scenario):

* **D0 group sharing** — scenarios sharing a defect-density multiplier
  share bit-identical yield/wafer/testing tensors (the expensive
  ``pow`` + ``np.add.at`` pass), computed once per unique multiplier;
* **one supply + baseline** — TTM and CAS share one resolved supply and
  one baseline total-weeks pass per scenario instead of two;
* **leave-one-out CAS** — perturbing node ``p`` only changes node
  ``p``'s ready time, and the node reduction is a *max* (exact in
  floating point, so reassociation is bitwise safe): the fused CAS
  recomputes one node row per perturbation and recombines it with
  precomputed leave-one-out maxima instead of re-running the full
  ``(designs, nodes, samples)`` pass ``2 x max_nodes`` times;
* **cost deduplication** — chip-creation cost depends only on the
  demand and D0 transforms, so scenarios sharing that pair share one
  bit-identical cost tensor.

Common random numbers
---------------------
The base sample arrays are shared across *both* the design and scenario
axes: sample ``s`` applies the same drawn world to every design under
every scenario, so scenario deltas (stress minus baseline per sample)
are low-variance paired comparisons. Base supply arrays must be scalars
or 1-D sample vectors (the portfolio CRN rule); ``n_chips`` may carry a
per-design leading axis. Scenario transforms are scalar multipliers (a
per-node mapping for capacity), applied identically in the fused path
and the oracle via :func:`apply_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..obs.instrument import observed_kernel
from ..ttm.model import DEFAULT_ENGINEERS, TTMModel
from .batch import _WAFERS_PER_NORMALIZED_UNIT
from .compiled import get_backend
from .portfolio import (
    DEFAULT_RELATIVE_STEP,
    PortfolioInvariants,
    _portfolio_cost_from_tensors,
    _portfolio_quantities,
    _portfolio_supply,
    _sample_array,
    _SupplyScratch,
    compile_portfolio,
    portfolio_cost,
)

ArrayLike = Union[float, Sequence[float], np.ndarray]


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class Scenario:
    """One named stress transform over the sampled supply/demand world.

    Every field is a multiplicative scale on the corresponding base
    sample array (``queue_add_weeks`` is additive, applied after the
    scale). ``capacity_scale`` may be a per-node mapping — e.g. a
    fab-region outage that only hits ``7nm`` — in which case unnamed
    nodes keep multiplier 1.0. Identity transforms (scale 1.0, add 0.0)
    pass the base samples through untouched, so the ``baseline``
    scenario reproduces a raw ``portfolio_*`` call bit-for-bit.
    """

    name: str
    description: str = ""
    demand_scale: float = 1.0
    capacity_scale: Union[float, Mapping[str, float]] = 1.0
    queue_scale: float = 1.0
    queue_add_weeks: float = 0.0
    d0_scale: float = 1.0
    wafer_rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("scenario name must be non-empty")
        for label, value in (
            ("demand_scale", self.demand_scale),
            ("queue_scale", self.queue_scale),
            ("d0_scale", self.d0_scale),
            ("wafer_rate_scale", self.wafer_rate_scale),
        ):
            if not float(value) > 0.0:
                raise InvalidParameterError(
                    f"scenario {self.name!r}: {label} must be positive, "
                    f"got {value}"
                )
        if not float(self.queue_add_weeks) >= 0.0:
            raise InvalidParameterError(
                f"scenario {self.name!r}: queue_add_weeks must be >= 0, "
                f"got {self.queue_add_weeks}"
            )
        if isinstance(self.capacity_scale, Mapping):
            frozen = tuple(
                (str(node), float(scale))
                for node, scale in self.capacity_scale.items()
            )
            for node, scale in frozen:
                if not scale > 0.0:
                    raise InvalidParameterError(
                        f"scenario {self.name!r}: capacity scale for "
                        f"{node!r} must be positive, got {scale}"
                    )
            object.__setattr__(self, "capacity_scale", dict(frozen))
        elif not float(self.capacity_scale) > 0.0:
            raise InvalidParameterError(
                f"scenario {self.name!r}: capacity_scale must be positive, "
                f"got {self.capacity_scale}"
            )

    @property
    def capacity_nodes(self) -> Tuple[str, ...]:
        """Node names with a per-node capacity multiplier."""
        if isinstance(self.capacity_scale, Mapping):
            return tuple(self.capacity_scale)
        return ()

    def capacity_multiplier(self, node: str) -> float:
        """The capacity multiplier this scenario applies to ``node``."""
        if isinstance(self.capacity_scale, Mapping):
            return float(self.capacity_scale.get(node, 1.0))
        return float(self.capacity_scale)


@dataclass(frozen=True)
class ScenarioSet:
    """Structure-of-arrays stack of compiled scenario transforms.

    Per-scenario vectors have shape ``(n_scenarios,)``;
    ``capacity_node_scale`` is ``(n_scenarios, len(capacity_nodes))``
    and holds the *effective* per-node multiplier (a scenario's global
    multiplier where it names no override), so column lookups never
    branch. ``queue_identity`` marks scenarios whose queue transform is
    the exact identity (scale 1.0, add 0.0) — those pass the base
    samples through untouched instead of computing ``q*1.0 + 0.0``.
    """

    names: Tuple[str, ...]
    demand_scale: np.ndarray
    capacity_scale: np.ndarray
    capacity_nodes: Tuple[str, ...]
    capacity_node_scale: np.ndarray
    queue_scale: np.ndarray
    queue_add_weeks: np.ndarray
    queue_identity: np.ndarray
    d0_scale: np.ndarray
    wafer_rate_scale: np.ndarray
    scenarios: Tuple[Scenario, ...] = field(repr=False)

    @property
    def n_scenarios(self) -> int:
        return len(self.names)

    def capacity_multiplier(self, k: int, node: str) -> float:
        """Effective capacity multiplier of scenario ``k`` for ``node``."""
        try:
            column = self.capacity_nodes.index(node)
        except ValueError:
            return float(self.capacity_scale[k])
        return float(self.capacity_node_scale[k, column])

    def subset(self, indices: Sequence[int]) -> "ScenarioSet":
        """A new set holding the scenarios at ``indices`` (that order)."""
        return compile_scenarios([self.scenarios[int(i)] for i in indices])


def compile_scenarios(
    scenarios: Sequence[Union[Scenario, "ScenarioSet"]],
) -> ScenarioSet:
    """Stack :class:`Scenario` transforms into one aligned SoA set."""
    if isinstance(scenarios, ScenarioSet):
        return scenarios
    flat = []
    for entry in scenarios:
        if isinstance(entry, ScenarioSet):
            flat.extend(entry.scenarios)
        else:
            flat.append(entry)
    if not flat:
        raise InvalidParameterError(
            "scenario set must contain at least one scenario"
        )
    names = tuple(s.name for s in flat)
    if len(set(names)) != len(names):
        raise InvalidParameterError(
            "scenario names must be unique within a set"
        )
    nodes: Tuple[str, ...] = ()
    for s in flat:
        for node in s.capacity_nodes:
            if node not in nodes:
                nodes = nodes + (node,)
    k = len(flat)
    cap_global = np.empty(k)
    cap_node = np.empty((k, len(nodes)))
    for i, s in enumerate(flat):
        base = (
            1.0 if isinstance(s.capacity_scale, Mapping)
            else float(s.capacity_scale)
        )
        cap_global[i] = base
        for j, node in enumerate(nodes):
            cap_node[i, j] = s.capacity_multiplier(node) if isinstance(
                s.capacity_scale, Mapping
            ) else base
    queue_scale = np.asarray([s.queue_scale for s in flat], dtype=float)
    queue_add = np.asarray([s.queue_add_weeks for s in flat], dtype=float)
    return ScenarioSet(
        names=names,
        demand_scale=_readonly(
            np.asarray([s.demand_scale for s in flat], dtype=float)
        ),
        capacity_scale=_readonly(cap_global),
        capacity_nodes=nodes,
        capacity_node_scale=_readonly(cap_node),
        queue_scale=_readonly(queue_scale),
        queue_add_weeks=_readonly(queue_add),
        queue_identity=_readonly(
            (queue_scale == 1.0) & (queue_add == 0.0)
        ),
        d0_scale=_readonly(
            np.asarray([s.d0_scale for s in flat], dtype=float)
        ),
        wafer_rate_scale=_readonly(
            np.asarray([s.wafer_rate_scale for s in flat], dtype=float)
        ),
        scenarios=tuple(flat),
    )


def _scenario_has_capacity_transform(
    scenario_set: ScenarioSet, k: int
) -> bool:
    if scenario_set.capacity_scale[k] != 1.0:
        return True
    if scenario_set.capacity_nodes:
        return bool(
            np.any(scenario_set.capacity_node_scale[k, :] != 1.0)
        )
    return False


def apply_scenario(
    scenario_set: ScenarioSet,
    k: int,
    *,
    n_chips: ArrayLike,
    capacity: Optional[ArrayLike] = None,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    nodes: Sequence[str] = (),
    conditions=None,
) -> Dict[str, object]:
    """Scenario ``k``'s transform of the base draws, as portfolio kwargs.

    This is the *definition* of a scenario's semantics: the fused cube
    is pinned bit-for-bit against ``portfolio_*(**apply_scenario(...))``
    looped over ``k``. Identity components pass the base values through
    untouched (including ``None``). ``nodes`` (the union of the
    portfolio's process names) and ``conditions`` (the foundry market
    conditions) are needed only when a scenario carries per-node
    capacity multipliers or scales an unspecified (``None``) capacity
    base.
    """
    out: Dict[str, object] = {}
    dm = float(scenario_set.demand_scale[k])
    out["n_chips"] = n_chips if dm == 1.0 else np.asarray(
        n_chips, dtype=float
    ) * dm

    per_node = scenario_set.capacity_nodes and bool(
        np.any(scenario_set.capacity_node_scale[k, :] != scenario_set.capacity_scale[k])
    )
    if not _scenario_has_capacity_transform(scenario_set, k):
        out["capacity"] = capacity
    elif not per_node and capacity is not None:
        cm = float(scenario_set.capacity_scale[k])
        out["capacity"] = np.asarray(capacity, dtype=float) * cm
    else:
        # Per-node multipliers (or a scaled None base) need the full
        # mapping form: every portfolio node gets base * multiplier so
        # the supply resolver sees one consistent override set.
        if not nodes:
            raise InvalidParameterError(
                f"scenario {scenario_set.names[k]!r} applies per-node "
                "capacity multipliers; pass the portfolio's node names"
            )
        mapping: Dict[str, object] = {}
        for node in nodes:
            mult = scenario_set.capacity_multiplier(k, node)
            if capacity is not None:
                mapping[node] = np.asarray(capacity, dtype=float) * mult
            else:
                if conditions is None:
                    raise InvalidParameterError(
                        f"scenario {scenario_set.names[k]!r} scales an "
                        "unspecified capacity base; pass the foundry "
                        "conditions"
                    )
                fraction = conditions.capacity_for(node)
                if fraction <= 0.0:
                    raise InvalidParameterError(
                        f"node {node!r} has zero effective capacity "
                        f"(fraction {fraction}); time-to-market would "
                        "be unbounded"
                    )
                mapping[node] = fraction * mult
        out["capacity"] = mapping

    if bool(scenario_set.queue_identity[k]):
        out["queue_weeks"] = queue_weeks
    else:
        if queue_weeks is None:
            raise InvalidParameterError(
                f"scenario {scenario_set.names[k]!r} transforms queue "
                "weeks but no queue_weeks samples were provided"
            )
        qm = float(scenario_set.queue_scale[k])
        qa = float(scenario_set.queue_add_weeks[k])
        out["queue_weeks"] = (
            np.asarray(queue_weeks, dtype=float) * qm + qa
        )

    g = float(scenario_set.d0_scale[k])
    if g == 1.0:
        out["d0_scale"] = d0_scale
    elif d0_scale is None:
        out["d0_scale"] = g
    else:
        out["d0_scale"] = np.asarray(d0_scale, dtype=float) * g

    wm = float(scenario_set.wafer_rate_scale[k])
    if wm == 1.0:
        out["wafer_rate_scale"] = wafer_rate_scale
    elif wafer_rate_scale is None:
        out["wafer_rate_scale"] = wm
    else:
        out["wafer_rate_scale"] = (
            np.asarray(wafer_rate_scale, dtype=float) * wm
        )
    return out


@dataclass(frozen=True)
class ScenarioTTMResult:
    """TTM over the (scenarios x designs x samples) cube.

    Slice ``[k]`` equals :func:`~repro.engine.portfolio.portfolio_ttm`
    under scenario ``k``'s transformed samples, to the last bit.
    ``tapeout_weeks`` is scenario-invariant, ``(n_scenarios,
    n_designs)``.
    """

    scenarios: Tuple[str, ...]
    designs: Tuple[str, ...]
    schedule: str
    tapeout_weeks: np.ndarray
    fabrication_weeks: np.ndarray
    total_weeks: np.ndarray


@dataclass(frozen=True)
class ScenarioCASResult:
    """Chip Agility Score over the scenario cube, ``(K, D, S)``."""

    scenarios: Tuple[str, ...]
    designs: Tuple[str, ...]
    processes: Tuple[Tuple[str, ...], ...]
    cas: np.ndarray

    @property
    def normalized(self) -> np.ndarray:
        """CAS in the figures' normalized (kilo-wafer) units."""
        return self.cas / _WAFERS_PER_NORMALIZED_UNIT


@dataclass(frozen=True)
class ScenarioCostResult:
    """Chip-creation cost over the scenario cube.

    NRE terms are scenario-invariant per-design vectors; ``total_usd``
    is the full ``(n_scenarios, n_designs, n_samples)`` cube (NRE +
    manufacturing), deduplicated across scenarios sharing a (demand,
    D0) transform pair.
    """

    scenarios: Tuple[str, ...]
    designs: Tuple[str, ...]
    nre_usd: np.ndarray
    total_usd: np.ndarray


@dataclass(frozen=True)
class ScenarioCubeResult:
    """One fused evaluation of TTM + CAS (+ cost) over the cube."""

    ttm: ScenarioTTMResult
    cas: ScenarioCASResult
    cost: Optional[ScenarioCostResult]

    @property
    def scenarios(self) -> Tuple[str, ...]:
        return self.ttm.scenarios

    @property
    def designs(self) -> Tuple[str, ...]:
        return self.ttm.designs


def _resolve_invariants(
    model: TTMModel,
    designs: Optional[Sequence[ChipDesign]],
    invariants: Optional[PortfolioInvariants],
) -> PortfolioInvariants:
    if invariants is not None:
        return invariants
    return compile_portfolio(
        designs,
        model.foundry.technology,
        engineers=model.engineers,
        alpha=model.alpha,
        edge_corrected=model.edge_corrected,
        block_parallel=model.block_parallel,
    )


def _validate_base(
    capacity: Optional[ArrayLike],
    queue_weeks: Optional[ArrayLike],
    d0_scale: Optional[ArrayLike],
    wafer_rate_scale: Optional[ArrayLike],
) -> None:
    """Reject shapes that would break the cube's CRN contract."""
    if isinstance(capacity, Mapping):
        raise InvalidParameterError(
            "scenario kernels take a global capacity base (scalar or 1-D "
            "samples); per-node structure belongs to the scenarios"
        )
    if capacity is not None:
        _sample_array(capacity, "capacity fraction")
    if queue_weeks is not None:
        _sample_array(queue_weeks, "queue weeks", nonnegative=True)
    if d0_scale is not None:
        _sample_array(d0_scale, "defect density scale")
    if wafer_rate_scale is not None:
        _sample_array(wafer_rate_scale, "wafer rate scale")


class _D0Groups:
    """Per-unique-D0-multiplier wafer/testing tensors, computed once.

    Scenarios sharing a D0 multiplier transform the base draws into
    bit-identical sample arrays, so their derived tensors (the
    expensive yield ``pow`` + ``np.add.at`` accumulations) are shared.
    """

    def __init__(
        self,
        invariants: PortfolioInvariants,
        d0_base: Optional[ArrayLike],
    ):
        self._invariants = invariants
        self._base = d0_base
        # multiplier -> (wafers, testing, yields-or-None); yields is the
        # shared profile_yields pass both tensors were derived from
        # (None on the precompiled identity entry, which never runs it).
        self._cache: Dict[
            float, Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]
        ] = {}

    def tensors(
        self, multiplier: float
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        key = float(multiplier)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        invariants = self._invariants
        if self._base is None and key == 1.0:
            trio: Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]] = (
                invariants.wafers_per_chip[:, :, None],
                invariants.testing_weeks_per_chip[:, None],
                None,
            )
        else:
            if self._base is None:
                scale: ArrayLike = key
            elif key == 1.0:
                scale = self._base
            else:
                scale = np.asarray(self._base, dtype=float) * key
            scale_array = np.asarray(scale, dtype=float)
            if scale_array.ndim == 0:
                scale_array = scale_array.reshape(1)
            yields = invariants.profile_yields(scale_array)
            trio = (
                invariants.wafers_per_chip_at(scale_array, yields=yields),
                invariants.testing_weeks_per_chip_at(
                    scale_array, yields=yields
                ),
                yields,
            )
        self._cache[key] = trio
        return trio


def _evaluate_cube(
    model: TTMModel,
    invariants: PortfolioInvariants,
    scenario_set: ScenarioSet,
    n_chips: ArrayLike,
    capacity: Optional[ArrayLike],
    queue_weeks: Optional[ArrayLike],
    d0_scale: Optional[ArrayLike],
    wafer_rate_scale: Optional[ArrayLike],
    relative_step: float,
    with_cas: bool,
    pw_out: Optional[Dict[Tuple[float, float], np.ndarray]] = None,
    wafers_out: Optional[Dict[float, np.ndarray]] = None,
    yields_out: Optional[Dict[float, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """(tapeout (K, D), fabrication + total (K, D, S), cas or None).

    When ``pw_out`` / ``wafers_out`` / ``yields_out`` are given, the
    NumPy path fills them with each (demand multiplier, D0 multiplier)
    group's ``quantities x wafers`` product and each D0 multiplier's
    wafers-per-chip and profile-yields tensors so
    :func:`scenario_cost` can reuse them (its wafer and testing terms
    start from the very same ``pow`` + multiply).
    """
    _validate_base(capacity, queue_weeks, d0_scale, wafer_rate_scale)
    if with_cas and not 0.0 < relative_step < 1.0:
        raise InvalidParameterError(
            f"relative step must be in (0, 1), got {relative_step}"
        )
    if get_backend().name == "compiled":
        from .compiled.adapters import scenario_eval_from_parts

        return scenario_eval_from_parts(
            model,
            invariants,
            scenario_set,
            n_chips,
            capacity,
            queue_weeks,
            d0_scale,
            wafer_rate_scale,
            relative_step,
            with_cas,
        )

    n_designs, max_nodes = invariants.node_mask.shape
    n_samples = _cube_samples(
        n_chips, capacity, queue_weeks, d0_scale, wafer_rate_scale
    )
    k_total = scenario_set.n_scenarios
    pipelined = model.schedule == "pipelined"
    nodes = _portfolio_nodes(invariants)
    conditions = model.foundry.conditions

    tapeout_out = np.empty((k_total, n_designs))
    fabrication_out = np.empty((k_total, n_designs, n_samples))
    total_out = np.empty((k_total, n_designs, n_samples))
    cas_out = np.empty((k_total, n_designs, n_samples)) if with_cas else None

    # Scenario-invariant terms, hoisted out of the loop. ``tapeout`` and
    # ``prefix`` are the same additions the per-scenario oracle performs,
    # just computed once (identical operands -> identical bits).
    lat3 = invariants.fab_latency_weeks[:, :, None]
    if pipelined:
        tapeout = invariants.max_tapeout_weeks[:, None]
        tap3 = invariants.tapeout_weeks[:, :, None]
    else:
        tapeout = invariants.sequential_tapeout_weeks[:, None]
    prefix = invariants.design_weeks[:, None] + tapeout
    tapeout_out[:] = tapeout[:, 0]

    # Scratch buffers reused across scenarios. Writing ufunc results
    # into preallocated ``out=`` arrays changes only where the bits
    # land, never what they are: each output element is still the same
    # operation on the same operands, so the cube stays pinned
    # bit-for-bit against the looped oracle while the allocator stops
    # paying a fresh multi-megabyte temporary (and its page-zeroing)
    # per op per scenario.
    scratch3 = np.empty((n_designs, max_nodes, n_samples))
    masked = np.empty((n_designs, max_nodes, n_samples))
    total_tmp = np.empty((n_designs, n_samples))
    supply_scratch = _SupplyScratch(
        scaled=np.empty((n_designs, max_nodes, n_samples)),
        rates=np.empty((n_designs, max_nodes, n_samples)),
        backlog=np.empty((n_designs, max_nodes, n_samples)),
        fraction=np.empty((n_designs, max_nodes, n_samples)),
    )
    # Padded/unused node slots, precomputed once: the oracle masks them
    # to -inf before every node-axis max; the fused path copies the
    # full tensor and overwrites just the inactive rows (same cells end
    # up -inf, the active cells are untouched copies).
    inactive2 = ~invariants.node_mask
    any_inactive = bool(inactive2.any())
    inactive_rows = [
        np.flatnonzero(inactive2[:, p]) for p in range(max_nodes)
    ]
    active_rows = [
        np.flatnonzero(invariants.node_mask[:, p])
        for p in range(max_nodes)
    ]
    if with_cas:
        loo = np.empty((n_designs, max_nodes, n_samples))
        running = np.empty((n_designs, n_samples))
        step = np.empty((n_designs, n_samples))
        # The +step/-step panels ride a leading sign axis so every
        # elementwise op in the perturbation chain runs once over both
        # signs (same per-cell operands, half the dispatch overhead).
        eff2 = np.empty((2, n_designs, n_samples))
        drain2 = np.empty((2, n_designs, n_samples))
        pert2 = np.empty((2, n_designs, n_samples))
        slope = np.empty((n_designs, n_samples))
        sens = np.empty((n_designs, n_samples))
        # Scenario-invariant per-node operands, sliced (or gathered for
        # the sparse nodes) once instead of per scenario.
        node_plan = []
        for p in range(max_nodes):
            idx = active_rows[p]
            if idx.size == 0:
                node_plan.append(None)
                continue
            if idx.size <= n_designs // 2:
                sel: Optional[np.ndarray] = idx
                max_rate_p = invariants.max_rate[idx, p, None]
                lat_p = invariants.fab_latency_weeks[idx, p, None]
                tap_p = (
                    invariants.tapeout_weeks[idx, p, None]
                    if pipelined
                    else None
                )
                tapeout_p = tapeout[idx]
                prefix_p = prefix[idx]
            else:
                sel = None
                max_rate_p = invariants.max_rate[:, p, None]
                lat_p = invariants.fab_latency_weeks[:, p, None]
                tap_p = (
                    invariants.tapeout_weeks[:, p, None]
                    if pipelined
                    else None
                )
                tapeout_p = tapeout
                prefix_p = prefix
            node_plan.append(
                (sel, max_rate_p, lat_p, tap_p, tapeout_p, prefix_p)
            )

    d0_groups = _D0Groups(invariants, d0_scale)
    pw_cache: Dict[Tuple[float, float], tuple] = {}

    for k in range(k_total):
        kwargs = apply_scenario(
            scenario_set,
            k,
            n_chips=n_chips,
            capacity=capacity,
            queue_weeks=queue_weeks,
            d0_scale=d0_scale,
            wafer_rate_scale=wafer_rate_scale,
            nodes=nodes,
            conditions=conditions,
        )
        g = float(scenario_set.d0_scale[k])
        dm = float(scenario_set.demand_scale[k])
        pw_key = (dm, g)
        cached = pw_cache.get(pw_key)
        if cached is None:
            wafers, testing, _ = d0_groups.tensors(g)
            quantities_node, quantities_design = _portfolio_quantities(
                kwargs["n_chips"], n_designs
            )
            # The first multiply of ``quantities * wafers / rates`` and
            # the packaging tail; both invariant across this
            # (demand, D0) scenario group. The trailing dict lazily
            # collects per-sparse-node packaging row subsets.
            cached = (
                quantities_node * wafers,
                model.tap_latency_weeks
                + quantities_design * testing
                + quantities_design
                * invariants.assembly_weeks_per_chip[:, None],
                {},
            )
            pw_cache[pw_key] = cached
        production_load, packaging, packaging_subs = cached
        # The resolved supply lands in reusable scratch buffers (same
        # ufuncs, same operands, preallocated out= targets) and is
        # consumed fully within this iteration.
        supply = _portfolio_supply(
            model,
            invariants,
            kwargs["capacity"],
            queue_weeks=kwargs["queue_weeks"],
            d0_scale=None,
            wafer_rate_scale=kwargs["wafer_rate_scale"],
            scratch=supply_scratch,
        )
        rates = supply.rates
        np.divide(supply.backlog, rates, out=masked)  # queue drain
        np.divide(production_load, rates, out=scratch3)  # production
        np.add(masked, scratch3, out=masked)
        np.add(masked, lat3, out=masked)  # node totals
        if pipelined:
            np.add(tap3, masked, out=masked)  # node-ready times
        if any_inactive:
            masked[inactive2] = -np.inf
        fabrication = fabrication_out[k]
        if with_cas:
            # Leave-one-out node maxima: the node reduction is a max,
            # which is exact in floating point (a pure selection), so
            # recombining a perturbed row with the other rows' running
            # max reproduces the full re-reduction bit-for-bit. The
            # forward scan's final running max IS that full reduction —
            # the same sequential maximum chain ``np.max(masked,
            # axis=1)`` performs, seeded with -inf — so the baseline
            # fabrication reduction rides along for free.
            running.fill(-np.inf)
            for p in range(max_nodes):
                loo[:, p, :] = running
                np.maximum(running, masked[:, p, :], out=running)
            np.copyto(fabrication, running)
            running.fill(-np.inf)
            for p in range(max_nodes - 1, -1, -1):
                np.maximum(loo[:, p, :], running, out=loo[:, p, :])
                np.maximum(running, masked[:, p, :], out=running)
        else:
            np.max(masked, axis=1, out=fabrication)
        if pipelined:
            np.subtract(fabrication, tapeout, out=fabrication)
        np.add(prefix, fabrication, out=total_tmp)
        np.add(total_tmp, packaging, out=total_out[k])
        if not with_cas:
            continue

        # Per-node central differences. Designs not using node ``p``
        # see both perturbed totals unchanged, so their slope
        # contribution is exactly +0.0 and ``x + 0.0 == x`` bitwise for
        # the non-negative sensitivity accumulator: those rows can be
        # skipped outright. Node positions most designs share run on
        # the full (designs, samples) panel (with a row fix-up for the
        # stragglers); sparse positions gather just the active rows.
        sens.fill(0.0)
        for p in range(max_nodes):
            plan = node_plan[p]
            if plan is None:
                continue
            sel, max_rate, lat_p, tap_p, tapeout_p, prefix_p = plan
            if sel is not None:
                n_act = sel.size
                row = rates[sel, p, :]
                backlog_p = supply.backlog[sel, p, :]
                load_p = (
                    production_load[sel, p, :]
                    if production_load.ndim == 3
                    else production_load
                )
                loo_p = loo[sel, p, :]
                packaging_p = packaging_subs.get(p)
                if packaging_p is None:
                    packaging_p = (
                        packaging[sel]
                        if packaging.ndim == 2
                        else packaging
                    )
                    packaging_subs[p] = packaging_p
                step_p = step[:n_act]
                slope_p = slope[:n_act]
                eff_p = eff2[:, :n_act]
                drain_p = drain2[:, :n_act]
                pert_p = pert2[:, :n_act]
            else:
                n_act = n_designs
                row = rates[:, p, :]
                backlog_p = supply.backlog[:, p, :]
                load_p = (
                    production_load[:, p, :]
                    if production_load.ndim == 3
                    else production_load
                )
                loo_p = loo[:, p, :]
                packaging_p = packaging
                step_p, slope_p = step, slope
                eff_p, drain_p, pert_p = eff2, drain2, pert2
            np.multiply(row, relative_step, out=step_p)
            np.add(row, step_p, out=eff_p[0])
            np.subtract(row, step_p, out=eff_p[1])
            # Mirror the scalar path's rate -> fraction -> rate round
            # trip (conditions store fractions).
            np.divide(eff_p, max_rate, out=eff_p)
            np.multiply(max_rate, eff_p, out=eff_p)
            np.divide(backlog_p, eff_p, out=drain_p)  # queue drain
            np.divide(load_p, eff_p, out=eff_p)  # production
            np.add(drain_p, eff_p, out=eff_p)
            np.add(eff_p, lat_p, out=eff_p)  # perturbed node totals
            if pipelined:
                np.add(tap_p, eff_p, out=eff_p)
            # Perturbed fab max. For designs not using node ``p`` the
            # oracle takes max(loo, -inf) == loo (every active node's
            # ready time is finite), so overwriting those rows with the
            # leave-one-out max is the same bits as masking before the
            # maximum.
            np.maximum(loo_p, eff_p, out=pert_p)
            rows = inactive_rows[p]
            if sel is None and rows.size:
                pert_p[:, rows] = loo_p[rows]
            if pipelined:
                np.subtract(pert_p, tapeout_p, out=pert_p)
            np.add(prefix_p, pert_p, out=pert_p)
            np.add(pert_p, packaging_p, out=pert_p)
            np.subtract(pert_p[0], pert_p[1], out=slope_p)
            np.multiply(2.0, step_p, out=step_p)
            np.divide(slope_p, step_p, out=slope_p)  # central slope
            np.absolute(slope_p, out=slope_p)
            if sel is not None:
                sens[sel] += slope_p
            else:
                np.add(sens, slope_p, out=sens)
        row_positive = np.all(
            sens > 0.0, axis=tuple(range(1, sens.ndim))
        )
        if not np.all(row_positive):
            bad = invariants.designs[int(np.argmin(row_positive))]
            raise InvalidParameterError(
                f"design {bad!r} has zero TTM sensitivity on all nodes "
                f"under scenario {scenario_set.names[k]!r}; CAS is "
                "unbounded (check the production volume is non-trivial)"
            )
        np.divide(1.0, sens, out=cas_out[k])

    if pw_out is not None:
        for key, (load, _packaging, _subs) in pw_cache.items():
            pw_out[key] = load
    if wafers_out is not None or yields_out is not None:
        for g_key, (wafers_g, _testing_g, yields_g) in (
            d0_groups._cache.items()
        ):
            if d0_scale is None and g_key == 1.0:
                # The identity entry is the stored invariant tensor;
                # the cost oracle re-derives it through
                # ``wafers_per_chip_at(1.0)``, which is not pinned to
                # the stored bits — don't lend it (yields_g is None
                # there anyway).
                continue
            if wafers_out is not None:
                wafers_out[g_key] = wafers_g
            if yields_out is not None and yields_g is not None:
                yields_out[g_key] = yields_g
    return tapeout_out, fabrication_out, total_out, cas_out


def _portfolio_nodes(invariants: PortfolioInvariants) -> Tuple[str, ...]:
    nodes: Tuple[str, ...] = ()
    for processes in invariants.processes:
        for name in processes:
            if name not in nodes:
                nodes = nodes + (name,)
    return nodes


def _cube_samples(
    n_chips: ArrayLike,
    *arrays: Optional[ArrayLike],
) -> int:
    """The cube's trailing sample-axis extent."""
    extents = [np.shape(np.asarray(n_chips, dtype=float))[-1:] or (1,)]
    for value in arrays:
        if value is not None:
            extents.append(np.shape(np.asarray(value, dtype=float)) or (1,))
    return int(np.broadcast_shapes(*extents)[0])


@observed_kernel("engine.scenario_ttm", lambda r: r.total_weeks.size)
def scenario_ttm(
    model: TTMModel,
    designs: Optional[Sequence[ChipDesign]],
    n_chips: ArrayLike,
    scenarios: Union[ScenarioSet, Sequence[Scenario]],
    capacity: Optional[ArrayLike] = None,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    invariants: Optional[PortfolioInvariants] = None,
) -> ScenarioTTMResult:
    """Vectorized TTM over the full scenario cube in one call.

    Slice ``k`` is pinned bit-for-bit against
    ``portfolio_ttm(**apply_scenario(scenarios, k, ...))``.
    """
    invariants = _resolve_invariants(model, designs, invariants)
    scenario_set = compile_scenarios(scenarios)
    tapeout, fabrication, total, _ = _evaluate_cube(
        model,
        invariants,
        scenario_set,
        n_chips,
        capacity,
        queue_weeks,
        d0_scale,
        wafer_rate_scale,
        DEFAULT_RELATIVE_STEP,
        with_cas=False,
    )
    return ScenarioTTMResult(
        scenarios=scenario_set.names,
        designs=invariants.designs,
        schedule=model.schedule,
        tapeout_weeks=tapeout,
        fabrication_weeks=fabrication,
        total_weeks=total,
    )


@observed_kernel("engine.scenario_cas", lambda r: r.cas.size)
def scenario_cas(
    model: TTMModel,
    designs: Optional[Sequence[ChipDesign]],
    n_chips: ArrayLike,
    scenarios: Union[ScenarioSet, Sequence[Scenario]],
    capacity: Optional[ArrayLike] = None,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    invariants: Optional[PortfolioInvariants] = None,
) -> ScenarioCASResult:
    """Vectorized CAS over the full scenario cube in one call."""
    invariants = _resolve_invariants(model, designs, invariants)
    scenario_set = compile_scenarios(scenarios)
    _, _, _, cas = _evaluate_cube(
        model,
        invariants,
        scenario_set,
        n_chips,
        capacity,
        queue_weeks,
        d0_scale,
        wafer_rate_scale,
        relative_step,
        with_cas=True,
    )
    return ScenarioCASResult(
        scenarios=scenario_set.names,
        designs=invariants.designs,
        processes=invariants.processes,
        cas=cas,
    )


@observed_kernel("engine.scenario_cost", lambda r: r.total_usd.size)
def scenario_cost(
    cost_model: CostModel,
    designs: Optional[Sequence[ChipDesign]],
    n_chips: ArrayLike,
    scenarios: Union[ScenarioSet, Sequence[Scenario]],
    d0_scale: Optional[ArrayLike] = None,
    engineers: int = DEFAULT_ENGINEERS,
    invariants: Optional[PortfolioInvariants] = None,
    _production_load: Optional[
        Mapping[Tuple[float, float], np.ndarray]
    ] = None,
    _wafers: Optional[Mapping[float, np.ndarray]] = None,
    _yields: Optional[Mapping[float, np.ndarray]] = None,
) -> ScenarioCostResult:
    """Chip-creation cost over the cube, deduplicated per (demand, D0).

    Cost depends only on the demand and defect-density transforms, so
    scenarios sharing that pair share one bit-identical
    :func:`~repro.engine.portfolio.portfolio_cost` evaluation.
    ``_production_load`` / ``_wafers`` / ``_yields`` let
    :func:`scenario_evaluate` lend the TTM cube's per-group
    ``quantities x wafers`` products and per-D0 wafer/yield tensors to
    the cost kernel (same ``pow`` and multiplies, computed once).
    """
    if invariants is None:
        invariants = compile_portfolio(
            designs,
            cost_model.technology,
            engineers=engineers,
            alpha=cost_model.alpha,
            edge_corrected=cost_model.edge_corrected,
        )
    scenario_set = compile_scenarios(scenarios)
    if d0_scale is not None:
        _sample_array(d0_scale, "defect density scale")
    n_designs = invariants.n_designs
    n_samples = _cube_samples(n_chips, d0_scale)
    k_total = scenario_set.n_scenarios
    total_out = np.empty((k_total, n_designs, n_samples))
    nre: Optional[np.ndarray] = None
    cache: Dict[Tuple[float, float], np.ndarray] = {}
    compiled = get_backend().name == "compiled"
    # On the NumPy path the pow-heavy D0 tensors (wafer/yield) depend
    # only on the D0 multiplier, so they are computed once per unique
    # multiplier and shared across every (demand, D0) combination —
    # same tensors, same downstream arithmetic, identical bits. The
    # quantities and the per-profile dies numerator depend only on the
    # demand multiplier and are shared the same way along the other
    # axis of the (demand, D0) grid.
    g_tensors: Dict[float, Tuple[np.ndarray, np.ndarray]] = {}
    dm_tensors: Dict[
        float, Tuple[np.ndarray, np.ndarray, np.ndarray]
    ] = {}
    for k in range(k_total):
        dm = float(scenario_set.demand_scale[k])
        g = float(scenario_set.d0_scale[k])
        hit = cache.get((dm, g))
        if hit is None:
            chips = n_chips if dm == 1.0 else np.asarray(
                n_chips, dtype=float
            ) * dm
            if g == 1.0:
                scale = d0_scale
            elif d0_scale is None:
                scale = g
            else:
                scale = np.asarray(d0_scale, dtype=float) * g
            if compiled:
                result = portfolio_cost(
                    cost_model,
                    designs,
                    chips,
                    d0_scale=scale,
                    engineers=engineers,
                    invariants=invariants,
                )
            else:
                pair = g_tensors.get(g)
                if pair is None:
                    if scale is None:
                        scale_array: np.ndarray = np.asarray(
                            1.0, dtype=float
                        )
                    else:
                        scale_array = _sample_array(
                            scale, "defect density scale"
                        )
                    yields = (
                        _yields.get(g) if _yields is not None else None
                    )
                    if yields is None:
                        yields = invariants.profile_yields(scale_array)
                    wafers = (
                        _wafers.get(g) if _wafers is not None else None
                    )
                    if wafers is None:
                        wafers = invariants.wafers_per_chip_at(
                            scale_array, yields=yields
                        )
                    pair = (wafers, yields)
                    g_tensors[g] = pair
                trio = dm_tensors.get(dm)
                if trio is None:
                    quantities_node, quantities_design = (
                        _portfolio_quantities(chips, n_designs)
                    )
                    profile_quantities = (
                        quantities_design[invariants.profile_design]
                        if quantities_design.ndim == 2
                        else quantities_design
                    )
                    trio = (
                        quantities_node,
                        quantities_design,
                        profile_quantities
                        * invariants.profile_count[:, None],
                    )
                    dm_tensors[dm] = trio
                result = _portfolio_cost_from_tensors(
                    cost_model,
                    invariants,
                    trio[0],
                    trio[1],
                    pair[0],
                    pair[1],
                    production_load=(
                        _production_load.get((dm, g))
                        if _production_load is not None
                        else None
                    ),
                    dies_numerator=trio[2],
                )
            if nre is None:
                nre = result.nre_usd
            hit = np.broadcast_to(
                result.total_usd, (n_designs, n_samples)
            )
            cache[(dm, g)] = hit
        total_out[k] = hit
    return ScenarioCostResult(
        scenarios=scenario_set.names,
        designs=invariants.designs,
        nre_usd=nre,
        total_usd=total_out,
    )


def scenario_evaluate(
    model: TTMModel,
    cost_model: Optional[CostModel],
    designs: Optional[Sequence[ChipDesign]],
    n_chips: ArrayLike,
    scenarios: Union[ScenarioSet, Sequence[Scenario]],
    capacity: Optional[ArrayLike] = None,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    invariants: Optional[PortfolioInvariants] = None,
) -> ScenarioCubeResult:
    """TTM + CAS (+ cost when ``cost_model`` is given) in one fused pass.

    TTM and CAS share one resolved supply and one baseline pass per
    scenario — the individual ``scenario_ttm``/``scenario_cas`` entry
    points stay bit-identical but each re-resolve the supply.
    """
    invariants = _resolve_invariants(model, designs, invariants)
    scenario_set = compile_scenarios(scenarios)
    production_loads: Dict[Tuple[float, float], np.ndarray] = {}
    wafer_tensors: Dict[float, np.ndarray] = {}
    yield_tensors: Dict[float, np.ndarray] = {}
    tapeout, fabrication, total, cas = _evaluate_cube(
        model,
        invariants,
        scenario_set,
        n_chips,
        capacity,
        queue_weeks,
        d0_scale,
        wafer_rate_scale,
        relative_step,
        with_cas=True,
        pw_out=production_loads,
        wafers_out=wafer_tensors,
        yields_out=yield_tensors,
    )
    ttm = ScenarioTTMResult(
        scenarios=scenario_set.names,
        designs=invariants.designs,
        schedule=model.schedule,
        tapeout_weeks=tapeout,
        fabrication_weeks=fabrication,
        total_weeks=total,
    )
    cas_result = ScenarioCASResult(
        scenarios=scenario_set.names,
        designs=invariants.designs,
        processes=invariants.processes,
        cas=cas,
    )
    cost_result = None
    if cost_model is not None:
        cost_result = scenario_cost(
            cost_model,
            designs,
            n_chips,
            scenario_set,
            d0_scale=d0_scale,
            engineers=model.engineers,
            invariants=invariants,
            _production_load=production_loads,
            _wafers=wafer_tensors,
            _yields=yield_tensors,
        )
    return ScenarioCubeResult(ttm=ttm, cas=cas_result, cost=cost_result)


__all__ = [
    "Scenario",
    "ScenarioCASResult",
    "ScenarioCostResult",
    "ScenarioCubeResult",
    "ScenarioSet",
    "ScenarioTTMResult",
    "apply_scenario",
    "compile_scenarios",
    "scenario_cas",
    "scenario_cost",
    "scenario_evaluate",
    "scenario_ttm",
]
