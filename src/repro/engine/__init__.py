"""Batched evaluation engine: vectorized TTM/CAS kernels + parallel sweeps.

Every analysis in the reproduction (the Fig. 3/9-13 capacity sweeps, the
Fig. 8 Sobol heatmap, CAS finite differences, grid search) funnels
through ``TTMModel.time_to_market``, which re-derives per-(design, node)
invariants on every scalar call. This package makes the hot paths cheap:

* :mod:`repro.engine.invariants` -- per-(design, technology) quantities
  that do not vary across a sweep, computed once and LRU-cached;
* :mod:`repro.engine.batch` -- vectorized NumPy kernels ``batch_ttm`` and
  ``batch_cas`` plus the ``*_over_capacity`` sweep conveniences;
* :mod:`repro.engine.batch_split` -- the Sec. 7 multi-process split
  engine: the full (pair x split-grid) tensor, coarse -> fine grid
  refinement, and sampled-supply evaluation of a fixed production split;
* :mod:`repro.engine.portfolio` -- the design-axis stack: one compiled
  structure-of-arrays portfolio evaluated over ``(designs x samples)``
  in a single broadcasted pass with common random numbers;
* :mod:`repro.engine.sobol_adapter` -- one-shot Saltelli-matrix
  objectives for ``sobol_indices(..., vectorized=True)``;
* :mod:`repro.engine.parallel` -- ``parallel_map`` with serial / thread /
  process executors and a safe serial fallback;
* :mod:`repro.engine.compiled` -- the optional ``engine="compiled"``
  backend: single-pass fused kernels (Numba-jitted when the optional
  dependency is present) behind a registry (``get_backend`` /
  ``set_backend`` / ``REPRO_ENGINE_BACKEND``), bit-for-bit equal to the
  NumPy path in float64;
* :mod:`repro.engine.shm` -- zero-copy shared-memory publication of
  compiled invariants to process-pool workers.

Batched results match the scalar model to floating-point round-off; the
equivalence suite (``tests/engine``) pins them to <= 1e-9 relative error
and ``scripts/bench_engine.py`` tracks the speedups in
``BENCH_engine.json``.
"""

from .batch import (
    BatchCASResult,
    BatchTTMResult,
    batch_cas,
    batch_ttm,
    cas_over_capacity,
    ttm_over_capacity,
)
from .batch_split import (
    SplitGridResult,
    SplitSampleResult,
    batch_split,
    batch_split_samples,
    refine_split_exact,
    refine_split_grid,
)
from .compiled import (
    Backend,
    backend_info,
    backend_label,
    get_backend,
    numba_available,
    set_backend,
    use_backend,
)
from .invariants import (
    DesignInvariants,
    cached_invariants,
    clear_invariant_cache,
    compute_invariants,
    design_invariants,
    invariant_cache_info,
)
from .parallel import EXECUTORS, parallel_map
from .shm import (
    SHARED_STORE,
    InvariantsShare,
    PortfolioShare,
    SharedInvariantStore,
    share_design_invariants,
    share_portfolio,
    shm_enabled,
)
from .portfolio import (
    PortfolioCASResult,
    PortfolioCostResult,
    PortfolioInvariants,
    PortfolioTTMResult,
    compile_portfolio,
    portfolio_cas,
    portfolio_cas_over_capacity,
    portfolio_cost,
    portfolio_fingerprint,
    portfolio_ttm,
    portfolio_ttm_over_capacity,
)
from .requests import (
    POINT_METRICS,
    PointRequest,
    fused_point_eval,
    point_signature,
)
from .scenario import (
    Scenario,
    ScenarioCASResult,
    ScenarioCostResult,
    ScenarioCubeResult,
    ScenarioSet,
    ScenarioTTMResult,
    apply_scenario,
    compile_scenarios,
    scenario_cas,
    scenario_cost,
    scenario_evaluate,
    scenario_ttm,
)
from .sobol_adapter import rowwise_batch_function, ttm_factor_batch_function

__all__ = [
    "Backend",
    "BatchCASResult",
    "BatchTTMResult",
    "DesignInvariants",
    "EXECUTORS",
    "InvariantsShare",
    "POINT_METRICS",
    "PointRequest",
    "PortfolioCASResult",
    "PortfolioCostResult",
    "PortfolioInvariants",
    "PortfolioShare",
    "PortfolioTTMResult",
    "SHARED_STORE",
    "Scenario",
    "ScenarioCASResult",
    "ScenarioCostResult",
    "ScenarioCubeResult",
    "ScenarioSet",
    "ScenarioTTMResult",
    "SharedInvariantStore",
    "SplitGridResult",
    "SplitSampleResult",
    "apply_scenario",
    "backend_info",
    "backend_label",
    "batch_cas",
    "batch_split",
    "batch_split_samples",
    "batch_ttm",
    "cached_invariants",
    "cas_over_capacity",
    "clear_invariant_cache",
    "compile_portfolio",
    "compile_scenarios",
    "compute_invariants",
    "design_invariants",
    "fused_point_eval",
    "get_backend",
    "invariant_cache_info",
    "numba_available",
    "parallel_map",
    "point_signature",
    "portfolio_cas",
    "portfolio_cas_over_capacity",
    "portfolio_cost",
    "portfolio_fingerprint",
    "portfolio_ttm",
    "portfolio_ttm_over_capacity",
    "refine_split_exact",
    "refine_split_grid",
    "rowwise_batch_function",
    "scenario_cas",
    "scenario_cost",
    "scenario_evaluate",
    "scenario_ttm",
    "set_backend",
    "share_design_invariants",
    "share_portfolio",
    "shm_enabled",
    "ttm_factor_batch_function",
    "use_backend",
]
