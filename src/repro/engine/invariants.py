"""Per-(design, technology) invariants for the batch evaluation engine.

Every point of a capacity sweep, a TTM-vs-quantity matrix, or a Sobol
sample re-derives the same quantities from the design and the technology
database: per-node tapeout calendar weeks (Eq. 2), wafers needed per final
chip (Eqs. 5-6, folding in dies-per-wafer and die yield), and the
per-chip packaging coefficients (Eq. 7). None of these depend on market
conditions or on the number of chips, so the engine computes them once per
(design, technology) pair and caches the result.

Caching contract
----------------
Entries are keyed by the *identity* of the ``TechnologyDatabase`` and
``ChipDesign`` objects plus the scalar model knobs (``engineers``,
``alpha``, ``edge_corrected``, ``block_parallel``). Both classes are
immutable by construction, so identity keying is sound: to invalidate,
build a new database (``TechnologyDatabase.override``) or a new design
(``dataclasses.replace`` / the library constructors) instead of mutating
-- which is the only supported workflow anyway. The cache holds strong
references and is LRU-bounded (:data:`CACHE_MAX_ENTRIES`);
:func:`clear_invariant_cache` empties it explicitly.

Market-dependent quantities (queue backlogs, capacity fractions) are
deliberately *not* cached here -- they are cheap per-sweep scalars and the
whole point of a sweep is that they vary.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..design.chip import ChipDesign
from ..technology.database import TechnologyDatabase
from ..technology.yield_model import DEFAULT_ALPHA
from ..technology.wafer import good_dies_per_wafer
from ..ttm.tapeout import (
    die_tapeout_calendar_weeks,
    sequential_tapeout_calendar_weeks,
)

#: Upper bound on cached (design, technology) entries.
CACHE_MAX_ENTRIES = 256


@dataclass(frozen=True)
class DesignInvariants:
    """Everything about a (design, technology) pair that a sweep reuses.

    Per-process arrays are aligned with ``processes`` (the design's nodes
    in first-appearance order). All arrays are read-only float64.

    Attributes
    ----------
    processes:
        Node names the design fabricates on.
    tapeout_weeks:
        Per-node calendar tapeout weeks (slowest die per node, Eq. 2).
    sequential_tapeout_weeks:
        The strict Eq. 1/2 serialized tapeout time (``schedule="sequential"``).
    max_rate:
        Per-node maximum wafer rate, wafers/week.
    fab_latency_weeks:
        Per-node L_fab.
    wafers_per_chip:
        Per-node wafers that must be ordered per final chip (sum over the
        node's die types of ``count / good_dies_per_wafer``); multiply by
        ``n_chips`` to get N_W (Eq. 5).
    testing_weeks_per_chip:
        Eq. 7 testing term per final chip (sum over dies of
        ``count / yield * NTT * E_testing``).
    assembly_weeks_per_chip:
        Eq. 7 assembly term per final chip (sum over dies of
        ``count * area * E_package``).
    design_weeks:
        The design's supply-independent design+implementation constant.
    """

    processes: Tuple[str, ...]
    tapeout_weeks: np.ndarray
    sequential_tapeout_weeks: float
    max_rate: np.ndarray
    fab_latency_weeks: np.ndarray
    wafers_per_chip: np.ndarray
    testing_weeks_per_chip: float
    assembly_weeks_per_chip: float
    design_weeks: float


class _IdKey:
    """Hash-by-identity wrapper pinning a strong reference.

    Holding the object itself inside the cache key keeps it alive, which
    guarantees its ``id()`` is never recycled while the entry exists.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: object) -> None:
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _IdKey) and self.obj is other.obj


_CACHE: "OrderedDict[tuple, DesignInvariants]" = OrderedDict()
_CACHE_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0


def clear_invariant_cache() -> None:
    """Drop every cached entry (and reset the hit/miss counters)."""
    global _HITS, _MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0


def invariant_cache_info() -> Dict[str, int]:
    """Cache statistics: ``{"hits": ..., "misses": ..., "entries": ...}``."""
    with _CACHE_LOCK:
        return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def compute_invariants(
    design: ChipDesign,
    technology: TechnologyDatabase,
    engineers: int,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
    block_parallel: bool = False,
) -> DesignInvariants:
    """Derive the invariants from scratch (no caching).

    Raises the same errors the scalar model would: unknown nodes raise
    :class:`~repro.errors.UnknownNodeError`, out-of-production nodes raise
    :class:`~repro.errors.NodeUnavailableError`.
    """
    processes = design.processes
    for process in processes:
        technology.require_production(process)

    tapeout: Dict[str, float] = {}
    wafers_per_chip: Dict[str, float] = {}
    testing = 0.0
    assembly = 0.0
    for die in design.dies:
        node = technology[die.process]
        weeks = die_tapeout_calendar_weeks(
            die, node, engineers, block_parallel=block_parallel
        )
        tapeout[die.process] = max(tapeout.get(die.process, 0.0), weeks)
        good = good_dies_per_wafer(
            die.area_on(node),
            die.yield_on(node, alpha=alpha),
            wafer_diameter_mm=node.wafer_diameter_mm,
            edge_corrected=edge_corrected,
        )
        wafers_per_chip[die.process] = (
            wafers_per_chip.get(die.process, 0.0) + die.count / good
        )
        testing += die.count / die.yield_on(node, alpha=alpha) * die.ntt * (
            node.testing_effort
        )
        assembly += die.count * die.area_on(node) * node.packaging_effort

    def _readonly(values) -> np.ndarray:
        array = np.array(values, dtype=float)
        array.flags.writeable = False
        return array

    return DesignInvariants(
        processes=processes,
        tapeout_weeks=_readonly([tapeout.get(p, 0.0) for p in processes]),
        sequential_tapeout_weeks=sequential_tapeout_calendar_weeks(
            design, technology, engineers
        ),
        max_rate=_readonly(
            [technology[p].max_wafer_rate_per_week for p in processes]
        ),
        fab_latency_weeks=_readonly(
            [technology[p].fab_latency_weeks for p in processes]
        ),
        wafers_per_chip=_readonly([wafers_per_chip[p] for p in processes]),
        testing_weeks_per_chip=testing,
        assembly_weeks_per_chip=assembly,
        design_weeks=design.design_weeks,
    )


def design_invariants(
    design: ChipDesign,
    technology: TechnologyDatabase,
    engineers: int,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
    block_parallel: bool = False,
) -> DesignInvariants:
    """Cached wrapper around :func:`compute_invariants`.

    See the module docstring for the caching-invalidation contract.
    """
    global _HITS, _MISSES
    key = (
        _IdKey(technology),
        _IdKey(design),
        engineers,
        alpha,
        edge_corrected,
        block_parallel,
    )
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _HITS += 1
            return cached
    invariants = compute_invariants(
        design,
        technology,
        engineers,
        alpha=alpha,
        edge_corrected=edge_corrected,
        block_parallel=block_parallel,
    )
    with _CACHE_LOCK:
        _MISSES += 1
        _CACHE[key] = invariants
        _CACHE.move_to_end(key)
        while len(_CACHE) > CACHE_MAX_ENTRIES:
            _CACHE.popitem(last=False)
    return invariants


__all__ = [
    "CACHE_MAX_ENTRIES",
    "DesignInvariants",
    "clear_invariant_cache",
    "compute_invariants",
    "design_invariants",
    "invariant_cache_info",
]
