"""Per-(design, technology) invariants for the batch evaluation engine.

Every point of a capacity sweep, a TTM-vs-quantity matrix, or a Sobol
sample re-derives the same quantities from the design and the technology
database: per-node tapeout calendar weeks (Eq. 2), wafers needed per final
chip (Eqs. 5-6, folding in dies-per-wafer and die yield), and the
per-chip packaging coefficients (Eq. 7). None of these depend on market
conditions or on the number of chips, so the engine computes them once per
(design, technology) pair and caches the result.

Caching contract
----------------
Entries are keyed by the *identity* of the ``TechnologyDatabase`` and
``ChipDesign`` objects plus the scalar model knobs (``engineers``,
``alpha``, ``edge_corrected``, ``block_parallel``). Both classes are
immutable by construction, so identity keying is sound: to invalidate,
build a new database (``TechnologyDatabase.override``) or a new design
(``dataclasses.replace`` / the library constructors) instead of mutating
-- which is the only supported workflow anyway. The cache holds strong
references and is LRU-bounded (:data:`CACHE_MAX_ENTRIES`);
:func:`clear_invariant_cache` empties it explicitly.

Market-dependent quantities (queue backlogs, capacity fractions) are
deliberately *not* cached here -- they are cheap per-sweep scalars and the
whole point of a sweep is that they vary.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, TypeVar

import numpy as np

from ..design.chip import ChipDesign
from ..obs.instrument import cache_counters
from ..technology.database import TechnologyDatabase
from ..technology.yield_model import DEFAULT_ALPHA
from ..technology.wafer import dies_per_wafer, dies_per_wafer_simple
from ..units import mm2_to_cm2
from ..ttm.tapeout import (
    die_tapeout_calendar_weeks,
    sequential_tapeout_calendar_weeks,
)

#: Upper bound on cached (design, technology) entries.
CACHE_MAX_ENTRIES = 256

T = TypeVar("T")


@dataclass(frozen=True)
class DieYieldProfile:
    """Everything needed to re-derive one die type's yield-dependent terms.

    The cached :class:`DesignInvariants` scalars fold die yield in at the
    database's nominal defect densities. Monte Carlo studies perturb D0,
    so each die also records how its yield responds: ``mean_defects`` is
    the Eq. 6 ``A * D0`` product at the nominal density — scaling D0 by
    ``s`` scales it to ``mean_defects * s``. Fixed-yield dies (passive
    interposers) ignore D0 entirely; salvage dies re-evaluate the
    uncore/unit split.

    Attributes
    ----------
    process_index:
        Index into ``DesignInvariants.processes`` for this die's node.
    count:
        Dies of this type per final chip.
    ntt:
        Total transistors on one die (testing flows through the testers).
    area_mm2:
        Die area on its node (packaging/assembly cost driver).
    gross_per_wafer:
        Gross dies per wafer (D0-independent geometry).
    testing_effort:
        The node's E_testing (weeks per transistor tested).
    mean_defects:
        ``A_cm2 * D0`` at nominal density (Eq. 6 exponent base).
    fixed_yield:
        Yield override (e.g. 0.9999 interposer); ``None`` uses Eq. 6.
    salvage_uncore_defects / salvage_unit_defects:
        Nominal ``A * D0`` of the uncore and of one salvage unit, for
        dies with a core-salvage spec (``None`` otherwise).
    salvage_n_units / salvage_required_units:
        The salvage spec's unit counts (0 when salvage is absent).
    """

    process_index: int
    count: float
    ntt: float
    area_mm2: float
    gross_per_wafer: float
    testing_effort: float
    mean_defects: float
    fixed_yield: Optional[float] = None
    salvage_uncore_defects: Optional[float] = None
    salvage_unit_defects: Optional[float] = None
    salvage_n_units: int = 0
    salvage_required_units: int = 0

    def yield_at(self, d0_scale: np.ndarray, alpha: float) -> np.ndarray:
        """Vectorized sellable-die yield with D0 scaled by ``d0_scale``."""
        scale = np.asarray(d0_scale, dtype=float)
        if self.fixed_yield is not None:
            return np.broadcast_to(
                np.asarray(self.fixed_yield, dtype=float), scale.shape
            )
        if self.salvage_uncore_defects is not None:
            uncore = (
                1.0 + self.salvage_uncore_defects * scale / alpha
            ) ** (-alpha)
            unit = (
                1.0 + self.salvage_unit_defects * scale / alpha
            ) ** (-alpha)
            # Vectorized twin of ``salvage.binomial_tail`` (that one
            # validates a scalar p), including its clamp to 1.0.
            tail = sum(
                float(math.comb(self.salvage_n_units, k))
                * unit ** k
                * (1.0 - unit) ** (self.salvage_n_units - k)
                for k in range(
                    self.salvage_required_units, self.salvage_n_units + 1
                )
            )
            return uncore * np.minimum(tail, 1.0)
        return (1.0 + self.mean_defects * scale / alpha) ** (-alpha)


@dataclass(frozen=True)
class DesignInvariants:
    """Everything about a (design, technology) pair that a sweep reuses.

    Per-process arrays are aligned with ``processes`` (the design's nodes
    in first-appearance order). All arrays are read-only float64.

    Attributes
    ----------
    processes:
        Node names the design fabricates on.
    tapeout_weeks:
        Per-node calendar tapeout weeks (slowest die per node, Eq. 2).
    sequential_tapeout_weeks:
        The strict Eq. 1/2 serialized tapeout time (``schedule="sequential"``).
    max_rate:
        Per-node maximum wafer rate, wafers/week.
    fab_latency_weeks:
        Per-node L_fab.
    wafers_per_chip:
        Per-node wafers that must be ordered per final chip (sum over the
        node's die types of ``count / good_dies_per_wafer``); multiply by
        ``n_chips`` to get N_W (Eq. 5).
    testing_weeks_per_chip:
        Eq. 7 testing term per final chip (sum over dies of
        ``count / yield * NTT * E_testing``).
    assembly_weeks_per_chip:
        Eq. 7 assembly term per final chip (sum over dies of
        ``count * area * E_package``).
    design_weeks:
        The design's supply-independent design+implementation constant.
    alpha:
        The yield-model cluster parameter the cached terms were derived
        with (needed to re-derive them under a perturbed D0).
    die_profiles:
        Per-die-type :class:`DieYieldProfile` records, for workloads that
        sample defect density (the cached ``wafers_per_chip`` /
        ``testing_weeks_per_chip`` terms assume nominal D0).
    """

    processes: Tuple[str, ...]
    tapeout_weeks: np.ndarray
    sequential_tapeout_weeks: float
    max_rate: np.ndarray
    fab_latency_weeks: np.ndarray
    wafers_per_chip: np.ndarray
    testing_weeks_per_chip: float
    assembly_weeks_per_chip: float
    design_weeks: float
    alpha: float = DEFAULT_ALPHA
    die_profiles: Tuple[DieYieldProfile, ...] = ()

    def wafers_per_chip_at(self, d0_scale: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Per-process wafers per final chip with D0 scaled per sample.

        Returns one array per entry of ``processes``, each broadcast to
        ``d0_scale``'s shape. ``d0_scale=1`` reproduces the cached
        ``wafers_per_chip`` scalars to floating-point round-off.
        """
        scale = np.asarray(d0_scale, dtype=float)
        totals = [np.zeros(scale.shape) for _ in self.processes]
        for profile in self.die_profiles:
            good = profile.gross_per_wafer * profile.yield_at(scale, self.alpha)
            totals[profile.process_index] = (
                totals[profile.process_index] + profile.count / good
            )
        return tuple(totals)

    def testing_weeks_per_chip_at(self, d0_scale: np.ndarray) -> np.ndarray:
        """Eq. 7 testing term per chip with D0 scaled per sample."""
        scale = np.asarray(d0_scale, dtype=float)
        total = np.zeros(scale.shape)
        for profile in self.die_profiles:
            die_yield = profile.yield_at(scale, self.alpha)
            total = total + (
                profile.count / die_yield * profile.ntt * profile.testing_effort
            )
        return total


class _IdKey:
    """Hash-by-identity wrapper pinning a strong reference.

    Holding the object itself inside the cache key keeps it alive, which
    guarantees its ``id()`` is never recycled while the entry exists.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: object) -> None:
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _IdKey) and self.obj is other.obj


#: Shared LRU over engine invariants. Holds both per-design
#: :class:`DesignInvariants` entries and the portfolio-compiler entries
#: from :mod:`repro.engine.portfolio` (fingerprint-keyed tuples); both go
#: through :func:`cached_invariants` so eviction, statistics and the
#: thread-safety lock are one mechanism.
_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_CACHE_LOCK = threading.Lock()

#: The public hit/miss/eviction counters (plus the entries gauge) on the
#: process-wide :class:`~repro.obs.metrics.MetricsRegistry` — what used
#: to be private module ints is now readable from any metrics dump.
_HITS, _MISSES, _EVICTIONS, _ENTRIES = cache_counters()


def clear_invariant_cache() -> None:
    """Drop every cached entry and zero *all* statistics.

    Resets hits, misses, **and** evictions — an eviction count that
    survived a clear would misattribute old churn to the fresh cache.
    """
    with _CACHE_LOCK:
        _CACHE.clear()
        _HITS.reset()
        _MISSES.reset()
        _EVICTIONS.reset()
        _ENTRIES.set(0)


def invariant_cache_info() -> Dict[str, int]:
    """Cache statistics as ``{"hits", "misses", "evictions", "entries"}``.

    Reads the public :mod:`repro.obs.metrics` counters, so this view and
    a Prometheus/JSON metrics dump can never disagree.
    """
    with _CACHE_LOCK:
        return {
            "hits": int(_HITS.value()),
            "misses": int(_MISSES.value()),
            "evictions": int(_EVICTIONS.value()),
            "entries": len(_CACHE),
        }


def cached_invariants(key: tuple, compute: "Callable[[], T]") -> "T":
    """Serve ``key`` from the shared LRU, computing (outside the lock) on miss.

    Both halves of the critical section are guarded by the module lock,
    so hit/miss/eviction counters and eviction stay correct under the
    thread executor of :func:`~repro.engine.parallel.parallel_map`. Two
    threads racing on the same cold key may both compute; each call
    still accounts exactly one hit or one miss, and the last value wins.
    """
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _HITS._inc_key(())
            return cached  # type: ignore[return-value]
    value = compute()
    with _CACHE_LOCK:
        _MISSES._inc_key(())
        _CACHE[key] = value
        _CACHE.move_to_end(key)
        while len(_CACHE) > CACHE_MAX_ENTRIES:
            _CACHE.popitem(last=False)
            _EVICTIONS._inc_key(())
        _ENTRIES.set(len(_CACHE))
    return value


def compute_invariants(
    design: ChipDesign,
    technology: TechnologyDatabase,
    engineers: int,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
    block_parallel: bool = False,
) -> DesignInvariants:
    """Derive the invariants from scratch (no caching).

    Raises the same errors the scalar model would: unknown nodes raise
    :class:`~repro.errors.UnknownNodeError`, out-of-production nodes raise
    :class:`~repro.errors.NodeUnavailableError`.
    """
    processes = design.processes
    for process in processes:
        technology.require_production(process)

    process_index = {name: i for i, name in enumerate(processes)}
    tapeout: Dict[str, float] = {}
    wafers_per_chip: Dict[str, float] = {}
    testing = 0.0
    assembly = 0.0
    profiles = []
    for die in design.dies:
        node = technology[die.process]
        weeks = die_tapeout_calendar_weeks(
            die, node, engineers, block_parallel=block_parallel
        )
        tapeout[die.process] = max(tapeout.get(die.process, 0.0), weeks)
        area = die.area_on(node)
        gross = (
            dies_per_wafer(area, node.wafer_diameter_mm)
            if edge_corrected
            else dies_per_wafer_simple(area, node.wafer_diameter_mm)
        )
        good = gross * die.yield_on(node, alpha=alpha)
        wafers_per_chip[die.process] = (
            wafers_per_chip.get(die.process, 0.0) + die.count / good
        )
        testing += die.count / die.yield_on(node, alpha=alpha) * die.ntt * (
            node.testing_effort
        )
        assembly += die.count * area * node.packaging_effort
        salvage_uncore = salvage_unit = None
        salvage_n = salvage_required = 0
        if die.salvage is not None:
            spec = die.salvage
            uncore_area = area * (1.0 - spec.unit_area_fraction)
            unit_area = area * spec.unit_area_fraction / spec.n_units
            salvage_uncore = mm2_to_cm2(uncore_area) * node.defect_density_per_cm2
            salvage_unit = mm2_to_cm2(unit_area) * node.defect_density_per_cm2
            salvage_n = spec.n_units
            salvage_required = spec.required_units
        profiles.append(
            DieYieldProfile(
                process_index=process_index[die.process],
                count=float(die.count),
                ntt=die.ntt,
                area_mm2=area,
                gross_per_wafer=gross,
                testing_effort=node.testing_effort,
                mean_defects=mm2_to_cm2(area) * node.defect_density_per_cm2,
                fixed_yield=die.yield_override,
                salvage_uncore_defects=salvage_uncore,
                salvage_unit_defects=salvage_unit,
                salvage_n_units=salvage_n,
                salvage_required_units=salvage_required,
            )
        )

    def _readonly(values) -> np.ndarray:
        array = np.array(values, dtype=float)
        array.flags.writeable = False
        return array

    return DesignInvariants(
        processes=processes,
        tapeout_weeks=_readonly([tapeout.get(p, 0.0) for p in processes]),
        sequential_tapeout_weeks=sequential_tapeout_calendar_weeks(
            design, technology, engineers
        ),
        max_rate=_readonly(
            [technology[p].max_wafer_rate_per_week for p in processes]
        ),
        fab_latency_weeks=_readonly(
            [technology[p].fab_latency_weeks for p in processes]
        ),
        wafers_per_chip=_readonly([wafers_per_chip[p] for p in processes]),
        testing_weeks_per_chip=testing,
        assembly_weeks_per_chip=assembly,
        design_weeks=design.design_weeks,
        alpha=alpha,
        die_profiles=tuple(profiles),
    )


def design_invariants(
    design: ChipDesign,
    technology: TechnologyDatabase,
    engineers: int,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
    block_parallel: bool = False,
) -> DesignInvariants:
    """Cached wrapper around :func:`compute_invariants`.

    See the module docstring for the caching-invalidation contract.
    """
    key = (
        _IdKey(technology),
        _IdKey(design),
        engineers,
        alpha,
        edge_corrected,
        block_parallel,
    )
    return cached_invariants(
        key,
        lambda: compute_invariants(
            design,
            technology,
            engineers,
            alpha=alpha,
            edge_corrected=edge_corrected,
            block_parallel=block_parallel,
        ),
    )


def seed_design_invariants(
    design: ChipDesign,
    technology: TechnologyDatabase,
    invariants: DesignInvariants,
    engineers: int,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
    block_parallel: bool = False,
) -> DesignInvariants:
    """Insert externally computed invariants under this process's key.

    The sharded server's parent computes invariants once and publishes
    the tensors through ``repro.engine.shm``; each worker then interns
    its *own* design/technology objects and seeds the identity-keyed LRU
    with the attached zero-copy views instead of recomputing. Returns
    the cached entry — the given ``invariants`` on a cold key, or the
    already-cached value if the key was somehow warm first (the cache
    never replaces live entries, so results stay identity-stable).
    """
    key = (
        _IdKey(technology),
        _IdKey(design),
        engineers,
        alpha,
        edge_corrected,
        block_parallel,
    )
    return cached_invariants(key, lambda: invariants)


__all__ = [
    "CACHE_MAX_ENTRIES",
    "DesignInvariants",
    "DieYieldProfile",
    "cached_invariants",
    "clear_invariant_cache",
    "compute_invariants",
    "design_invariants",
    "invariant_cache_info",
    "seed_design_invariants",
]
