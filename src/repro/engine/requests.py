"""Fused evaluation of independent point requests (the serve batcher's
engine entry point).

A *point request* asks for the TTM / CAS / cost of one design at one
fully specified supply point — the workload a multi-tenant evaluation
service sees from concurrent clients. Evaluating each request alone
costs a portfolio compile plus three ``(1, 1)`` kernel dispatches;
:func:`fused_point_eval` instead stacks a whole batch into one
``(n_designs, n_requests)`` portfolio pass:

* the *design axis* holds the batch's unique designs (deduplicated by
  identity, so interned designs collapse to one row);
* the *sample axis* holds one column per request, carrying that
  request's supply knobs (``n_chips``, ``capacity``, ``queue_weeks``,
  ``d0_scale``, ``wafer_rate_scale``) as the shared 1-D sample vectors
  the portfolio kernels require;
* request ``j`` reads cell ``(design_row[j], j)`` of the result.

Because every portfolio kernel is elementwise along the sample axis
(reductions run over the node axis only) and padded node slots are
masked with exact neutrals, cell ``(d, j)`` is bit-for-bit the value a
solo ``fused_point_eval([request_j])`` call produces — the determinism
guarantee the coalescing service advertises, pinned by
``tests/serve/test_coalescing.py`` and the Hypothesis suite in
``tests/properties/test_serve_properties.py``.

Requests can only share a fused call when their supply knobs have the
same *shape*: a request overriding ``capacity`` globally cannot ride in
the same sample vector as one deferring to the market conditions.
:func:`point_signature` captures that compatibility key; callers group
requests by it (the serve batcher does) and fuse within a group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..obs.trace import span
from ..ttm.model import TTMModel
from .batch import _WAFERS_PER_NORMALIZED_UNIT
from .portfolio import compile_portfolio, portfolio_cas, portfolio_cost, portfolio_ttm

#: Metric families a point request may ask for.
POINT_METRICS: Tuple[str, ...] = ("ttm", "cas", "cost")

CapacityValue = Union[float, Mapping[str, float]]


@dataclass(frozen=True)
class PointRequest:
    """One design evaluated at one fully specified supply point.

    ``capacity`` follows the kernel convention: ``None`` keeps the
    model's market conditions, a float is a global fraction, and a
    mapping overrides the listed nodes. ``metrics`` selects which of
    :data:`POINT_METRICS` the caller wants back.
    """

    design: ChipDesign
    n_chips: float
    capacity: Optional[CapacityValue] = None
    queue_weeks: Optional[float] = None
    d0_scale: Optional[float] = None
    wafer_rate_scale: Optional[float] = None
    metrics: Tuple[str, ...] = POINT_METRICS

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics", tuple(self.metrics))
        unknown = [m for m in self.metrics if m not in POINT_METRICS]
        if unknown:
            raise InvalidParameterError(
                f"unknown point metrics {unknown}; choose from {POINT_METRICS}"
            )
        if not self.metrics:
            raise InvalidParameterError(
                "a point request must ask for at least one metric"
            )


def knob_signature(
    capacity: Optional[CapacityValue],
    queue_weeks: Optional[object],
    d0_scale: Optional[object],
    wafer_rate_scale: Optional[object],
) -> Tuple[object, ...]:
    """The supply-knob shape key shared by :func:`point_signature` and
    the shard router.

    Computable from raw values (the router derives it straight from the
    JSON body, without resolving designs or validating scenarios), and
    guaranteed consistent with :func:`point_signature`: two requests the
    batcher would group together always produce equal knob signatures,
    so a sticky router hashing this key keeps every coalescing group on
    one worker. The capacity node set is carried as a frozenset, so node
    order in the request body never splits a group.
    """
    if capacity is None:
        capacity_kind: object = "conditions"
    elif isinstance(capacity, Mapping):
        capacity_kind = frozenset(str(name) for name in capacity)
    else:
        capacity_kind = "global"
    return (
        capacity_kind,
        queue_weeks is not None,
        d0_scale is not None,
        wafer_rate_scale is not None,
    )


def point_signature(request: PointRequest) -> Tuple[object, ...]:
    """The fusion-compatibility key of one request.

    Two requests may share one fused portfolio call iff their supply
    knobs occupy the same slots: the capacity argument has the same form
    (conditions-default, global, or the same overridden node set) and
    the optional scalars are present for both or neither. Values are
    deliberately *not* part of the key — they vary along the sample
    axis.
    """
    return knob_signature(
        request.capacity,
        request.queue_weeks,
        request.d0_scale,
        request.wafer_rate_scale,
    )


@dataclass(frozen=True)
class _FusedPlan:
    """The stacked sample vectors of one compatible request batch."""

    designs: Tuple[ChipDesign, ...]
    design_row: Tuple[int, ...]
    n_chips: np.ndarray
    capacity: Optional[Union[np.ndarray, Dict[str, np.ndarray]]]
    queue_weeks: Optional[np.ndarray]
    d0_scale: Optional[np.ndarray]
    wafer_rate_scale: Optional[np.ndarray]
    metrics: Tuple[str, ...] = POINT_METRICS
    extra: Dict[str, object] = field(default_factory=dict)


def _plan(requests: Sequence[PointRequest]) -> _FusedPlan:
    if not requests:
        raise InvalidParameterError("need at least one point request")
    signature = point_signature(requests[0])
    for request in requests[1:]:
        if point_signature(request) != signature:
            raise InvalidParameterError(
                "cannot fuse point requests with different supply-knob "
                f"shapes: {signature} vs {point_signature(request)}"
            )

    designs: List[ChipDesign] = []
    row_of: Dict[int, int] = {}
    design_row: List[int] = []
    for request in requests:
        row = row_of.get(id(request.design))
        if row is None:
            row = len(designs)
            row_of[id(request.design)] = row
            designs.append(request.design)
        design_row.append(row)

    n_chips = np.array([float(r.n_chips) for r in requests])

    capacity: Optional[Union[np.ndarray, Dict[str, np.ndarray]]] = None
    first = requests[0].capacity
    if isinstance(first, Mapping):
        capacity = {
            str(name): np.array(
                [float(r.capacity[name]) for r in requests]  # type: ignore[index]
            )
            for name in first
        }
    elif first is not None:
        capacity = np.array([float(r.capacity) for r in requests])  # type: ignore[arg-type]

    def _column(attribute: str) -> Optional[np.ndarray]:
        if getattr(requests[0], attribute) is None:
            return None
        return np.array(
            [float(getattr(r, attribute)) for r in requests]
        )

    metrics = tuple(
        name
        for name in POINT_METRICS
        if any(name in r.metrics for r in requests)
    )
    return _FusedPlan(
        designs=tuple(designs),
        design_row=tuple(design_row),
        n_chips=n_chips,
        capacity=capacity,
        queue_weeks=_column("queue_weeks"),
        d0_scale=_column("d0_scale"),
        wafer_rate_scale=_column("wafer_rate_scale"),
        metrics=metrics,
    )


def fused_point_eval(
    model: TTMModel,
    cost_model: Optional[CostModel],
    requests: Sequence[PointRequest],
) -> List[Dict[str, Dict[str, float]]]:
    """Evaluate a batch of compatible point requests in one fused pass.

    Returns one ``{metric_family: {field: float}}`` dict per request, in
    request order, containing exactly the families that request asked
    for. All requests must share one :func:`point_signature` (callers
    group by it); designs are deduplicated by identity, so a batch of
    ``N`` requests over ``D`` unique designs costs one portfolio compile
    (LRU-cached) plus one ``(D, N)`` pass per requested metric family.

    A single-request call is the degenerate ``(1, 1)`` case of the same
    code path, which is what makes it the byte-identity oracle for the
    coalescing service.

    ``cost_model`` may be ``None`` when no request asks for ``"cost"``.
    """
    # The span is a shared no-op unless a tracer is installed, and it
    # wraps the whole fused batch (one span per engine dispatch, not
    # per kernel) — the instrumentation-overhead bound is untouched.
    with span(
        "engine.fused_point_eval",
        requests=len(requests),
        designs=len({id(request.design) for request in requests}),
    ):
        return _fused_point_eval_body(model, cost_model, requests)


def _fused_point_eval_body(
    model: TTMModel,
    cost_model: Optional[CostModel],
    requests: Sequence[PointRequest],
) -> List[Dict[str, Dict[str, float]]]:
    """The fused pass itself, hoisted to keep the span wrapper flat."""
    plan = _plan(requests)
    invariants = compile_portfolio(
        plan.designs,
        model.foundry.technology,
        engineers=model.engineers,
        alpha=model.alpha,
        edge_corrected=model.edge_corrected,
        block_parallel=model.block_parallel,
    )
    supply_kwargs = dict(
        capacity=plan.capacity,
        queue_weeks=plan.queue_weeks,
        d0_scale=plan.d0_scale,
        wafer_rate_scale=plan.wafer_rate_scale,
    )

    families: Dict[str, Dict[str, np.ndarray]] = {}
    if "ttm" in plan.metrics:
        ttm = portfolio_ttm(
            model, plan.designs, plan.n_chips,
            invariants=invariants, **supply_kwargs,
        )
        families["ttm"] = {
            "design_weeks": np.broadcast_to(
                ttm.design_weeks[:, None], ttm.total_weeks.shape
            ),
            "tapeout_weeks": ttm.tapeout_weeks,
            "fabrication_weeks": ttm.fabrication_weeks,
            "packaging_weeks": ttm.packaging_weeks,
            "total_weeks": ttm.total_weeks,
            "total_wafers": ttm.total_wafers,
        }
    if "cas" in plan.metrics:
        cas = portfolio_cas(
            model, plan.designs, plan.n_chips,
            invariants=invariants, **supply_kwargs,
        )
        families["cas"] = {
            "cas": cas.cas,
            "cas_normalized": cas.cas / _WAFERS_PER_NORMALIZED_UNIT,
        }
    if "cost" in plan.metrics:
        if cost_model is None:
            raise InvalidParameterError(
                "a cost model is required for 'cost' point metrics"
            )
        cost = portfolio_cost(
            cost_model,
            plan.designs,
            plan.n_chips,
            d0_scale=plan.d0_scale,
            engineers=model.engineers,
            invariants=invariants,
        )
        shape = cost.n_chips.shape
        families["cost"] = {
            "engineering_usd": np.broadcast_to(
                cost.engineering_usd[:, None], shape
            ),
            "fixed_usd": np.broadcast_to(cost.fixed_usd[:, None], shape),
            "mask_usd": np.broadcast_to(cost.mask_usd[:, None], shape),
            "wafer_usd": cost.wafer_usd,
            "testing_usd": cost.testing_usd,
            "packaging_usd": cost.packaging_usd,
            "nre_usd": np.broadcast_to(cost.nre_usd[:, None], shape),
            "manufacturing_usd": cost.manufacturing_usd,
            "total_usd": cost.total_usd,
            "usd_per_chip": cost.usd_per_chip,
        }

    results: List[Dict[str, Dict[str, float]]] = []
    for j, request in enumerate(requests):
        row = plan.design_row[j]
        cell: Dict[str, Dict[str, float]] = {}
        for family in request.metrics:
            fields = families[family]
            cell[family] = {
                name: float(values[row, j])
                for name, values in fields.items()
            }
        results.append(cell)
    return results


__all__ = [
    "POINT_METRICS",
    "PointRequest",
    "fused_point_eval",
    "knob_signature",
    "point_signature",
]
