"""Vectorized objective adapters for the Sobol sensitivity machinery.

:func:`repro.sensitivity.sobol.sobol_indices` costs ``N * (k + 2)`` model
evaluations; the scalar path builds a ``{factor: value}`` dict and a fresh
design + perturbed technology database *per sample row*. The adapters here
evaluate whole Saltelli sample matrices in one shot:

* :func:`ttm_factor_batch_function` -- the vectorized twin of
  :func:`repro.sensitivity.ttm_factors.ttm_factor_function` (the Fig. 8
  workload): a monolithic single-node design under nominal market
  conditions with the six guarded inputs (NTT, NUT, D0, muW, Lfab, LOSAT)
  perturbed per row.
* :func:`rowwise_batch_function` -- a generic fallback that lifts any
  scalar ``{factor: value} -> float`` function to the matrix signature, so
  callers can always pass ``vectorized=True`` objectives.

Columns follow :data:`repro.sensitivity.ttm_factors.FACTOR_NAMES` order
(the order ``sobol_indices`` samples factors in).
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..sensitivity.ttm_factors import FACTOR_NAMES
from ..technology.database import TechnologyDatabase
from ..technology.yield_model import DEFAULT_ALPHA
from ..ttm.model import DEFAULT_ENGINEERS
from ..units import mm2_to_cm2, kwpm_to_wafers_per_week


def ttm_factor_batch_function(
    process: str,
    n_chips: float,
    technology: Optional[TechnologyDatabase] = None,
    engineers: int = DEFAULT_ENGINEERS,
    alpha: float = DEFAULT_ALPHA,
) -> Callable[[np.ndarray], np.ndarray]:
    """A ``(m, 6) factor matrix -> (m,) TTM weeks`` function for one node.

    Vectorized twin of :func:`~repro.sensitivity.ttm_factors.ttm_factor_function`:
    column ``i`` carries factor ``FACTOR_NAMES[i]``. Every row is an
    independent monolithic design (NTT/NUT) on a perturbed copy of the
    node (D0, muW, Lfab) with the TAP latency set to LOSAT, evaluated at
    nominal market conditions.
    """
    db = technology or TechnologyDatabase.default()
    node = db.require_production(process)
    if n_chips <= 0.0:
        raise InvalidParameterError(
            f"number of final chips must be positive, got {n_chips}"
        )
    if engineers <= 0:
        raise InvalidParameterError(
            f"team size must be positive, got {engineers}"
        )
    density = node.density_mtr_per_mm2 * 1.0e6
    wafer_area = math.pi * (node.wafer_diameter_mm / 2.0) ** 2
    tapeout_effort = node.tapeout_effort
    testing_effort = node.testing_effort
    packaging_effort = node.packaging_effort
    columns = {name: i for i, name in enumerate(FACTOR_NAMES)}

    def evaluate(matrix: np.ndarray) -> np.ndarray:
        samples = np.asarray(matrix, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != len(FACTOR_NAMES):
            raise InvalidParameterError(
                f"expected an (m, {len(FACTOR_NAMES)}) factor matrix in "
                f"{FACTOR_NAMES} order, got shape {samples.shape}"
            )
        ntt = samples[:, columns["NTT"]]
        nut = np.minimum(samples[:, columns["NUT"]], ntt)
        d0 = samples[:, columns["D0"]]
        mu_w = samples[:, columns["muW"]]
        l_fab = samples[:, columns["Lfab"]]
        l_osat = samples[:, columns["LOSAT"]]
        if not np.all(mu_w > 0.0):
            raise InvalidParameterError(
                "perturbed wafer rate muW must stay positive"
            )
        if np.any(d0 < 0.0) or np.any(ntt <= 0.0):
            raise InvalidParameterError(
                "perturbed D0 must be >= 0 and NTT positive"
            )

        # Geometry and yield (Eq. 6, simple dies-per-wafer estimator).
        area = ntt / density
        mean_defects = mm2_to_cm2(area) * d0
        die_yield = (1.0 + mean_defects / alpha) ** (-alpha)
        good_per_wafer = (wafer_area / area) * die_yield
        wafers = n_chips / good_per_wafer

        # Tapeout (Eq. 2) and fabrication (Eqs. 3-5, nominal conditions).
        tapeout_weeks = nut * tapeout_effort / float(engineers)
        rate = kwpm_to_wafers_per_week(mu_w)
        fabrication_weeks = wafers / rate + l_fab

        # Packaging (Eq. 7) with the TAP latency carried by LOSAT.
        packaging_weeks = (
            l_osat
            + (n_chips / die_yield) * ntt * testing_effort
            + n_chips * area * packaging_effort
        )
        return 0.0 + tapeout_weeks + fabrication_weeks + packaging_weeks

    return evaluate


def rowwise_batch_function(
    function: Callable[[Mapping[str, float]], float],
    names: Sequence[str],
) -> Callable[[np.ndarray], np.ndarray]:
    """Lift a scalar ``{factor: value} -> float`` objective to matrices.

    The generic fallback adapter: no speedup, but it lets every objective
    flow through the vectorized ``sobol_indices`` code path.
    """
    ordered = tuple(names)

    def evaluate(matrix: np.ndarray) -> np.ndarray:
        samples = np.asarray(matrix, dtype=float)
        return np.array(
            [function(dict(zip(ordered, row))) for row in samples],
            dtype=float,
        )

    return evaluate


__all__ = ["rowwise_batch_function", "ttm_factor_batch_function"]
