"""Vectorized TTM and CAS kernels.

These kernels evaluate the paper's models over whole sweep grids in a
handful of NumPy array operations instead of one Python call per point.
They consume the cached :class:`~repro.engine.invariants.DesignInvariants`
and reproduce the scalar :class:`~repro.ttm.model.TTMModel` /
:func:`~repro.agility.cas.chip_agility_score` results to floating-point
round-off (the equivalence suite pins them to <= 1e-9 relative error).

``n_chips`` and ``capacity`` broadcast against each other, so a single
call evaluates a quantity-by-capacity matrix. ``capacity=None`` evaluates
under the model's *current* market conditions (per-node fractions intact);
an explicit scalar/array ``capacity`` is a *global* fraction applied to
every node, exactly like :meth:`TTMModel.at_capacity` (queue quotes are
kept, per-node capacity entries are dropped); a ``{node: fractions}``
mapping overrides only the listed nodes (others keep their conditions'
fraction), which is how disruption ensembles hit one fab at a time.

Monte Carlo workloads additionally sample supply-side parameters per row:
``queue_weeks`` (global quoted lead time), ``d0_scale`` (multiplier on
every node's defect density — yield, wafer demand and tested-die counts
are re-derived from the cached per-die profiles), and
``wafer_rate_scale`` (multiplier on every node's *maximum* rate — the
queue quote's wafer backlog scales with it, Sec. 6.3). Each accepts a
scalar or an array broadcasting against ``n_chips``/``capacity``, and
``batch_ttm``/``batch_cas``/``batch_cost`` stay bit-identical to the
pre-sampling behavior when they are left ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..agility.derivative import DEFAULT_RELATIVE_STEP
from ..cost.model import CostModel
from ..cost.nre import design_nre
from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..obs.instrument import observed_kernel
from ..ttm.model import DEFAULT_ENGINEERS, TTMModel
from .compiled import get_backend
from .invariants import DesignInvariants, design_invariants

ArrayLike = Union[float, Sequence[float], np.ndarray]

#: ``capacity`` argument: global scalar/array or per-node mapping.
CapacityLike = Union[ArrayLike, Mapping[str, ArrayLike]]

#: Raw wafers/week^2 per normalized CAS unit (mirrors ``repro.agility.cas``).
_WAFERS_PER_NORMALIZED_UNIT = 1000.0


@dataclass(frozen=True)
class BatchTTMResult:
    """Vectorized TTM breakdown (all arrays share one broadcast shape).

    The fields mirror :class:`~repro.ttm.result.TTMResult`'s phase
    decomposition; ``per_node_ready_weeks`` maps process name to the
    node's tapeout + fabrication completion time (pipelined reading).
    """

    design: str
    schedule: str
    design_weeks: float
    tapeout_weeks: np.ndarray
    fabrication_weeks: np.ndarray
    packaging_weeks: np.ndarray
    total_weeks: np.ndarray
    total_wafers: np.ndarray
    per_node_ready_weeks: Mapping[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "per_node_ready_weeks", dict(self.per_node_ready_weeks)
        )


@dataclass(frozen=True)
class BatchCASResult:
    """Vectorized Chip Agility Score (Eq. 8) over a sweep grid.

    ``cas`` is in raw wafers/week^2; ``normalized`` divides by the fixed
    kilo-wafer unit used in the paper's figures. ``sensitivity`` maps
    process name -> |dTTM/dmu_W| arrays.
    """

    design: str
    cas: np.ndarray
    sensitivity: Mapping[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sensitivity", dict(self.sensitivity))

    @property
    def normalized(self) -> np.ndarray:
        """CAS in the figures' normalized (kilo-wafer) units."""
        return self.cas / _WAFERS_PER_NORMALIZED_UNIT


def _as_positive_array(values: ArrayLike, what: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InvalidParameterError(f"{what} must be non-empty")
    flat = array.reshape(-1)
    if not np.all(flat > 0.0):
        bad = float(flat[~(flat > 0.0)][0])
        raise InvalidParameterError(f"{what} must be positive, got {bad}")
    return array


def _as_nonnegative_array(values: ArrayLike, what: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InvalidParameterError(f"{what} must be non-empty")
    flat = array.reshape(-1)
    if not np.all(flat >= 0.0):
        bad = float(flat[~(flat >= 0.0)][0])
        raise InvalidParameterError(f"{what} must be >= 0, got {bad}")
    return array


@dataclass(frozen=True)
class _SupplyArrays:
    """Per-node supply-side arrays shared by the TTM and CAS kernels.

    ``rates`` are the effective wafer rates (max rate x rate scale x
    capacity fraction), ``backlog`` the quoted wafer backlog (queue weeks
    x *scaled* max rate — the quote is issued at the node's true full
    rate, Sec. 6.3). ``wafers_per_chip`` / ``testing_weeks_per_chip``
    carry the D0-dependent demand terms (cached scalars when D0 is not
    sampled). Entries align with ``DesignInvariants.processes``.
    """

    rates: Tuple[ArrayLike, ...]
    backlog: Tuple[ArrayLike, ...]
    wafers_per_chip: Tuple[ArrayLike, ...]
    testing_weeks_per_chip: ArrayLike


def _supply_arrays(
    model: TTMModel,
    invariants: DesignInvariants,
    capacity: Optional[CapacityLike],
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
) -> _SupplyArrays:
    """Resolve the sampled supply parameters into per-node arrays."""
    conditions = model.foundry.conditions
    rate_scale: ArrayLike = 1.0
    if wafer_rate_scale is not None:
        rate_scale = _as_positive_array(wafer_rate_scale, "wafer rate scale")
    queue_override = None
    if queue_weeks is not None:
        queue_override = _as_nonnegative_array(queue_weeks, "queue weeks")

    shared = None
    mapping: Optional[Mapping[str, ArrayLike]] = None
    if isinstance(capacity, Mapping):
        mapping = {
            name: _as_positive_array(values, f"capacity fraction for {name!r}")
            for name, values in capacity.items()
        }
    elif capacity is not None:
        shared = _as_positive_array(capacity, "capacity fraction")

    rates = []
    backlog = []
    for i, process in enumerate(invariants.processes):
        scaled_max_rate = invariants.max_rate[i] * rate_scale
        if shared is not None:
            fraction: ArrayLike = shared
        elif mapping is not None and process in mapping:
            fraction = mapping[process]
        else:
            fraction = conditions.capacity_for(process)
            if fraction <= 0.0:
                raise InvalidParameterError(
                    f"node {process!r} has zero effective capacity "
                    f"(fraction {fraction}); time-to-market would be unbounded"
                )
        quote = (
            queue_override
            if queue_override is not None
            else conditions.queue_weeks_for(process)
        )
        rates.append(scaled_max_rate * fraction)
        backlog.append(quote * scaled_max_rate)

    if d0_scale is None:
        wafers = tuple(invariants.wafers_per_chip)
        testing: ArrayLike = invariants.testing_weeks_per_chip
    else:
        scale = _as_positive_array(d0_scale, "defect density scale")
        wafers = invariants.wafers_per_chip_at(scale)
        testing = invariants.testing_weeks_per_chip_at(scale)
    return _SupplyArrays(
        rates=tuple(rates),
        backlog=tuple(backlog),
        wafers_per_chip=wafers,
        testing_weeks_per_chip=testing,
    )


@observed_kernel("engine.batch_ttm", lambda r: r.total_weeks.size)
def batch_ttm(
    model: TTMModel,
    design: ChipDesign,
    n_chips: ArrayLike,
    capacity: Optional[CapacityLike] = None,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    invariants: Optional[DesignInvariants] = None,
) -> BatchTTMResult:
    """Vectorized ``TTMModel.time_to_market`` over quantity/capacity grids.

    Parameters
    ----------
    model:
        The scalar model whose semantics (schedule, staffing, alpha, queue
        quotes) the batch evaluation reproduces.
    design:
        The chip design to evaluate.
    n_chips:
        Final-chip quantities; scalar or array.
    capacity:
        ``None`` evaluates the model's current conditions; a scalar/array
        is a global capacity fraction applied to every node, as in
        :meth:`TTMModel.at_capacity`; a ``{node: fractions}`` mapping
        overrides only the listed nodes. Broadcasts against ``n_chips``.
    queue_weeks:
        Optional global quoted lead time (scalar or per-sample array)
        replacing the conditions' quotes, as in
        ``MarketConditions.with_global_queue``.
    d0_scale:
        Optional multiplier on every node's defect density D0; die
        yields, wafer demand and tested-die counts are re-derived per
        sample (equivalent to ``TechnologyDatabase.override`` on
        ``defect_density_per_cm2``).
    wafer_rate_scale:
        Optional multiplier on every node's *maximum* wafer rate (Table 2
        uncertainty); the queue quote's wafer backlog scales with it.
    invariants:
        Pre-compiled invariants for ``design`` (e.g. a shared-memory
        attach in a worker process); ``None`` resolves them through the
        shared LRU.
    """
    if invariants is None:
        invariants = design_invariants(
            design,
            model.foundry.technology,
            model.engineers,
            alpha=model.alpha,
            edge_corrected=model.edge_corrected,
            block_parallel=model.block_parallel,
        )
    quantities = _as_positive_array(n_chips, "number of final chips")
    supply = _supply_arrays(
        model,
        invariants,
        capacity,
        queue_weeks=queue_weeks,
        d0_scale=d0_scale,
        wafer_rate_scale=wafer_rate_scale,
    )
    if get_backend().name == "compiled":
        from .compiled.adapters import ttm_from_supply

        return ttm_from_supply(model, design, invariants, quantities, supply)

    ready_by_node: Dict[str, np.ndarray] = {}
    node_totals = []
    readies = []
    for i, process in enumerate(invariants.processes):
        rate = supply.rates[i]
        queue_drain_weeks = supply.backlog[i] / rate
        production_weeks = quantities * supply.wafers_per_chip[i] / rate
        node_total = (
            queue_drain_weeks + production_weeks + invariants.fab_latency_weeks[i]
        )
        ready = invariants.tapeout_weeks[i] + node_total
        node_totals.append(node_total)
        readies.append(ready)
        ready_by_node[process] = np.broadcast_to(
            ready, np.broadcast_shapes(np.shape(ready), quantities.shape)
        )

    if model.schedule == "pipelined":
        tapeout_weeks = float(np.max(invariants.tapeout_weeks))
        ready = readies[0]
        for other in readies[1:]:
            ready = np.maximum(ready, other)
        fabrication_weeks = ready - tapeout_weeks
    else:
        tapeout_weeks = invariants.sequential_tapeout_weeks
        fabrication_weeks = node_totals[0]
        for other in node_totals[1:]:
            fabrication_weeks = np.maximum(fabrication_weeks, other)

    packaging_weeks = (
        model.tap_latency_weeks
        + quantities * supply.testing_weeks_per_chip
        + quantities * invariants.assembly_weeks_per_chip
    )
    total_weeks = (
        invariants.design_weeks
        + tapeout_weeks
        + fabrication_weeks
        + packaging_weeks
    )
    shape = np.broadcast_shapes(
        quantities.shape, np.shape(fabrication_weeks), np.shape(packaging_weeks)
    )
    return BatchTTMResult(
        design=design.name,
        schedule=model.schedule,
        design_weeks=invariants.design_weeks,
        tapeout_weeks=np.broadcast_to(np.asarray(tapeout_weeks, float), shape),
        fabrication_weeks=np.broadcast_to(
            np.asarray(fabrication_weeks, float), shape
        ),
        packaging_weeks=np.broadcast_to(
            np.asarray(packaging_weeks, float), shape
        ),
        total_weeks=np.broadcast_to(np.asarray(total_weeks, float), shape),
        total_wafers=np.broadcast_to(
            quantities * sum(supply.wafers_per_chip), shape
        ),
        per_node_ready_weeks=ready_by_node,
    )


def _total_weeks_at_rates(
    model: TTMModel,
    invariants: DesignInvariants,
    quantities: np.ndarray,
    supply: _SupplyArrays,
    rates: Sequence[np.ndarray],
) -> np.ndarray:
    """Total TTM with each node at an explicit effective rate array."""
    node_totals = []
    readies = []
    for i in range(len(invariants.processes)):
        queue_weeks = supply.backlog[i] / rates[i]
        production_weeks = quantities * supply.wafers_per_chip[i] / rates[i]
        node_total = (
            queue_weeks + production_weeks + invariants.fab_latency_weeks[i]
        )
        node_totals.append(node_total)
        readies.append(invariants.tapeout_weeks[i] + node_total)
    if model.schedule == "pipelined":
        tapeout_weeks = float(np.max(invariants.tapeout_weeks))
        ready = readies[0]
        for other in readies[1:]:
            ready = np.maximum(ready, other)
        fabrication_weeks = ready - tapeout_weeks
    else:
        tapeout_weeks = invariants.sequential_tapeout_weeks
        fabrication_weeks = node_totals[0]
        for other in node_totals[1:]:
            fabrication_weeks = np.maximum(fabrication_weeks, other)
    packaging_weeks = (
        model.tap_latency_weeks
        + quantities * supply.testing_weeks_per_chip
        + quantities * invariants.assembly_weeks_per_chip
    )
    return (
        invariants.design_weeks
        + tapeout_weeks
        + fabrication_weeks
        + packaging_weeks
    )


@observed_kernel("engine.batch_cas", lambda r: r.cas.size)
def batch_cas(
    model: TTMModel,
    design: ChipDesign,
    n_chips: ArrayLike,
    capacity: Optional[CapacityLike] = None,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    invariants: Optional[DesignInvariants] = None,
) -> BatchCASResult:
    """Vectorized Chip Agility Score (Eq. 8) over a capacity grid.

    Mirrors :func:`repro.agility.cas.chip_agility_score` evaluated at
    ``model.at_capacity(f)`` for every ``f`` in ``capacity`` (or at the
    model's current conditions when ``capacity is None``): each node's
    rate is perturbed by ``relative_step`` in both directions and the
    central-difference TTM slope is accumulated. ``queue_weeks``,
    ``d0_scale`` and ``wafer_rate_scale`` sample supply-side parameters
    per row exactly as in :func:`batch_ttm`; the queue quote's wafer
    backlog stays pinned while each node's rate is perturbed, matching
    the scalar derivative's semantics.
    """
    if not 0.0 < relative_step < 1.0:
        raise InvalidParameterError(
            f"relative step must be in (0, 1), got {relative_step}"
        )
    if invariants is None:
        invariants = design_invariants(
            design,
            model.foundry.technology,
            model.engineers,
            alpha=model.alpha,
            edge_corrected=model.edge_corrected,
            block_parallel=model.block_parallel,
        )
    quantities = _as_positive_array(n_chips, "number of final chips")
    supply = _supply_arrays(
        model,
        invariants,
        capacity,
        queue_weeks=queue_weeks,
        d0_scale=d0_scale,
        wafer_rate_scale=wafer_rate_scale,
    )
    if get_backend().name == "compiled":
        from .compiled.adapters import cas_from_supply

        return cas_from_supply(
            model, design, invariants, quantities, supply, relative_step
        )

    base_rates = list(supply.rates)
    sensitivities: Dict[str, np.ndarray] = {}
    total = None
    for i, process in enumerate(invariants.processes):
        step = base_rates[i] * relative_step
        perturbed_ttm = []
        for sign in (+1.0, -1.0):
            rate = base_rates[i] + sign * step
            # Mirror the scalar path's rate -> fraction -> rate round trip
            # (conditions store fractions, the foundry rescales by max rate).
            effective = invariants.max_rate[i] * (
                rate / invariants.max_rate[i]
            )
            rates = list(base_rates)
            rates[i] = effective
            perturbed_ttm.append(
                _total_weeks_at_rates(
                    model, invariants, quantities, supply, rates
                )
            )
        slope = (perturbed_ttm[0] - perturbed_ttm[1]) / (2.0 * step)
        sensitivity = np.abs(slope)
        sensitivities[process] = sensitivity
        total = sensitivity if total is None else total + sensitivity

    if not np.all(total > 0.0):
        raise InvalidParameterError(
            f"design {design.name!r} has zero TTM sensitivity on all nodes; "
            "CAS is unbounded (check the production volume is non-trivial)"
        )
    shape = np.shape(total)
    return BatchCASResult(
        design=design.name,
        cas=1.0 / total,
        sensitivity={
            name: np.broadcast_to(np.asarray(value, float), shape)
            for name, value in sensitivities.items()
        },
    )


@dataclass(frozen=True)
class BatchCostResult:
    """Vectorized chip-creation cost breakdown (arrays share one shape).

    NRE terms are supply-independent scalars; the recurring terms vary
    with the sampled quantity and defect density. All USD, mirroring
    :class:`~repro.cost.model.CostResult`.
    """

    design: str
    engineering_usd: float
    fixed_usd: float
    mask_usd: float
    wafer_usd: np.ndarray
    testing_usd: np.ndarray
    packaging_usd: np.ndarray
    n_chips: np.ndarray

    @property
    def nre_usd(self) -> float:
        """One-time costs: engineering + fixed bring-up + masks."""
        return self.engineering_usd + self.fixed_usd + self.mask_usd

    @property
    def manufacturing_usd(self) -> np.ndarray:
        """Recurring costs: wafers + testing + packaging."""
        return self.wafer_usd + self.testing_usd + self.packaging_usd

    @property
    def total_usd(self) -> np.ndarray:
        """Total chip-creation cost per sample."""
        return self.nre_usd + self.manufacturing_usd

    @property
    def usd_per_chip(self) -> np.ndarray:
        """Total cost amortized over each sample's production run."""
        return self.total_usd / self.n_chips


@observed_kernel("engine.batch_cost", lambda r: r.n_chips.size)
def batch_cost(
    cost_model: CostModel,
    design: ChipDesign,
    n_chips: ArrayLike,
    d0_scale: Optional[ArrayLike] = None,
    engineers: int = DEFAULT_ENGINEERS,
    invariants: Optional[DesignInvariants] = None,
) -> BatchCostResult:
    """Vectorized ``CostModel.chip_creation_cost`` over sampled inputs.

    Reproduces the scalar cost model over per-sample quantities and an
    optional per-sample defect-density multiplier. ``engineers`` only
    selects which cached invariants entry is reused (the cost terms are
    team-size independent); pass the companion TTM model's team size so a
    joint TTM+cost study shares one cache entry.
    """
    if invariants is None:
        invariants = design_invariants(
            design,
            cost_model.technology,
            engineers,
            alpha=cost_model.alpha,
            edge_corrected=cost_model.edge_corrected,
        )
    quantities = _as_positive_array(n_chips, "number of final chips")
    if d0_scale is None:
        scale: np.ndarray = np.asarray(1.0, dtype=float)
    else:
        scale = _as_positive_array(d0_scale, "defect density scale")
    if get_backend().name == "compiled":
        from .compiled.adapters import cost_from_parts

        return cost_from_parts(
            cost_model, design, invariants, quantities, scale
        )
    wafers_per_chip = invariants.wafers_per_chip_at(scale)

    nre = design_nre(
        design, cost_model.technology, cost_model.engineer_week_cost_usd
    )
    wafer_usd: ArrayLike = 0.0
    for i, process in enumerate(invariants.processes):
        node_cost = cost_model.technology[process].wafer_cost_usd
        wafer_usd = wafer_usd + quantities * wafers_per_chip[i] * node_cost

    testing_usd: ArrayLike = 0.0
    packaging_usd: ArrayLike = quantities * cost_model.package_base_usd
    for profile in invariants.die_profiles:
        die_yield = profile.yield_at(scale, invariants.alpha)
        dies_tested = quantities * profile.count / die_yield
        testing_usd = testing_usd + (
            dies_tested * profile.ntt * cost_model.test_usd_per_transistor
        )
        packaging_usd = packaging_usd + quantities * profile.count * (
            cost_model.die_handling_usd
            + profile.area_mm2 * cost_model.package_area_usd_per_mm2
        )

    shape = np.broadcast_shapes(
        quantities.shape, scale.shape, np.shape(wafer_usd)
    )
    return BatchCostResult(
        design=design.name,
        engineering_usd=nre.engineering_usd,
        fixed_usd=nre.fixed_usd,
        mask_usd=nre.mask_usd,
        wafer_usd=np.broadcast_to(np.asarray(wafer_usd, float), shape),
        testing_usd=np.broadcast_to(np.asarray(testing_usd, float), shape),
        packaging_usd=np.broadcast_to(np.asarray(packaging_usd, float), shape),
        n_chips=np.broadcast_to(quantities, shape),
    )


def ttm_over_capacity(
    model: TTMModel,
    design: ChipDesign,
    n_chips: float,
    fractions: Sequence[float],
) -> np.ndarray:
    """Total TTM over a global capacity sweep (batched ``ttm_curve``)."""
    return batch_ttm(model, design, n_chips, capacity=fractions).total_weeks


def cas_over_capacity(
    model: TTMModel,
    design: ChipDesign,
    n_chips: float,
    fractions: Sequence[float],
    relative_step: float = DEFAULT_RELATIVE_STEP,
) -> np.ndarray:
    """Normalized CAS over a global capacity sweep (batched ``cas_curve``)."""
    return batch_cas(
        model, design, n_chips, capacity=fractions, relative_step=relative_step
    ).normalized


__all__ = [
    "BatchCASResult",
    "BatchCostResult",
    "BatchTTMResult",
    "batch_cas",
    "batch_cost",
    "batch_ttm",
    "cas_over_capacity",
    "ttm_over_capacity",
]
