"""Vectorized TTM and CAS kernels.

These kernels evaluate the paper's models over whole sweep grids in a
handful of NumPy array operations instead of one Python call per point.
They consume the cached :class:`~repro.engine.invariants.DesignInvariants`
and reproduce the scalar :class:`~repro.ttm.model.TTMModel` /
:func:`~repro.agility.cas.chip_agility_score` results to floating-point
round-off (the equivalence suite pins them to <= 1e-9 relative error).

``n_chips`` and ``capacity`` broadcast against each other, so a single
call evaluates a quantity-by-capacity matrix. ``capacity=None`` evaluates
under the model's *current* market conditions (per-node fractions intact);
an explicit ``capacity`` is a *global* fraction applied to every node,
exactly like :meth:`TTMModel.at_capacity` (queue quotes are kept, per-node
capacity entries are dropped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from ..agility.derivative import DEFAULT_RELATIVE_STEP
from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..ttm.model import TTMModel
from .invariants import DesignInvariants, design_invariants

ArrayLike = Union[float, Sequence[float], np.ndarray]

#: Raw wafers/week^2 per normalized CAS unit (mirrors ``repro.agility.cas``).
_WAFERS_PER_NORMALIZED_UNIT = 1000.0


@dataclass(frozen=True)
class BatchTTMResult:
    """Vectorized TTM breakdown (all arrays share one broadcast shape).

    The fields mirror :class:`~repro.ttm.result.TTMResult`'s phase
    decomposition; ``per_node_ready_weeks`` maps process name to the
    node's tapeout + fabrication completion time (pipelined reading).
    """

    design: str
    schedule: str
    design_weeks: float
    tapeout_weeks: np.ndarray
    fabrication_weeks: np.ndarray
    packaging_weeks: np.ndarray
    total_weeks: np.ndarray
    total_wafers: np.ndarray
    per_node_ready_weeks: Mapping[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "per_node_ready_weeks", dict(self.per_node_ready_weeks)
        )


@dataclass(frozen=True)
class BatchCASResult:
    """Vectorized Chip Agility Score (Eq. 8) over a sweep grid.

    ``cas`` is in raw wafers/week^2; ``normalized`` divides by the fixed
    kilo-wafer unit used in the paper's figures. ``sensitivity`` maps
    process name -> |dTTM/dmu_W| arrays.
    """

    design: str
    cas: np.ndarray
    sensitivity: Mapping[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sensitivity", dict(self.sensitivity))

    @property
    def normalized(self) -> np.ndarray:
        """CAS in the figures' normalized (kilo-wafer) units."""
        return self.cas / _WAFERS_PER_NORMALIZED_UNIT


def _as_positive_array(values: ArrayLike, what: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InvalidParameterError(f"{what} must be non-empty")
    flat = array.reshape(-1)
    if not np.all(flat > 0.0):
        bad = float(flat[~(flat > 0.0)][0])
        raise InvalidParameterError(f"{what} must be positive, got {bad}")
    return array


def _fractions_and_backlog(
    model: TTMModel,
    invariants: DesignInvariants,
    capacity: Optional[ArrayLike],
):
    """Per-node effective fractions and queue backlogs for the batch.

    Returns ``(fractions, backlog)`` where ``fractions`` is a list of
    per-process fraction arrays (or scalars) and ``backlog`` the per-node
    quoted wafer backlog (quote weeks x max rate, Sec. 6.3).
    """
    conditions = model.foundry.conditions
    backlog = np.array(
        [
            conditions.queue_weeks_for(process) * max_rate
            for process, max_rate in zip(
                invariants.processes, invariants.max_rate
            )
        ],
        dtype=float,
    )
    if capacity is None:
        fractions = []
        for process in invariants.processes:
            fraction = conditions.capacity_for(process)
            if fraction <= 0.0:
                raise InvalidParameterError(
                    f"node {process!r} has zero effective capacity "
                    f"(fraction {fraction}); time-to-market would be unbounded"
                )
            fractions.append(fraction)
        return fractions, backlog
    shared = _as_positive_array(capacity, "capacity fraction")
    return [shared for _ in invariants.processes], backlog


def batch_ttm(
    model: TTMModel,
    design: ChipDesign,
    n_chips: ArrayLike,
    capacity: Optional[ArrayLike] = None,
) -> BatchTTMResult:
    """Vectorized ``TTMModel.time_to_market`` over quantity/capacity grids.

    Parameters
    ----------
    model:
        The scalar model whose semantics (schedule, staffing, alpha, queue
        quotes) the batch evaluation reproduces.
    design:
        The chip design to evaluate.
    n_chips:
        Final-chip quantities; scalar or array.
    capacity:
        ``None`` evaluates the model's current conditions; otherwise a
        global capacity fraction (scalar or array) applied to every node,
        as in :meth:`TTMModel.at_capacity`. Broadcasts against
        ``n_chips``.
    """
    invariants = design_invariants(
        design,
        model.foundry.technology,
        model.engineers,
        alpha=model.alpha,
        edge_corrected=model.edge_corrected,
        block_parallel=model.block_parallel,
    )
    quantities = _as_positive_array(n_chips, "number of final chips")
    fractions, backlog = _fractions_and_backlog(model, invariants, capacity)

    ready_by_node: Dict[str, np.ndarray] = {}
    node_totals = []
    readies = []
    for i, process in enumerate(invariants.processes):
        rate = invariants.max_rate[i] * fractions[i]
        queue_weeks = backlog[i] / rate
        production_weeks = quantities * invariants.wafers_per_chip[i] / rate
        node_total = (
            queue_weeks + production_weeks + invariants.fab_latency_weeks[i]
        )
        ready = invariants.tapeout_weeks[i] + node_total
        node_totals.append(node_total)
        readies.append(ready)
        ready_by_node[process] = np.broadcast_to(
            ready, np.broadcast_shapes(np.shape(ready), quantities.shape)
        )

    if model.schedule == "pipelined":
        tapeout_weeks = float(np.max(invariants.tapeout_weeks))
        ready = readies[0]
        for other in readies[1:]:
            ready = np.maximum(ready, other)
        fabrication_weeks = ready - tapeout_weeks
    else:
        tapeout_weeks = invariants.sequential_tapeout_weeks
        fabrication_weeks = node_totals[0]
        for other in node_totals[1:]:
            fabrication_weeks = np.maximum(fabrication_weeks, other)

    packaging_weeks = (
        model.tap_latency_weeks
        + quantities * invariants.testing_weeks_per_chip
        + quantities * invariants.assembly_weeks_per_chip
    )
    total_weeks = (
        invariants.design_weeks
        + tapeout_weeks
        + fabrication_weeks
        + packaging_weeks
    )
    shape = np.broadcast_shapes(
        quantities.shape, np.shape(fabrication_weeks)
    )
    return BatchTTMResult(
        design=design.name,
        schedule=model.schedule,
        design_weeks=invariants.design_weeks,
        tapeout_weeks=np.broadcast_to(np.asarray(tapeout_weeks, float), shape),
        fabrication_weeks=np.broadcast_to(
            np.asarray(fabrication_weeks, float), shape
        ),
        packaging_weeks=np.broadcast_to(
            np.asarray(packaging_weeks, float), shape
        ),
        total_weeks=np.broadcast_to(np.asarray(total_weeks, float), shape),
        total_wafers=np.broadcast_to(
            quantities * float(np.sum(invariants.wafers_per_chip)), shape
        ),
        per_node_ready_weeks=ready_by_node,
    )


def _total_weeks_at_rates(
    model: TTMModel,
    invariants: DesignInvariants,
    quantities: np.ndarray,
    backlog: np.ndarray,
    rates: Sequence[np.ndarray],
) -> np.ndarray:
    """Total TTM with each node at an explicit effective rate array."""
    node_totals = []
    readies = []
    for i in range(len(invariants.processes)):
        queue_weeks = backlog[i] / rates[i]
        production_weeks = quantities * invariants.wafers_per_chip[i] / rates[i]
        node_total = (
            queue_weeks + production_weeks + invariants.fab_latency_weeks[i]
        )
        node_totals.append(node_total)
        readies.append(invariants.tapeout_weeks[i] + node_total)
    if model.schedule == "pipelined":
        tapeout_weeks = float(np.max(invariants.tapeout_weeks))
        ready = readies[0]
        for other in readies[1:]:
            ready = np.maximum(ready, other)
        fabrication_weeks = ready - tapeout_weeks
    else:
        tapeout_weeks = invariants.sequential_tapeout_weeks
        fabrication_weeks = node_totals[0]
        for other in node_totals[1:]:
            fabrication_weeks = np.maximum(fabrication_weeks, other)
    packaging_weeks = (
        model.tap_latency_weeks
        + quantities * invariants.testing_weeks_per_chip
        + quantities * invariants.assembly_weeks_per_chip
    )
    return (
        invariants.design_weeks
        + tapeout_weeks
        + fabrication_weeks
        + packaging_weeks
    )


def batch_cas(
    model: TTMModel,
    design: ChipDesign,
    n_chips: ArrayLike,
    capacity: Optional[ArrayLike] = None,
    relative_step: float = DEFAULT_RELATIVE_STEP,
) -> BatchCASResult:
    """Vectorized Chip Agility Score (Eq. 8) over a capacity grid.

    Mirrors :func:`repro.agility.cas.chip_agility_score` evaluated at
    ``model.at_capacity(f)`` for every ``f`` in ``capacity`` (or at the
    model's current conditions when ``capacity is None``): each node's
    rate is perturbed by ``relative_step`` in both directions and the
    central-difference TTM slope is accumulated.
    """
    if not 0.0 < relative_step < 1.0:
        raise InvalidParameterError(
            f"relative step must be in (0, 1), got {relative_step}"
        )
    invariants = design_invariants(
        design,
        model.foundry.technology,
        model.engineers,
        alpha=model.alpha,
        edge_corrected=model.edge_corrected,
        block_parallel=model.block_parallel,
    )
    quantities = _as_positive_array(n_chips, "number of final chips")
    fractions, backlog = _fractions_and_backlog(model, invariants, capacity)

    base_rates = [
        invariants.max_rate[i] * fractions[i]
        for i in range(len(invariants.processes))
    ]
    sensitivities: Dict[str, np.ndarray] = {}
    total = None
    for i, process in enumerate(invariants.processes):
        step = base_rates[i] * relative_step
        perturbed_ttm = []
        for sign in (+1.0, -1.0):
            rate = base_rates[i] + sign * step
            # Mirror the scalar path's rate -> fraction -> rate round trip
            # (conditions store fractions, the foundry rescales by max rate).
            effective = invariants.max_rate[i] * (
                rate / invariants.max_rate[i]
            )
            rates = list(base_rates)
            rates[i] = effective
            perturbed_ttm.append(
                _total_weeks_at_rates(
                    model, invariants, quantities, backlog, rates
                )
            )
        slope = (perturbed_ttm[0] - perturbed_ttm[1]) / (2.0 * step)
        sensitivity = np.abs(slope)
        sensitivities[process] = sensitivity
        total = sensitivity if total is None else total + sensitivity

    if not np.all(total > 0.0):
        raise InvalidParameterError(
            f"design {design.name!r} has zero TTM sensitivity on all nodes; "
            "CAS is unbounded (check the production volume is non-trivial)"
        )
    shape = np.shape(total)
    return BatchCASResult(
        design=design.name,
        cas=1.0 / total,
        sensitivity={
            name: np.broadcast_to(np.asarray(value, float), shape)
            for name, value in sensitivities.items()
        },
    )


def ttm_over_capacity(
    model: TTMModel,
    design: ChipDesign,
    n_chips: float,
    fractions: Sequence[float],
) -> np.ndarray:
    """Total TTM over a global capacity sweep (batched ``ttm_curve``)."""
    return batch_ttm(model, design, n_chips, capacity=fractions).total_weeks


def cas_over_capacity(
    model: TTMModel,
    design: ChipDesign,
    n_chips: float,
    fractions: Sequence[float],
    relative_step: float = DEFAULT_RELATIVE_STEP,
) -> np.ndarray:
    """Normalized CAS over a global capacity sweep (batched ``cas_curve``)."""
    return batch_cas(
        model, design, n_chips, capacity=fractions, relative_step=relative_step
    ).normalized


__all__ = [
    "BatchCASResult",
    "BatchTTMResult",
    "batch_cas",
    "batch_ttm",
    "cas_over_capacity",
    "ttm_over_capacity",
]
