"""Design-axis vectorization: one fused pass over (designs x samples).

The batch kernels in :mod:`repro.engine.batch` vectorize the *sample*
axis but still run once per design, so every multi-design workload —
fig03/fig13 pair sweeps, Monte Carlo design comparisons, co-design
candidate scoring, portfolio assessment — pays a Python loop, a kernel
dispatch and an invariant lookup per design. This module removes that
loop: :func:`compile_portfolio` stacks the per-design
:class:`~repro.engine.invariants.DesignInvariants` scalars into aligned
structure-of-arrays tensors (padded to the widest design's node count,
with a ``node_mask``), and :func:`portfolio_ttm` /
:func:`portfolio_cas` / :func:`portfolio_cost` evaluate the full
``(n_designs, n_samples)`` tensor in one broadcasted pass.

Common random numbers
---------------------
The supply-side sample arrays (``capacity``, ``queue_weeks``,
``d0_scale``, ``wafer_rate_scale``) are *shared* across the design axis:
sample ``s`` applies the same drawn world to every design, which is the
common-random-numbers design that makes portfolio deltas (A minus B per
sample) low-variance. They must therefore be scalars or 1-D sample
vectors; only ``n_chips`` may carry a per-design leading axis
``(n_designs, n_samples)`` (products ship different volumes in the same
world). Padded node slots hold neutral values (rate 1, zero wafers, zero
latency) and are masked out of every reduction, so rows of the result
are bit-comparable to a per-design :func:`~repro.engine.batch.batch_ttm`
call — the equivalence suite pins each cell to <= 1e-9.

Compiled portfolios are cached in the shared invariant LRU
(:func:`~repro.engine.invariants.cached_invariants`) under a fingerprint
key — the identity tuple of the technology database and every design
plus the scalar model knobs — so repeated evaluations across a sweep or
served requests skip recompilation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..agility.derivative import DEFAULT_RELATIVE_STEP
from ..cost.model import CostModel
from ..design.chip import ChipDesign
from ..errors import InvalidParameterError
from ..obs.instrument import observed_kernel
from ..technology.database import TechnologyDatabase
from ..technology.yield_model import DEFAULT_ALPHA
from ..ttm.model import DEFAULT_ENGINEERS, TTMModel
from .batch import _WAFERS_PER_NORMALIZED_UNIT, _as_positive_array
from .compiled import get_backend
from .invariants import (
    DesignInvariants,
    DieYieldProfile,
    _IdKey,
    cached_invariants,
    design_invariants,
)

ArrayLike = Union[float, Sequence[float], np.ndarray]

#: ``capacity`` argument: global scalar/sample-vector or per-node mapping.
CapacityLike = Union[ArrayLike, Mapping[str, ArrayLike]]


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class PortfolioInvariants:
    """Structure-of-arrays stack of per-design invariants.

    Per-node tensors have shape ``(n_designs, max_nodes)``, padded past
    each design's node count with neutral values (``max_rate`` 1.0,
    everything else 0.0) and masked by ``node_mask``; per-design vectors
    have shape ``(n_designs,)``. Die-yield profiles are flattened into
    parallel ``profile_*`` arrays (one row per die type across the whole
    portfolio) indexed by ``profile_design`` / ``profile_node``, so the
    D0-dependent terms re-derive for every (design, sample) cell in one
    vectorized pass; dies with fixed-yield or core-salvage specs keep
    their :class:`~repro.engine.invariants.DieYieldProfile` for the
    (rare, small) exact per-profile evaluation.
    """

    designs: Tuple[str, ...]
    processes: Tuple[Tuple[str, ...], ...]
    node_mask: np.ndarray
    tapeout_weeks: np.ndarray
    max_rate: np.ndarray
    fab_latency_weeks: np.ndarray
    wafers_per_chip: np.ndarray
    wafer_cost_usd: np.ndarray
    tapeout_effort_weeks: np.ndarray
    tapeout_fixed_usd: np.ndarray
    mask_set_usd: np.ndarray
    sequential_tapeout_weeks: np.ndarray
    max_tapeout_weeks: np.ndarray
    testing_weeks_per_chip: np.ndarray
    assembly_weeks_per_chip: np.ndarray
    design_weeks: np.ndarray
    alpha: float
    per_design: Tuple[DesignInvariants, ...]
    profile_design: np.ndarray
    profile_node: np.ndarray
    profile_count: np.ndarray
    profile_ntt: np.ndarray
    profile_area_mm2: np.ndarray
    profile_gross: np.ndarray
    profile_testing_effort: np.ndarray
    special_profiles: Tuple[Tuple[int, DieYieldProfile], ...]
    profile_mean_defects: np.ndarray

    @property
    def n_designs(self) -> int:
        """Number of stacked designs (the tensor's leading axis)."""
        return len(self.designs)

    @property
    def max_nodes(self) -> int:
        """Padded node-axis width (widest design's node count)."""
        return int(self.node_mask.shape[1])

    def profile_yields(self, d0_scale: ArrayLike) -> np.ndarray:
        """Per-die-type sellable yield, shape ``(n_profiles, n_samples)``.

        Plain Eq. 6 dies evaluate in one vectorized power; fixed-yield
        and salvage dies fall back to their profile's exact
        ``yield_at`` (a handful of rows at most).
        """
        scale = np.asarray(d0_scale, dtype=float)
        if scale.ndim == 0:
            scale = scale.reshape(1)
        yields = (
            1.0 + self.profile_mean_defects[:, None] * scale / self.alpha
        ) ** (-self.alpha)
        for row, profile in self.special_profiles:
            yields[row] = profile.yield_at(scale, self.alpha)
        return yields

    def wafers_per_chip_at(
        self,
        d0_scale: ArrayLike,
        yields: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Wafers per final chip with D0 scaled per sample.

        Returns ``(n_designs, max_nodes, n_samples)``; padded node slots
        stay 0. Contributions accumulate in global profile order, which
        per (design, node) cell is each design's own die order — the
        same order as the scalar accumulation, so the result matches
        ``DesignInvariants.wafers_per_chip_at`` to the last bit.
        ``yields``, when given, must be ``profile_yields(d0_scale)``
        (callers evaluating several yield-dependent tensors share one
        ``pow`` pass; the result is bit-identical either way).
        """
        scale = np.asarray(d0_scale, dtype=float)
        if scale.ndim == 0:
            scale = scale.reshape(1)
        if yields is None:
            yields = self.profile_yields(scale)
        out = np.zeros((self.n_designs, self.max_nodes, scale.shape[0]))
        contribution = self.profile_count[:, None] / (
            self.profile_gross[:, None] * yields
        )
        np.add.at(out, (self.profile_design, self.profile_node), contribution)
        return out

    def testing_weeks_per_chip_at(
        self,
        d0_scale: ArrayLike,
        yields: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Eq. 7 testing term per chip, shape ``(n_designs, n_samples)``.

        ``yields`` has the same precomputed-``profile_yields`` contract
        as :meth:`wafers_per_chip_at`.
        """
        scale = np.asarray(d0_scale, dtype=float)
        if scale.ndim == 0:
            scale = scale.reshape(1)
        if yields is None:
            yields = self.profile_yields(scale)
        out = np.zeros((self.n_designs, scale.shape[0]))
        contribution = (
            self.profile_count[:, None]
            / yields
            * self.profile_ntt[:, None]
            * self.profile_testing_effort[:, None]
        )
        np.add.at(out, self.profile_design, contribution)
        return out


def _compile(
    designs: Tuple[ChipDesign, ...],
    technology: TechnologyDatabase,
    engineers: int,
    alpha: float,
    edge_corrected: bool,
    block_parallel: bool,
) -> PortfolioInvariants:
    per_design = tuple(
        design_invariants(
            design,
            technology,
            engineers,
            alpha=alpha,
            edge_corrected=edge_corrected,
            block_parallel=block_parallel,
        )
        for design in designs
    )
    n_designs = len(designs)
    max_nodes = max(len(inv.processes) for inv in per_design)

    node_mask = np.zeros((n_designs, max_nodes), dtype=bool)
    tapeout = np.zeros((n_designs, max_nodes))
    max_rate = np.ones((n_designs, max_nodes))
    fab_latency = np.zeros((n_designs, max_nodes))
    wafers = np.zeros((n_designs, max_nodes))
    wafer_cost = np.zeros((n_designs, max_nodes))
    effort = np.zeros((n_designs, max_nodes))
    fixed = np.zeros((n_designs, max_nodes))
    masks = np.zeros((n_designs, max_nodes))
    sequential = np.zeros(n_designs)
    max_tapeout = np.zeros(n_designs)
    testing = np.zeros(n_designs)
    assembly = np.zeros(n_designs)
    design_weeks = np.zeros(n_designs)

    profile_design: list = []
    profile_node: list = []
    profile_count: list = []
    profile_ntt: list = []
    profile_area: list = []
    profile_gross: list = []
    profile_effort: list = []
    profile_defects: list = []
    special: list = []

    for d, (design, inv) in enumerate(zip(designs, per_design)):
        n = len(inv.processes)
        node_mask[d, :n] = True
        tapeout[d, :n] = inv.tapeout_weeks
        max_rate[d, :n] = inv.max_rate
        fab_latency[d, :n] = inv.fab_latency_weeks
        wafers[d, :n] = inv.wafers_per_chip
        sequential[d] = inv.sequential_tapeout_weeks
        max_tapeout[d] = float(np.max(inv.tapeout_weeks))
        testing[d] = inv.testing_weeks_per_chip
        assembly[d] = inv.assembly_weeks_per_chip
        design_weeks[d] = inv.design_weeks
        nut_by_process = design.nut_by_process()
        for p, name in enumerate(inv.processes):
            node = technology[name]
            wafer_cost[d, p] = node.wafer_cost_usd
            effort[d, p] = nut_by_process.get(name, 0.0) * node.tapeout_effort
            fixed[d, p] = node.tapeout_fixed_cost_usd
            masks[d, p] = node.mask_set_cost_usd
        for profile in inv.die_profiles:
            row = len(profile_design)
            profile_design.append(d)
            profile_node.append(profile.process_index)
            profile_count.append(profile.count)
            profile_ntt.append(profile.ntt)
            profile_area.append(profile.area_mm2)
            profile_gross.append(profile.gross_per_wafer)
            profile_effort.append(profile.testing_effort)
            profile_defects.append(profile.mean_defects)
            if (
                profile.fixed_yield is not None
                or profile.salvage_uncore_defects is not None
            ):
                special.append((row, profile))

    return PortfolioInvariants(
        designs=tuple(design.name for design in designs),
        processes=tuple(inv.processes for inv in per_design),
        node_mask=_readonly(node_mask),
        tapeout_weeks=_readonly(tapeout),
        max_rate=_readonly(max_rate),
        fab_latency_weeks=_readonly(fab_latency),
        wafers_per_chip=_readonly(wafers),
        wafer_cost_usd=_readonly(wafer_cost),
        tapeout_effort_weeks=_readonly(effort),
        tapeout_fixed_usd=_readonly(fixed),
        mask_set_usd=_readonly(masks),
        sequential_tapeout_weeks=_readonly(sequential),
        max_tapeout_weeks=_readonly(max_tapeout),
        testing_weeks_per_chip=_readonly(testing),
        assembly_weeks_per_chip=_readonly(assembly),
        design_weeks=_readonly(design_weeks),
        alpha=alpha,
        per_design=per_design,
        profile_design=_readonly(np.asarray(profile_design, dtype=np.intp)),
        profile_node=_readonly(np.asarray(profile_node, dtype=np.intp)),
        profile_count=_readonly(np.asarray(profile_count, dtype=float)),
        profile_ntt=_readonly(np.asarray(profile_ntt, dtype=float)),
        profile_area_mm2=_readonly(np.asarray(profile_area, dtype=float)),
        profile_gross=_readonly(np.asarray(profile_gross, dtype=float)),
        profile_testing_effort=_readonly(
            np.asarray(profile_effort, dtype=float)
        ),
        special_profiles=tuple(special),
        profile_mean_defects=_readonly(
            np.asarray(profile_defects, dtype=float)
        ),
    )


def portfolio_fingerprint(
    designs: Sequence[ChipDesign],
    technology: TechnologyDatabase,
    engineers: int = DEFAULT_ENGINEERS,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
    block_parallel: bool = False,
) -> tuple:
    """The shared-LRU cache key for a compiled portfolio.

    Identity-keyed like the per-design entries (both ``ChipDesign`` and
    ``TechnologyDatabase`` are immutable by construction), plus the
    scalar model knobs. Two call sites evaluating the same design tuple
    under the same database hit one cache entry.
    """
    return (
        "portfolio",
        _IdKey(technology),
        tuple(_IdKey(design) for design in designs),
        engineers,
        alpha,
        edge_corrected,
        block_parallel,
    )


@observed_kernel("engine.compile_portfolio", lambda r: r.node_mask.size)
def compile_portfolio(
    designs: Sequence[ChipDesign],
    technology: TechnologyDatabase,
    engineers: int = DEFAULT_ENGINEERS,
    alpha: float = DEFAULT_ALPHA,
    edge_corrected: bool = False,
    block_parallel: bool = False,
) -> PortfolioInvariants:
    """Stack per-design invariants into one aligned SoA tensor (cached).

    Compilation itself goes through :func:`design_invariants`, so the
    per-design entries land in (or come from) the same shared LRU the
    scalar batch kernels use; the stacked result is cached under its
    :func:`portfolio_fingerprint`.
    """
    designs = tuple(designs)
    if not designs:
        raise InvalidParameterError(
            "portfolio must contain at least one design"
        )
    key = portfolio_fingerprint(
        designs,
        technology,
        engineers=engineers,
        alpha=alpha,
        edge_corrected=edge_corrected,
        block_parallel=block_parallel,
    )
    return cached_invariants(
        key,
        lambda: _compile(
            designs,
            technology,
            engineers,
            alpha,
            edge_corrected,
            block_parallel,
        ),
    )


def _sample_array(
    values: ArrayLike, what: str, *, nonnegative: bool = False
) -> np.ndarray:
    """Validate a supply-side sample input (shared across designs)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InvalidParameterError(f"{what} must be non-empty")
    if array.ndim > 1:
        raise InvalidParameterError(
            f"{what} is shared across designs (common random numbers) and "
            f"must be a scalar or 1-D sample vector; got shape {array.shape}"
        )
    flat = array.reshape(-1)
    if nonnegative:
        if not np.all(flat >= 0.0):
            bad = float(flat[~(flat >= 0.0)][0])
            raise InvalidParameterError(f"{what} must be >= 0, got {bad}")
    elif not np.all(flat > 0.0):
        bad = float(flat[~(flat > 0.0)][0])
        raise InvalidParameterError(f"{what} must be positive, got {bad}")
    return array


def _portfolio_quantities(
    n_chips: ArrayLike, n_designs: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate ``n_chips`` and split it into node-axis/design-axis views."""
    quantities = _as_positive_array(n_chips, "number of final chips")
    if quantities.ndim <= 1:
        return quantities, quantities
    if quantities.ndim == 2:
        if quantities.shape[0] != n_designs:
            raise InvalidParameterError(
                "per-design n_chips must have shape (n_designs, n_samples); "
                f"got {quantities.shape} for {n_designs} designs"
            )
        return quantities[:, None, :], quantities
    raise InvalidParameterError(
        "n_chips must be a scalar, a shared sample vector, or a "
        f"(n_designs, n_samples) matrix; got shape {quantities.shape}"
    )


@dataclass(frozen=True)
class _PortfolioSupply:
    """Supply-side tensors shared by the portfolio TTM and CAS kernels.

    ``rates`` / ``backlog`` / ``wafers_per_chip`` have the node axis
    ``(n_designs, max_nodes, n_samples-or-1)``;
    ``testing_weeks_per_chip`` is ``(n_designs, n_samples-or-1)``.
    Padded node slots carry harmless finite values — every reduction
    masks them out via ``node_mask``.
    """

    rates: np.ndarray
    backlog: np.ndarray
    wafers_per_chip: np.ndarray
    testing_weeks_per_chip: np.ndarray


@dataclass
class _SupplyScratch:
    """Reusable ``(n_designs, max_nodes, n_samples)`` supply buffers.

    Passing these to :func:`_portfolio_supply` redirects the resolved
    tensors into preallocated storage instead of fresh temporaries.
    Every output element is still the same ufunc on the same operands
    (inputs broadcast up to the buffer shape), so the resolved supply
    stays bit-identical to the allocating path — only the allocator
    traffic changes. The returned :class:`_PortfolioSupply` aliases the
    buffers, so callers must consume it before the next resolve that
    reuses the same scratch.
    """

    scaled: np.ndarray
    rates: np.ndarray
    backlog: np.ndarray
    fraction: np.ndarray


def _portfolio_supply(
    model: TTMModel,
    invariants: PortfolioInvariants,
    capacity: Optional[CapacityLike],
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    scratch: Optional[_SupplyScratch] = None,
) -> _PortfolioSupply:
    """Resolve the sampled supply parameters into portfolio tensors."""
    conditions = model.foundry.conditions
    n_designs, max_nodes = invariants.node_mask.shape

    rate_scale: ArrayLike = 1.0
    if wafer_rate_scale is not None:
        rate_scale = _sample_array(wafer_rate_scale, "wafer rate scale")
    queue_override = None
    if queue_weeks is not None:
        queue_override = _sample_array(
            queue_weeks, "queue weeks", nonnegative=True
        )

    shared = None
    mapping: Optional[Mapping[str, np.ndarray]] = None
    if isinstance(capacity, Mapping):
        mapping = {
            name: _sample_array(values, f"capacity fraction for {name!r}")
            for name, values in capacity.items()
        }
    elif capacity is not None:
        shared = _sample_array(capacity, "capacity fraction")

    def _mul(a: ArrayLike, b: ArrayLike, out: Optional[np.ndarray]):
        if out is None:
            return np.asarray(a) * b
        return np.multiply(a, b, out=out)

    scaled_max_rate = _mul(
        invariants.max_rate[:, :, None],
        rate_scale,
        scratch.scaled if scratch is not None else None,
    )
    rates_out = scratch.rates if scratch is not None else None

    if shared is not None:
        rates = _mul(scaled_max_rate, shared, rates_out)
    else:
        base = np.ones((n_designs, max_nodes))
        for d, processes in enumerate(invariants.processes):
            for p, name in enumerate(processes):
                if mapping is not None and name in mapping:
                    continue
                fraction = conditions.capacity_for(name)
                if fraction <= 0.0:
                    raise InvalidParameterError(
                        f"node {name!r} has zero effective capacity "
                        f"(fraction {fraction}); time-to-market would be "
                        "unbounded"
                    )
                base[d, p] = fraction
        if mapping is None:
            rates = _mul(scaled_max_rate, base[:, :, None], rates_out)
        else:
            if scratch is None:
                tail = np.broadcast_shapes(
                    *(value.shape for value in mapping.values())
                )
                fraction_tensor = np.empty(
                    (n_designs, max_nodes) + (tail if tail else (1,))
                )
            else:
                fraction_tensor = scratch.fraction
            fraction_tensor[...] = base[:, :, None]
            for d, processes in enumerate(invariants.processes):
                for p, name in enumerate(processes):
                    if name in mapping:
                        fraction_tensor[d, p, :] = mapping[name]
            rates = _mul(scaled_max_rate, fraction_tensor, rates_out)

    backlog_out = scratch.backlog if scratch is not None else None
    if queue_override is not None:
        backlog = _mul(queue_override, scaled_max_rate, backlog_out)
    else:
        quotes = np.zeros((n_designs, max_nodes))
        for d, processes in enumerate(invariants.processes):
            for p, name in enumerate(processes):
                quotes[d, p] = conditions.queue_weeks_for(name)
        backlog = _mul(quotes[:, :, None], scaled_max_rate, backlog_out)
    backlog = np.broadcast_to(
        backlog, np.broadcast_shapes(backlog.shape, rates.shape)
    )

    if d0_scale is None:
        wafers = invariants.wafers_per_chip[:, :, None]
        testing = invariants.testing_weeks_per_chip[:, None]
    else:
        scale = _sample_array(d0_scale, "defect density scale")
        wafers = invariants.wafers_per_chip_at(scale)
        testing = invariants.testing_weeks_per_chip_at(scale)
    return _PortfolioSupply(
        rates=rates,
        backlog=backlog,
        wafers_per_chip=wafers,
        testing_weeks_per_chip=testing,
    )


def _total_weeks_at_rates(
    invariants: PortfolioInvariants,
    schedule: str,
    tap_latency_weeks: float,
    quantities_node: np.ndarray,
    quantities_design: np.ndarray,
    supply: _PortfolioSupply,
    rates: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(tapeout, fabrication, packaging, total) weeks, each ``(D, S)``.

    The arithmetic mirrors ``batch.batch_ttm`` term for term (same
    association order) so each row reproduces the per-design kernel to
    the last bit; padded node slots are masked to ``-inf`` before the
    node-axis max-reductions.
    """
    mask = invariants.node_mask[:, :, None]
    queue_drain_weeks = supply.backlog / rates
    production_weeks = quantities_node * supply.wafers_per_chip / rates
    node_total = (
        queue_drain_weeks
        + production_weeks
        + invariants.fab_latency_weeks[:, :, None]
    )
    if schedule == "pipelined":
        tapeout_weeks = invariants.max_tapeout_weeks[:, None]
        ready = invariants.tapeout_weeks[:, :, None] + node_total
        fabrication_weeks = (
            np.max(np.where(mask, ready, -np.inf), axis=1) - tapeout_weeks
        )
    else:
        tapeout_weeks = invariants.sequential_tapeout_weeks[:, None]
        fabrication_weeks = np.max(
            np.where(mask, node_total, -np.inf), axis=1
        )
    packaging_weeks = (
        tap_latency_weeks
        + quantities_design * supply.testing_weeks_per_chip
        + quantities_design * invariants.assembly_weeks_per_chip[:, None]
    )
    total_weeks = (
        invariants.design_weeks[:, None]
        + tapeout_weeks
        + fabrication_weeks
        + packaging_weeks
    )
    return tapeout_weeks, fabrication_weeks, packaging_weeks, total_weeks


@dataclass(frozen=True)
class PortfolioTTMResult:
    """TTM phase breakdown over the full (designs x samples) tensor.

    Row ``i`` equals :func:`~repro.engine.batch.batch_ttm` for design
    ``i`` under the same sampled supply (common random numbers). All
    arrays share the broadcast shape ``(n_designs, n_samples)``.
    """

    designs: Tuple[str, ...]
    schedule: str
    design_weeks: np.ndarray
    tapeout_weeks: np.ndarray
    fabrication_weeks: np.ndarray
    packaging_weeks: np.ndarray
    total_weeks: np.ndarray
    total_wafers: np.ndarray


@observed_kernel("engine.portfolio_ttm", lambda r: r.total_weeks.size)
def portfolio_ttm(
    model: TTMModel,
    designs: Sequence[ChipDesign],
    n_chips: ArrayLike,
    capacity: Optional[CapacityLike] = None,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    invariants: Optional[PortfolioInvariants] = None,
) -> PortfolioTTMResult:
    """Vectorized TTM for every design under one shared sample set.

    Semantics per design match :func:`~repro.engine.batch.batch_ttm`
    (``capacity=None`` keeps current conditions, a scalar/vector is a
    global fraction, a mapping overrides listed nodes). The sampled
    supply arrays are shared across designs — the common-random-numbers
    guarantee — and must be scalars or 1-D; ``n_chips`` may additionally
    be a ``(n_designs, n_samples)`` matrix.

    ``invariants`` accepts a pre-compiled portfolio (e.g. a
    shared-memory attach in a worker process); when given, ``designs``
    is unused and may be ``None``.
    """
    if invariants is None:
        invariants = compile_portfolio(
            designs,
            model.foundry.technology,
            engineers=model.engineers,
            alpha=model.alpha,
            edge_corrected=model.edge_corrected,
            block_parallel=model.block_parallel,
        )
    quantities_node, quantities_design = _portfolio_quantities(
        n_chips, invariants.n_designs
    )
    supply = _portfolio_supply(
        model,
        invariants,
        capacity,
        queue_weeks=queue_weeks,
        d0_scale=d0_scale,
        wafer_rate_scale=wafer_rate_scale,
    )
    if get_backend().name == "compiled":
        from .compiled.adapters import portfolio_ttm_from_supply

        return portfolio_ttm_from_supply(
            model, invariants, quantities_design, supply
        )
    tapeout_weeks, fabrication_weeks, packaging_weeks, total_weeks = (
        _total_weeks_at_rates(
            invariants,
            model.schedule,
            model.tap_latency_weeks,
            quantities_node,
            quantities_design,
            supply,
            supply.rates,
        )
    )
    total_wafers = quantities_design * np.sum(
        supply.wafers_per_chip, axis=1
    )
    shape = np.broadcast_shapes(
        total_weeks.shape, np.shape(total_wafers)
    )
    return PortfolioTTMResult(
        designs=invariants.designs,
        schedule=model.schedule,
        design_weeks=invariants.design_weeks,
        tapeout_weeks=np.broadcast_to(tapeout_weeks, shape),
        fabrication_weeks=np.broadcast_to(fabrication_weeks, shape),
        packaging_weeks=np.broadcast_to(packaging_weeks, shape),
        total_weeks=np.broadcast_to(total_weeks, shape),
        total_wafers=np.broadcast_to(
            np.asarray(total_wafers, dtype=float), shape
        ),
    )


@dataclass(frozen=True)
class PortfolioCASResult:
    """Chip Agility Score (Eq. 8) over the (designs x samples) tensor.

    ``cas`` is raw wafers/week^2 with shape ``(n_designs, n_samples)``;
    ``sensitivity`` is per node slot, ``(n_designs, max_nodes,
    n_samples)``, zero in padded slots.
    """

    designs: Tuple[str, ...]
    processes: Tuple[Tuple[str, ...], ...]
    cas: np.ndarray
    sensitivity: np.ndarray

    @property
    def normalized(self) -> np.ndarray:
        """CAS in the figures' normalized (kilo-wafer) units."""
        return self.cas / _WAFERS_PER_NORMALIZED_UNIT


@observed_kernel("engine.portfolio_cas", lambda r: r.cas.size)
def portfolio_cas(
    model: TTMModel,
    designs: Sequence[ChipDesign],
    n_chips: ArrayLike,
    capacity: Optional[CapacityLike] = None,
    relative_step: float = DEFAULT_RELATIVE_STEP,
    queue_weeks: Optional[ArrayLike] = None,
    d0_scale: Optional[ArrayLike] = None,
    wafer_rate_scale: Optional[ArrayLike] = None,
    invariants: Optional[PortfolioInvariants] = None,
) -> PortfolioCASResult:
    """Vectorized CAS for every design under one shared sample set.

    Each node slot's rate is perturbed by ``relative_step`` in both
    directions and the central-difference TTM slope accumulated, exactly
    as in :func:`~repro.engine.batch.batch_cas`; padded slots perturb a
    neutral rate that is masked out of the TTM reduction, so their slope
    is exactly zero and the per-design sensitivity sum is unchanged.
    """
    if not 0.0 < relative_step < 1.0:
        raise InvalidParameterError(
            f"relative step must be in (0, 1), got {relative_step}"
        )
    if invariants is None:
        invariants = compile_portfolio(
            designs,
            model.foundry.technology,
            engineers=model.engineers,
            alpha=model.alpha,
            edge_corrected=model.edge_corrected,
            block_parallel=model.block_parallel,
        )
    quantities_node, quantities_design = _portfolio_quantities(
        n_chips, invariants.n_designs
    )
    supply = _portfolio_supply(
        model,
        invariants,
        capacity,
        queue_weeks=queue_weeks,
        d0_scale=d0_scale,
        wafer_rate_scale=wafer_rate_scale,
    )
    if get_backend().name == "compiled":
        from .compiled.adapters import portfolio_cas_from_supply

        return portfolio_cas_from_supply(
            model, invariants, quantities_design, supply, relative_step
        )

    base_rates = np.ascontiguousarray(supply.rates)
    sensitivities = []
    total = None
    for p in range(invariants.max_nodes):
        step = base_rates[:, p, :] * relative_step
        perturbed_ttm = []
        for sign in (+1.0, -1.0):
            rate = base_rates[:, p, :] + sign * step
            # Mirror the scalar path's rate -> fraction -> rate round trip
            # (conditions store fractions, the foundry rescales by max rate).
            effective = invariants.max_rate[:, p, None] * (
                rate / invariants.max_rate[:, p, None]
            )
            rates = base_rates.copy()
            rates[:, p, :] = effective
            perturbed_ttm.append(
                _total_weeks_at_rates(
                    invariants,
                    model.schedule,
                    model.tap_latency_weeks,
                    quantities_node,
                    quantities_design,
                    supply,
                    rates,
                )[3]
            )
        slope = (perturbed_ttm[0] - perturbed_ttm[1]) / (2.0 * step)
        sensitivity = np.abs(slope)
        sensitivities.append(sensitivity)
        total = sensitivity if total is None else total + sensitivity

    row_positive = np.all(
        total > 0.0, axis=tuple(range(1, np.ndim(total)))
    )
    if not np.all(row_positive):
        bad = invariants.designs[int(np.argmin(row_positive))]
        raise InvalidParameterError(
            f"design {bad!r} has zero TTM sensitivity on all nodes; "
            "CAS is unbounded (check the production volume is non-trivial)"
        )
    shape = np.shape(total)
    return PortfolioCASResult(
        designs=invariants.designs,
        processes=invariants.processes,
        cas=1.0 / total,
        sensitivity=np.stack(
            [np.broadcast_to(s, shape) for s in sensitivities], axis=1
        ),
    )


@dataclass(frozen=True)
class PortfolioCostResult:
    """Chip-creation cost breakdown over the (designs x samples) tensor.

    NRE terms are per-design ``(n_designs,)`` vectors; recurring terms
    share the broadcast shape ``(n_designs, n_samples)``. Row ``i``
    equals :func:`~repro.engine.batch.batch_cost` for design ``i``.
    """

    designs: Tuple[str, ...]
    engineering_usd: np.ndarray
    fixed_usd: np.ndarray
    mask_usd: np.ndarray
    wafer_usd: np.ndarray
    testing_usd: np.ndarray
    packaging_usd: np.ndarray
    n_chips: np.ndarray

    @property
    def nre_usd(self) -> np.ndarray:
        """One-time costs per design: engineering + fixed + masks."""
        return self.engineering_usd + self.fixed_usd + self.mask_usd

    @property
    def manufacturing_usd(self) -> np.ndarray:
        """Recurring costs: wafers + testing + packaging."""
        return self.wafer_usd + self.testing_usd + self.packaging_usd

    @property
    def total_usd(self) -> np.ndarray:
        """Total chip-creation cost per (design, sample) cell."""
        return self.nre_usd[:, None] + self.manufacturing_usd

    @property
    def usd_per_chip(self) -> np.ndarray:
        """Total cost amortized over each cell's production run."""
        return self.total_usd / self.n_chips


@observed_kernel("engine.portfolio_cost", lambda r: r.n_chips.size)
def portfolio_cost(
    cost_model: CostModel,
    designs: Sequence[ChipDesign],
    n_chips: ArrayLike,
    d0_scale: Optional[ArrayLike] = None,
    engineers: int = DEFAULT_ENGINEERS,
    invariants: Optional[PortfolioInvariants] = None,
) -> PortfolioCostResult:
    """Vectorized chip-creation cost for every design in one pass.

    ``engineers`` only selects which cached invariants are reused (cost
    is team-size independent); pass the companion TTM model's team size
    so a joint TTM+cost study shares one compiled portfolio.
    """
    if invariants is None:
        invariants = compile_portfolio(
            designs,
            cost_model.technology,
            engineers=engineers,
            alpha=cost_model.alpha,
            edge_corrected=cost_model.edge_corrected,
        )
    quantities_node, quantities_design = _portfolio_quantities(
        n_chips, invariants.n_designs
    )
    if d0_scale is None:
        scale: np.ndarray = np.asarray(1.0, dtype=float)
    else:
        scale = _sample_array(d0_scale, "defect density scale")
    if get_backend().name == "compiled":
        from .compiled.adapters import portfolio_cost_from_parts

        return portfolio_cost_from_parts(
            cost_model, invariants, quantities_node, quantities_design, scale
        )
    return _portfolio_cost_from_tensors(
        cost_model,
        invariants,
        quantities_node,
        quantities_design,
        invariants.wafers_per_chip_at(scale),
        invariants.profile_yields(scale),
    )


def _scatter_add_rows(
    out: np.ndarray, index: np.ndarray, contribution: np.ndarray
) -> None:
    """``np.add.at(out, index, contribution)`` via in-order row adds.

    ``np.add.at`` applies ``out[index[i]] += contribution[i]`` for ``i``
    in array order through a slow element-general inner loop; running
    the very same accumulation as one in-place vectorized row add per
    profile keeps the operation order and operands — and therefore the
    bits — identical while being several times faster. Falls back to
    ``np.add.at`` when rows are not arrays (scalar tail).
    """
    if out.ndim >= 2 and np.ndim(contribution) >= 2:
        for i, d in enumerate(index):
            out[d] += contribution[i]
    else:
        np.add.at(out, index, contribution)


def _portfolio_cost_from_tensors(
    cost_model: CostModel,
    invariants: PortfolioInvariants,
    quantities_node: np.ndarray,
    quantities_design: np.ndarray,
    wafers_per_chip: np.ndarray,
    yields: np.ndarray,
    production_load: Optional[np.ndarray] = None,
    dies_numerator: Optional[np.ndarray] = None,
) -> PortfolioCostResult:
    """NumPy cost kernel over precomputed D0-dependent tensors.

    Split out of :func:`portfolio_cost` so the fused scenario cube can
    compute the ``pow``-heavy ``wafers_per_chip_at`` / ``profile_yields``
    tensors once per unique D0 multiplier and share them across every
    (demand, D0) combination — the arithmetic downstream of the tensors
    is unchanged, so results stay bit-identical per call.
    ``production_load``, when given, must equal ``quantities_node *
    wafers_per_chip`` (the TTM cube computes exactly that product per
    group and lends it out here); ``dies_numerator`` must equal the
    per-profile quantities times ``profile_count`` (demand-only, so the
    scenario cube shares it across D0 groups).
    """
    engineering = np.sum(
        invariants.tapeout_effort_weeks * cost_model.engineer_week_cost_usd,
        axis=1,
    )
    fixed = np.sum(invariants.tapeout_fixed_usd, axis=1)
    masks = np.sum(invariants.mask_set_usd, axis=1)

    if production_load is None:
        production_load = quantities_node * wafers_per_chip
    wafer_usd = np.sum(
        production_load * invariants.wafer_cost_usd[:, :, None],
        axis=1,
    )

    if quantities_design.ndim == 2:
        profile_quantities: np.ndarray = quantities_design[
            invariants.profile_design
        ]
    else:
        profile_quantities = quantities_design
    if dies_numerator is None:
        dies_numerator = (
            profile_quantities * invariants.profile_count[:, None]
        )
    dies_tested = dies_numerator / yields
    testing_contribution = (
        dies_tested
        * invariants.profile_ntt[:, None]
        * cost_model.test_usd_per_transistor
    )
    packaging_contribution = dies_numerator * (
        cost_model.die_handling_usd
        + invariants.profile_area_mm2[:, None]
        * cost_model.package_area_usd_per_mm2
    )

    tail = np.broadcast_shapes(
        yields.shape[1:],
        np.shape(quantities_design)[-1:] if quantities_design.ndim else (),
    )
    testing_usd = np.zeros((invariants.n_designs,) + tail)
    _scatter_add_rows(
        testing_usd, invariants.profile_design, testing_contribution
    )
    packaging_usd = np.zeros((invariants.n_designs,) + tail)
    packaging_usd += quantities_design * cost_model.package_base_usd
    _scatter_add_rows(
        packaging_usd, invariants.profile_design, packaging_contribution
    )

    shape = np.broadcast_shapes(
        (invariants.n_designs,) + tail, np.shape(wafer_usd)
    )
    return PortfolioCostResult(
        designs=invariants.designs,
        engineering_usd=engineering,
        fixed_usd=fixed,
        mask_usd=masks,
        wafer_usd=np.broadcast_to(np.asarray(wafer_usd, float), shape),
        testing_usd=np.broadcast_to(testing_usd, shape),
        packaging_usd=np.broadcast_to(packaging_usd, shape),
        n_chips=np.broadcast_to(quantities_design, shape),
    )


def portfolio_ttm_over_capacity(
    model: TTMModel,
    designs: Sequence[ChipDesign],
    n_chips: float,
    fractions: Sequence[float],
) -> np.ndarray:
    """Total TTM over a global capacity sweep, ``(n_designs, n_points)``."""
    return portfolio_ttm(
        model, designs, n_chips, capacity=fractions
    ).total_weeks


def portfolio_cas_over_capacity(
    model: TTMModel,
    designs: Sequence[ChipDesign],
    n_chips: float,
    fractions: Sequence[float],
    relative_step: float = DEFAULT_RELATIVE_STEP,
) -> np.ndarray:
    """Normalized CAS over a global capacity sweep, ``(n_designs, n_points)``."""
    return portfolio_cas(
        model,
        designs,
        n_chips,
        capacity=fractions,
        relative_step=relative_step,
    ).normalized


__all__ = [
    "PortfolioCASResult",
    "PortfolioCostResult",
    "PortfolioInvariants",
    "PortfolioTTMResult",
    "compile_portfolio",
    "portfolio_cas",
    "portfolio_cas_over_capacity",
    "portfolio_cost",
    "portfolio_fingerprint",
    "portfolio_ttm",
    "portfolio_ttm_over_capacity",
]
