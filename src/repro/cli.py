"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    ttm-cas list                # enumerate experiments
    ttm-cas run fig7            # print Fig. 7's rows
    ttm-cas run all             # the whole evaluation section
    ttm-cas nodes               # dump the technology database
    ttm-cas mc --design a11     # Monte Carlo supply-uncertainty study
    ttm-cas obs runs/fig7.manifest.json   # summarize an obs artifact

The ``run``, ``report``, and ``mc`` commands accept ``--trace FILE``
(Chrome-trace span dump, loadable in ``chrome://tracing``),
``--metrics FILE`` (Prometheus text exposition), ``--manifest-dir DIR``
(one provenance manifest per run), and ``--backend SPEC`` (engine
backend selection: ``numpy``, ``compiled``, or ``compiled:float32``);
``obs`` summarizes any of the three artifacts, including the backend
and shared-memory availability recorded in each manifest.

(Equivalently: ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from .analysis.export import to_json
from .analysis.tables import format_table
from .errors import ReproError
from .experiments import registry
from .obs.session import ObsSession
from .technology.database import TechnologyDatabase


def _cmd_list(_: argparse.Namespace) -> int:
    rows = [[exp.key, exp.title] for exp in registry.EXPERIMENTS.values()]
    print(format_table(["experiment", "description"], rows))
    return 0


def _run_one_experiment(session: ObsSession, experiment) -> object:
    """Run one experiment under the session, capturing its manifest."""
    with session.run_manifest(
        "experiment",
        experiment.key,
        config={"experiment": experiment.key, "title": experiment.title},
    ) as sink:
        result = experiment.run()
        sink.set_result(result)
        seed = getattr(result, "seed", None)
        if seed is not None:
            sink.add_seeds({"seed": int(seed)})
    return result


def _cmd_run(args: argparse.Namespace) -> int:
    _apply_engine_arguments(args)
    keys = (
        list(registry.experiment_keys()) if args.experiment == "all"
        else [args.experiment]
    )
    with ObsSession.from_args(args) as session:
        for key in keys:
            try:
                experiment = registry.get(key)
            except KeyError as error:
                print(error, file=sys.stderr)
                return 2
            result = _run_one_experiment(session, experiment)
            if args.json:
                print(to_json(result))
            else:
                print(f"== {experiment.key}: {experiment.title} ==")
                print(result.table())  # type: ignore[attr-defined]
                print()
    return 0


def _cmd_lint(_: argparse.Namespace) -> int:
    from .technology.validate import ERROR, lint_database

    findings = lint_database(TechnologyDatabase.default())
    if not findings:
        print("technology database: no findings")
        return 0
    for finding in findings:
        print(finding)
    has_errors = any(finding.severity == ERROR for finding in findings)
    return 1 if has_errors else 0


def _cmd_report(args: argparse.Namespace) -> int:
    _apply_engine_arguments(args)
    lines = [
        "# ttm-cas evaluation report",
        "",
        "Regenerated tables and figures (paper artifacts + extensions).",
        "",
    ]
    with ObsSession.from_args(args) as session:
        for experiment in registry.EXPERIMENTS.values():
            result = _run_one_experiment(session, experiment)
            lines.append(f"## {experiment.key}: {experiment.title}")
            lines.append("")
            lines.append("```")
            lines.append(result.table())  # type: ignore[attr-defined]
            lines.append("```")
            lines.append("")
    text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


#: Designs addressable from the ``mc`` sub-command.
MC_DESIGNS = ("a11", "zen2", "zen2-monolithic")


def _cmd_mc(args: argparse.Namespace) -> int:
    _apply_engine_arguments(args)
    from .analysis.export import to_jsonable
    from .cost.model import CostModel
    from .design.library import a11, zen2, zen2_monolithic
    from .market import scenarios
    from .montecarlo import (
        default_correlated_spec,
        default_supply_spec,
        run_scenario_study,
        run_study,
        stress_scenarios,
    )
    from .ttm.model import TTMModel

    try:
        if args.design == "a11":
            design = a11(args.node)
        elif args.design == "zen2":
            design = zen2()
        else:
            design = zen2_monolithic(args.node)
        conditions = scenarios.by_name(args.scenario)
        nominal = TTMModel.nominal()
        model = nominal.with_foundry(
            nominal.foundry.with_conditions(conditions)
        )
        if args.correlated:
            spec = default_correlated_spec(n_chips=args.chips)
        else:
            spec = default_supply_spec(n_chips=args.chips)
        selector = tuple(
            entry.strip()
            for entry in args.scenarios.split(",")
            if entry.strip()
        )
        with ObsSession.from_args(args) as session:
            with session.run_manifest(
                "mc-study",
                f"mc-{args.design}",
                config={
                    "design": args.design,
                    "node": args.node,
                    "scenario": args.scenario,
                    "chips": args.chips,
                    "samples": args.samples,
                    "executor": args.executor,
                    "correlated": args.correlated,
                    "stress_scenarios": list(selector),
                    "spec": to_jsonable(spec),
                },
                seeds={"seed": args.seed},
            ) as sink:
                if selector:
                    result = run_scenario_study(
                        model,
                        [design],
                        spec,
                        stress_scenarios(selector),
                        n_samples=args.samples,
                        seed=args.seed,
                        cost_model=CostModel.nominal(),
                        executor=args.executor,
                    )
                else:
                    result = run_study(
                        model,
                        design,
                        spec,
                        n_samples=args.samples,
                        seed=args.seed,
                        cost_model=CostModel.nominal(),
                        executor=args.executor,
                    )
                sink.set_result(result)
    except (KeyError, ReproError) as error:
        # Node/scenario lookups are lazy, so bad inputs surface here;
        # report the one-line message instead of a traceback.
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2
    if args.json:
        print(to_json(result))
    elif selector:
        sampling = "correlated" if args.correlated else "independent"
        print(
            f"== Scenario stress suite: {design.name} under "
            f"{args.scenario!r} ({len(result.scenarios)} scenarios x "
            f"{args.samples} samples, {sampling} draws, seed "
            f"{args.seed}) =="
        )
        for metric in ("ttm_weeks", "cas", "cost_per_chip_usd"):
            print()
            print(f"-- {metric}: per-scenario risk (CVaR ladder) --")
            print(result.cvar_table(metric, design.name))
        print()
        print("-- ttm_weeks: exceedance vs the baseline world --")
        print(result.exceedance_table("ttm_weeks", design.name))
    else:
        print(
            f"== Monte Carlo: {design.name} under {args.scenario!r} "
            f"({args.samples} samples, seed {args.seed}) =="
        )
        print(result.table())
    return 0


def _summarize_manifest(data: Dict[str, Any]) -> None:
    from .obs.manifest import RunManifest

    manifest = RunManifest.from_jsonable(data)
    print(f"== run manifest: {manifest.kind} / {manifest.key} ==")
    info_rows = [
        ["duration_s", f"{manifest.duration_seconds:.3f}"],
        ["git_sha", manifest.git_sha or "-"],
        ["result_digest", (manifest.result_digest or "-")[:16]],
    ]
    for name, value in sorted(manifest.seeds.items()):
        info_rows.append([f"seed:{name}", value])
    for name, value in sorted(manifest.environment.items()):
        info_rows.append([f"env:{name}", value])
    print(format_table(["field", "value"], info_rows))
    if manifest.metrics:
        print()
        print(
            format_table(
                ["metric", "delta"],
                [
                    [name, _format_number(value)]
                    for name, value in sorted(manifest.metrics.items())
                ],
            )
        )


def _format_number(value: float) -> str:
    return str(int(value)) if value == int(value) else f"{value:.6g}"


def _summarize_spans(rows: List[Dict[str, Any]]) -> None:
    """Aggregate span dicts (name/wall ns/CPU ns) into a per-name table."""
    totals: Dict[str, Dict[str, float]] = {}
    for row in rows:
        entry = totals.setdefault(
            row["name"], {"count": 0, "wall": 0.0, "max": 0.0, "cpu": 0.0}
        )
        entry["count"] += 1
        entry["wall"] += row["duration_ns"]
        entry["max"] = max(entry["max"], row["duration_ns"])
        entry["cpu"] += row.get("cpu_ns", 0)
    table = [
        [
            name,
            int(entry["count"]),
            f"{entry['wall'] / 1e6:.3f}",
            f"{entry['max'] / 1e6:.3f}",
            f"{entry['cpu'] / 1e6:.3f}",
        ]
        for name, entry in sorted(
            totals.items(), key=lambda item: -item[1]["wall"]
        )
    ]
    print(
        format_table(
            ["span", "count", "wall ms", "max ms", "cpu ms"], table
        )
    )


def _cmd_obs_tail(path: str, args: argparse.Namespace) -> int:
    """``ttm-cas obs tail FILE``: recent request-log lines, oldest first."""
    from .obs.log import format_record, read_request_log, tail_records

    try:
        records = read_request_log(path)
    except OSError as error:
        print(error, file=sys.stderr)
        return 2
    for record in tail_records(records, limit=args.lines):
        print(format_record(record), flush=True)
    if not args.follow:
        return 0
    import time as _time

    try:
        with open(path, encoding="utf-8") as handle:
            handle.seek(0, os.SEEK_END)
            while True:
                line = handle.readline()
                if not line:
                    _time.sleep(0.2)
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    print(format_record(record), flush=True)
    except KeyboardInterrupt:
        return 0


def _cmd_obs_slo(path: str, args: argparse.Namespace) -> int:
    """``ttm-cas obs slo FILE``: burn rates recomputed from a request log."""
    from .obs.log import read_request_log
    from .obs.slo import report_from_records

    try:
        records = read_request_log(path)
    except OSError as error:
        print(error, file=sys.stderr)
        return 2
    window = args.window_s if args.window_s > 0 else None
    report = report_from_records(records, window_s=window)
    if not report:
        print(f"{path}: no request records")
        return 0
    scope = f"last {window:g} s" if window else "whole log"
    print(f"== SLO report ({scope}) ==")
    rows = []
    worst = False
    for endpoint, status in sorted(report.items()):
        rows.append(
            [
                endpoint,
                status["requests"],
                status["errors"],
                status["slow"],
                f"{status['error_burn_rate']:.3f}",
                f"{status['latency_burn_rate']:.3f}",
                "ok" if status["ok"] else "BURNING",
            ]
        )
        worst = worst or not status["ok"]
    print(
        format_table(
            [
                "endpoint",
                "requests",
                "errors",
                "slow",
                "err burn",
                "lat burn",
                "status",
            ],
            rows,
        )
    )
    return 1 if worst else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs.manifest import MANIFEST_SCHEMA
    from .obs.metrics import iter_prometheus_samples
    from .obs.trace import TRACE_SCHEMA

    tokens = list(args.file)
    if tokens and tokens[0] in ("tail", "slo"):
        if len(tokens) != 2:
            print(
                f"usage: ttm-cas obs {tokens[0]} FILE", file=sys.stderr
            )
            return 2
        handler = _cmd_obs_tail if tokens[0] == "tail" else _cmd_obs_slo
        return handler(tokens[1], args)
    if len(tokens) != 1:
        print("usage: ttm-cas obs [tail|slo] FILE", file=sys.stderr)
        return 2
    path = tokens[0]

    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print(error, file=sys.stderr)
        return 2
    try:
        data: Any = json.loads(text)
    except ValueError:
        data = None
    if isinstance(data, dict) and data.get("schema") == MANIFEST_SCHEMA:
        _summarize_manifest(data)
        return 0
    if isinstance(data, dict) and data.get("schema") == TRACE_SCHEMA:
        print(f"== trace: {len(data['spans'])} spans ==")
        _summarize_spans(data["spans"])
        return 0
    if isinstance(data, dict) and "traceEvents" in data:
        spans = [
            {
                "name": event["name"],
                "duration_ns": float(event.get("dur", 0.0)) * 1000.0,
                "cpu_ns": 0.0,
            }
            for event in data["traceEvents"]
            if event.get("ph") == "X"
        ]
        print(f"== chrome trace: {len(spans)} complete events ==")
        _summarize_spans(spans)
        return 0
    if data is None and "# TYPE" in text:
        from .obs.metrics import histogram_quantiles_from_text

        samples = [
            [series, _format_number(value)]
            for series, value in iter_prometheus_samples(text)
            if value != 0.0
        ]
        print(f"== metrics: {len(samples)} non-zero series ==")
        if samples:
            print(format_table(["series", "value"], samples))
        quantiles = [
            (series, entry)
            for series, entry in histogram_quantiles_from_text(text)
            if any(entry.values())
        ]
        if quantiles:
            print()
            print("-- histogram quantiles (estimated from buckets) --")
            print(
                format_table(
                    ["series", "p50", "p95", "p99"],
                    [
                        [
                            series,
                            _format_number(entry["p50"]),
                            _format_number(entry["p95"]),
                            _format_number(entry["p99"]),
                        ]
                        for series, entry in quantiles
                    ],
                )
            )
        return 0
    # A request log: JSON lines (multi-line text defeats json.loads
    # above) or a single schema-tagged record.
    from .obs.log import LOG_SCHEMA

    log_like = (
        isinstance(data, dict) and data.get("schema") == LOG_SCHEMA
    ) or (data is None and f'"{LOG_SCHEMA}"' in text)
    if log_like:
        from .obs.log import format_record, read_request_log, tail_records

        records = read_request_log(path)
        print(f"== request log: {len(records)} records ==")
        for record in tail_records(records, limit=args.lines):
            print(format_record(record))
        return 0
    print(
        f"{path}: not a recognized obs artifact (expected a run "
        "manifest, a trace JSON, a Chrome trace, a request log, or "
        "Prometheus text)",
        file=sys.stderr,
    )
    return 2


def _cmd_nodes(_: argparse.Namespace) -> int:
    db = TechnologyDatabase.default()
    rows = []
    for node in db.nodes:
        rows.append(
            [
                node.name,
                node.density_mtr_per_mm2,
                node.defect_density_per_cm2,
                node.wafer_rate_kwpm,
                node.fab_latency_weeks,
                f"{node.tapeout_effort:.2e}",
                node.wafer_cost_usd,
                node.mask_set_cost_usd / 1e6,
            ]
        )
    print(
        format_table(
            [
                "node",
                "MTr/mm^2",
                "D0 /cm^2",
                "kW/mo",
                "L_fab wk",
                "E_tapeout ew/tr",
                "wafer $",
                "masks $M",
            ],
            rows,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    _apply_engine_arguments(args)
    from .serve.server import EvalServer, ServerConfig

    workers = args.workers if args.workers > 0 else (os.cpu_count() or 1)
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            batch_threads=args.batch_threads,
            deadline_ms=args.deadline_ms,
            trace=bool(args.trace),
            trace_out=args.trace if workers <= 1 else "",
            log_json=args.log_json,
            slo_window_s=args.slo_window_s,
            profile_hz=args.profile_hz,
            profile_out=args.profile_out,
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2

    def _announce(host: str, port: int) -> None:
        print(f"serving on http://{host}:{port}", flush=True)
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host} {port}\n")

    # Tests inject a threading.Event via the namespace to stop the loop
    # without signals; the CLI proper relies on SIGINT/SIGTERM.
    stop_event = getattr(args, "stop_event", None)
    if workers <= 1:
        server = EvalServer(config=config)
        server.run_forever(stop_event=stop_event, ready=_announce)
    else:
        from .serve.shard import ShardConfig, ShardSupervisor

        supervisor = ShardSupervisor(
            ShardConfig(
                workers=workers,
                host=args.host,
                port=args.port,
                server=config,
                backend=getattr(args, "backend", ""),
                # Sharded: the supervisor collects every worker's spans
                # at drain and writes the one merged Chrome trace.
                trace_out=args.trace,
            )
        )
        supervisor.run_forever(stop_event=stop_event, ready=_announce)
    print("server drained and stopped", flush=True)
    return 0


#: Backend specs accepted by ``--backend`` (see repro.engine.compiled).
BACKEND_CHOICES = ("numpy", "compiled", "compiled:float32")


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared engine flags (run / report / mc)."""
    group = parser.add_argument_group("engine")
    group.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="",
        metavar="SPEC",
        help=(
            "evaluation backend: 'numpy' (default), 'compiled' "
            "(fused kernels, Numba-jitted when installed), or "
            "'compiled:float32' (reduced precision; see README). "
            "Overrides the REPRO_ENGINE_BACKEND environment variable."
        ),
    )


def _apply_engine_arguments(args: argparse.Namespace) -> None:
    backend = getattr(args, "backend", "")
    if backend:
        from .engine.compiled import parse_backend_spec, set_backend

        set_backend(*parse_backend_spec(backend))


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (run / report / mc)."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write a Chrome-trace span dump (chrome://tracing loads it)",
    )
    group.add_argument(
        "--metrics",
        default="",
        metavar="FILE",
        help="write engine metrics as Prometheus text",
    )
    group.add_argument(
        "--manifest-dir",
        default="",
        metavar="DIR",
        help="write one provenance manifest per run into DIR",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="ttm-cas",
        description=(
            "Supply chain aware computer architecture: regenerate the "
            "ISCA '23 paper's tables and figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="enumerate available experiments").set_defaults(
        handler=_cmd_list
    )
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment", help="experiment id from 'list', or 'all'"
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw result as JSON instead of a table",
    )
    _add_engine_arguments(run_parser)
    _add_obs_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)
    sub.add_parser("nodes", help="print the technology database").set_defaults(
        handler=_cmd_nodes
    )
    report_parser = sub.add_parser(
        "report", help="write the full evaluation as markdown"
    )
    report_parser.add_argument(
        "-o", "--output", default="", help="file to write (default: stdout)"
    )
    _add_engine_arguments(report_parser)
    _add_obs_arguments(report_parser)
    report_parser.set_defaults(handler=_cmd_report)
    sub.add_parser(
        "lint", help="lint the technology database for consistency"
    ).set_defaults(handler=_cmd_lint)
    mc_parser = sub.add_parser(
        "mc", help="Monte Carlo supply-uncertainty study for one design"
    )
    mc_parser.add_argument(
        "--design", choices=MC_DESIGNS, default="a11", help="design under study"
    )
    mc_parser.add_argument(
        "--node",
        default="7nm",
        help="process node for --design a11 / zen2-monolithic",
    )
    mc_parser.add_argument(
        "--scenario",
        default="nominal",
        help="market scenario name the uncertainty is centered on",
    )
    mc_parser.add_argument(
        "--chips", type=float, default=1e7, help="nominal final-chip demand"
    )
    mc_parser.add_argument(
        "--samples", type=int, default=4096, help="Monte Carlo sample count"
    )
    mc_parser.add_argument(
        "--seed", type=int, default=0, help="study seed (reproducible)"
    )
    mc_parser.add_argument(
        "--scenarios",
        default="",
        metavar="SELECTOR",
        help=(
            "run the fused stress-scenario cube instead of the "
            "single-world study: 'all', a family ('fab-outage', "
            "'logistics', ...), an exact 'family:severity' name, or a "
            "comma-separated mix"
        ),
    )
    mc_parser.add_argument(
        "--correlated",
        action="store_true",
        help=(
            "draw from the correlated supply spec (Gaussian-copula "
            "rank correlation + Latin hypercube + antithetic pairs; "
            "needs an even --samples)"
        ),
    )
    from .engine.parallel import EXECUTORS

    mc_parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="serial",
        help="parallel executor for the sample chunks",
    )
    mc_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw result as JSON instead of a table",
    )
    _add_engine_arguments(mc_parser)
    _add_obs_arguments(mc_parser)
    mc_parser.set_defaults(handler=_cmd_mc)
    serve_parser = sub.add_parser(
        "serve",
        help="run the multi-tenant coalescing evaluation service",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port (0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=10.0,
        help="coalescing window after a group's first arrival (0 disables)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="group size that flushes immediately",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="admitted-request bound before 429 backpressure",
    )
    serve_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=30_000.0,
        help="default per-request deadline before 504 (0 disables)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes behind the sticky router (0 = cpu count; "
            "1 runs today's single-process server unchanged)"
        ),
    )
    serve_parser.add_argument(
        "--batch-threads",
        type=int,
        default=1,
        help="threads executing fused batches inside each worker",
    )
    serve_parser.add_argument(
        "--ready-file",
        default="",
        metavar="FILE",
        help="write 'HOST PORT' to FILE once the socket is bound",
    )
    obs_group = serve_parser.add_argument_group("observability")
    obs_group.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help=(
            "enable distributed tracing and write one merged Chrome "
            "trace at shutdown (sharded: one process lane per worker)"
        ),
    )
    obs_group.add_argument(
        "--log-json",
        default="",
        metavar="FILE",
        help=(
            "append one JSON line per request (router and workers "
            "share the file); summarize with 'ttm-cas obs tail'"
        ),
    )
    obs_group.add_argument(
        "--slo-window-s",
        type=float,
        default=300.0,
        help="sliding window for SLO burn rates in /metrics and /debug/obs",
    )
    obs_group.add_argument(
        "--profile-hz",
        type=float,
        default=0.0,
        help=(
            "sampling-profiler rate (0 disables); attributes wall time "
            "to engine kernels under live load"
        ),
    )
    obs_group.add_argument(
        "--profile-out",
        default="",
        metavar="FILE",
        help=(
            "write collapsed stacks at shutdown (sharded: one "
            "FILE.workerN per worker)"
        ),
    )
    _add_engine_arguments(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)
    obs_parser = sub.add_parser(
        "obs",
        help=(
            "summarize an obs artifact, or 'obs tail FILE' / "
            "'obs slo FILE' for request logs"
        ),
    )
    obs_parser.add_argument(
        "file",
        nargs="+",
        metavar="[tail|slo] FILE",
        help=(
            "a run manifest, trace JSON, Chrome-trace file, request "
            "log (JSON lines), or Prometheus-text metrics dump; "
            "'tail FILE' prints recent request-log lines, 'slo FILE' "
            "reports burn rates from a request log"
        ),
    )
    obs_parser.add_argument(
        "-n",
        "--lines",
        type=int,
        default=20,
        help="lines shown by 'obs tail' (default 20)",
    )
    obs_parser.add_argument(
        "--follow",
        action="store_true",
        help="'obs tail' keeps the file open and streams new records",
    )
    obs_parser.add_argument(
        "--window-s",
        type=float,
        default=0.0,
        help=(
            "'obs slo' window (seconds) ending at the newest record "
            "(0 = whole log)"
        ),
    )
    obs_parser.set_defaults(handler=_cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``ttm-cas`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early; not an
        # error from our side.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
