"""Tracing: nested spans, thread-safe collection, Chrome-trace export.

A :class:`Tracer` records :class:`SpanRecord` entries — name, wall and
CPU time, free-form attributes (tensor shapes, sample counts), plus the
thread/process that ran them and the parent span they nest under. Spans
are opened with the :meth:`Tracer.span` context manager; nesting is
tracked per thread (a ``threading.local`` stack), and records from
worker threads land in the same tracer under one lock, so
``parallel_map`` thread fan-outs trace correctly. Process workers cannot
share the object, so they record into a fresh local tracer and ship
their spans back with the result; :meth:`Tracer.adopt` merges them
(wall timestamps are epoch-based, hence comparable across processes on
one machine).

Nothing traces by default: the module-level :func:`span` helper returns
a shared no-op context manager until :func:`install_tracer` installs a
real one, so the engine's instrumentation costs one ``None`` check when
tracing is off (the bench guard in ``scripts/bench_engine.py --check``
pins the overhead).

Exports: :meth:`Tracer.to_chrome_trace` renders the Trace Event Format
that ``chrome://tracing`` / Perfetto load directly; :meth:`Tracer.to_jsonable`
is a schema-tagged span list for programmatic use.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Schema marker for the JSON span-list export.
TRACE_SCHEMA = "repro.obs/trace@1"

#: Sentinel distinguishing "no parent override" from "parent is None".
_UNSET = object()

#: Process-wide span-id counter (see :meth:`Tracer._next_id`).
_ID_COUNTER = itertools.count(1)


@dataclass
class SpanRecord:
    """One finished span (picklable; crosses process boundaries).

    ``start_unix_ns`` is epoch-based wall time, ``duration_ns`` the wall
    duration and ``cpu_ns`` the CPU time consumed by the span's thread's
    process. ``status`` is ``"ok"`` or ``"error: <ExceptionType>"``.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start_unix_ns: int
    duration_ns: int
    cpu_ns: int
    thread_id: int
    process_id: int
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"

    @property
    def end_unix_ns(self) -> int:
        return self.start_unix_ns + self.duration_ns

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_ns": self.start_unix_ns,
            "duration_ns": self.duration_ns,
            "cpu_ns": self.cpu_ns,
            "thread_id": self.thread_id,
            "process_id": self.process_id,
            "attributes": dict(self.attributes),
            "status": self.status,
        }


class _SpanContext:
    """The context manager returned by :meth:`Tracer.span`.

    Yields itself; ``set(key, value)`` attaches attributes that travel
    with the finished record. ``span_id`` is available from entry on, so
    callers can hand it to workers as an explicit parent.
    """

    __slots__ = (
        "_tracer", "name", "span_id", "parent_id", "attributes",
        "_start_unix_ns", "_start_perf", "_start_cpu",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: Any,
        attributes: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.attributes = attributes

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def __enter__(self) -> "_SpanContext":
        stack = self._tracer._stack()
        if self.parent_id is _UNSET:
            self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start_unix_ns = time.time_ns()
        self._start_perf = time.perf_counter_ns()
        self._start_cpu = time.process_time_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter_ns() - self._start_perf
        cpu = time.process_time_ns() - self._start_cpu
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,  # type: ignore[arg-type]
                start_unix_ns=self._start_unix_ns,
                duration_ns=duration,
                cpu_ns=cpu,
                thread_id=threading.get_ident(),
                process_id=os.getpid(),
                attributes=self.attributes,
                status=(
                    "ok" if exc_type is None
                    else f"error: {exc_type.__name__}"
                ),
            )
        )
        return False


class _NullSpan:
    """Shared no-op stand-in when no tracer is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    span_id = None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans from every thread of this process (see module doc).

    ``limit`` bounds retained spans for long-lived serving processes:
    when set, the oldest records are dropped as new ones land, so a
    worker that stays up for days keeps a rolling window instead of
    growing without bound.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError("limit must be positive when set")
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._local = threading.local()
        self.limit = limit

    def _next_id(self) -> str:
        # The counter is process-global, not per-tracer: process workers
        # build a fresh local tracer per item, and per-instance counters
        # would restart at 1 and collide within one worker pid.
        return f"{os.getpid():x}-{next(_ID_COUNTER)}"

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)
            self._trim_locked()

    def _trim_locked(self) -> None:
        limit = self.limit
        if limit is not None and len(self._spans) > limit:
            del self._spans[: len(self._spans) - limit]

    def span(
        self, name: str, parent_id: Any = _UNSET, **attributes: Any
    ) -> _SpanContext:
        """Open a span; nests under this thread's active span by default.

        Pass ``parent_id=`` explicitly to attach work submitted to
        another thread or process to the span that scheduled it.
        """
        return _SpanContext(self, name, parent_id, dict(attributes))

    def current_span_id(self) -> Optional[str]:
        """The active span id on *this* thread (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def adopt(self, records: Iterable[SpanRecord]) -> None:
        """Merge spans recorded elsewhere (e.g. in a process worker)."""
        records = list(records)
        with self._lock:
            self._spans.extend(records)
            self._trim_locked()

    def spans(self) -> Tuple[SpanRecord, ...]:
        """Snapshot of every finished span, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def clear(self) -> None:
        """Drop every recorded span."""
        with self._lock:
            self._spans.clear()

    def to_jsonable(self) -> Dict[str, Any]:
        """Schema-tagged span list (programmatic export)."""
        return {
            "schema": TRACE_SCHEMA,
            "spans": [record.to_jsonable() for record in self.spans()],
        }

    def to_chrome_trace(
        self, process_names: Optional[Dict[int, str]] = None
    ) -> Dict[str, Any]:
        """Trace Event Format dict for ``chrome://tracing`` / Perfetto.

        Spans become complete (``"ph": "X"``) events with microsecond
        ``ts``/``dur``; span/parent ids and attributes ride in ``args``.
        See :func:`chrome_trace_from_spans` for the process-lane rules.
        """
        return chrome_trace_from_spans(
            (record.to_jsonable() for record in self.spans()),
            process_names=process_names,
        )

    def write_chrome_trace(
        self, path: str, process_names: Optional[Dict[int, str]] = None
    ) -> None:
        """Write :meth:`to_chrome_trace` as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                self.to_chrome_trace(process_names=process_names),
                handle,
                indent=2,
                default=str,
            )
            handle.write("\n")

    def write_json(self, path: str) -> None:
        """Write :meth:`to_jsonable` as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_jsonable(), handle, indent=2, default=str)
            handle.write("\n")

    def summary(self) -> List[Dict[str, Any]]:
        """Per-name aggregates: count, total/max wall seconds, CPU seconds."""
        totals: Dict[str, Dict[str, float]] = {}
        for record in self.spans():
            entry = totals.setdefault(
                record.name,
                {"count": 0, "wall_s": 0.0, "max_wall_s": 0.0, "cpu_s": 0.0},
            )
            entry["count"] += 1
            entry["wall_s"] += record.duration_ns / 1e9
            entry["max_wall_s"] = max(
                entry["max_wall_s"], record.duration_ns / 1e9
            )
            entry["cpu_s"] += record.cpu_ns / 1e9
        return [
            {"name": name, **values}
            for name, values in sorted(
                totals.items(), key=lambda item: -item[1]["wall_s"]
            )
        ]


def chrome_trace_from_spans(
    spans: Iterable[Dict[str, Any]],
    process_names: Optional[Dict[int, str]] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace from jsonable span dicts, one *process lane*
    per originating pid.

    Spans merged from a sharded fleet all carry their worker's real
    ``process_id``; without metadata events the viewer shows bare pids
    (or, pre-fix, collapsed lanes). Each distinct pid gets a
    ``process_name`` metadata event (``"ph": "M"``) named from, in
    priority order: the explicit ``process_names`` mapping, a
    ``worker`` attribute found on any of the pid's spans, or
    ``"pid <n>"``. A ``process_sort_index`` event keeps the router lane
    on top and worker lanes in slot order.
    """
    names: Dict[int, str] = dict(process_names or {})
    events: List[Dict[str, Any]] = []
    pids: List[int] = []
    for record in spans:
        pid = record.get("process_id", 0)
        if pid not in names:
            worker = record.get("attributes", {}).get("worker")
            if worker is not None:
                names[pid] = f"worker {worker}"
        if pid not in pids:
            pids.append(pid)
        events.append(
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": record.get("start_unix_ns", 0) / 1000.0,
                "dur": max(record.get("duration_ns", 0) / 1000.0, 0.001),
                "pid": pid,
                "tid": record.get("thread_id", 0),
                "args": {
                    "span_id": record.get("span_id"),
                    "parent_id": record.get("parent_id"),
                    "status": record.get("status", "ok"),
                    **record.get("attributes", {}),
                },
            }
        )

    def _sort_key(pid: int) -> Tuple[int, str]:
        label = names.get(pid, f"pid {pid}")
        # Router first, then workers by label, then anonymous pids.
        if label == "router":
            return (0, label)
        return (1, label)

    metadata: List[Dict[str, Any]] = []
    for index, pid in enumerate(sorted(pids, key=_sort_key)):
        label = names.get(pid, f"pid {pid}")
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": label},
            }
        )
        metadata.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "args": {"sort_index": index},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


#: The installed tracer (None = tracing off; the fast path).
_INSTALLED: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process tracer."""
    global _INSTALLED
    _INSTALLED = tracer if tracer is not None else Tracer()
    return _INSTALLED


def uninstall_tracer() -> Optional[Tracer]:
    """Remove the installed tracer (returning it) and go back to no-op."""
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = None
    return previous


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is off."""
    return _INSTALLED


def span(name: str, **attributes: Any):
    """Open a span on the installed tracer; a shared no-op when none is.

    This is the hook instrumented modules call: when tracing is off it
    returns the singleton :data:`NULL_SPAN` without allocating a record.
    """
    tracer = _INSTALLED
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


__all__ = [
    "NULL_SPAN",
    "SpanRecord",
    "TRACE_SCHEMA",
    "Tracer",
    "chrome_trace_from_spans",
    "current_tracer",
    "install_tracer",
    "span",
    "uninstall_tracer",
]
