"""Metrics registry: counters, gauges, and histograms with exporters.

The engine's hot paths (batch kernels, the invariant LRU, ``parallel_map``)
report what they did through a process-wide :class:`MetricsRegistry` —
invariant-cache hits/misses/evictions, kernel invocation counts and
element throughput, executor fallbacks, non-finite guard trips. The
registry is zero-dependency and thread-safe: every mutation happens under
one re-entrant lock, so counts stay exact under the thread executor (the
same guarantee the invariant cache's private counters used to make).

Exporters
---------
:meth:`MetricsRegistry.to_prometheus_text` renders the classic
Prometheus text exposition format (``# HELP`` / ``# TYPE`` headers, one
``name{labels} value`` sample per line); :meth:`MetricsRegistry.to_json`
is the same content as JSON for tooling that prefers structure;
:meth:`MetricsRegistry.snapshot` flattens everything to a
``{"name{label=\"v\"}": value}`` dict, which is what
:class:`~repro.obs.manifest.RunManifest` diffs to attribute activity to
one run.

Instruments are registered once and then reused: asking for a name twice
returns the same object (and asking with a conflicting kind raises), so
modules can cache handles at import time and pay only an attribute call
plus a lock on the hot path. :meth:`MetricsRegistry.reset` zeroes values
but keeps registrations, so exports always show the full instrument set.
"""

from __future__ import annotations

import json
import re
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: One ``name="value"`` label pair inside a series' brace block.
_LABEL_PAIR = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')

from ..errors import InvalidParameterError

#: Default histogram bucket upper bounds (seconds-flavoured, +Inf implied).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)

#: Label-set key: sorted ``(name, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def estimate_quantile(
    bounds: Sequence[float],
    cumulative_counts: Sequence[float],
    total: float,
    q: float,
) -> float:
    """Estimate one quantile from cumulative histogram buckets.

    Standard ``histogram_quantile`` linear interpolation: the target
    rank ``q * total`` is located in the first bucket whose cumulative
    count reaches it, then interpolated between that bucket's bounds
    (the lowest bucket interpolates from 0). Mass beyond the last
    finite bound clamps to that bound — the honest answer buckets can
    give without an upper edge.
    """
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"quantile must be in [0, 1], got {q!r}")
    if total <= 0 or not bounds:
        return 0.0
    rank = q * total
    previous_bound = 0.0
    previous_cum = 0.0
    for bound, cum in zip(bounds, cumulative_counts):
        if cum >= rank and cum > previous_cum:
            fraction = (rank - previous_cum) / (cum - previous_cum)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cum = bound, cum
    return float(bounds[-1])


#: The quantiles every export surfaces.
EXPORT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def _quantile_entry(
    bounds: Sequence[float],
    cumulative_counts: Sequence[float],
    total: float,
    qs: Sequence[float] = EXPORT_QUANTILES,
) -> Dict[str, float]:
    return {
        f"p{round(q * 100):d}": estimate_quantile(
            bounds, cumulative_counts, total, q
        )
        for q in qs
    }


class _Instrument:
    """Shared bookkeeping for one named metric (all label series)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.RLock):
        self.name = name
        self.help = help_text
        self._lock = lock
        self._values: "OrderedDict[LabelKey, float]" = OrderedDict()

    def reset(self) -> None:
        """Zero every label series (registration survives)."""
        with self._lock:
            self._values.clear()

    def series(self) -> Dict[LabelKey, float]:
        """Snapshot of every ``label-set -> value`` pair."""
        with self._lock:
            return dict(self._values)

    def value(self, **labels: object) -> float:
        """Current value of one label series (0 when never touched)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)


class Counter(_Instrument):
    """Monotonically increasing count (resettable only via ``reset``)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def _inc_key(self, key: LabelKey, amount: float = 1.0) -> None:
        """Hot-path increment with a precomputed label key.

        ``repro.obs.instrument`` builds the key once per instrumented
        site, keeping per-call cost to one lock and two dict operations
        (the bench guard holds this to <= 2% of kernel wall time).
        """
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Instrument):
    """A value that goes both ways (cache entries, worker counts)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` adds a sample; export renders ``_bucket{le=...}``
    cumulative counts plus ``_sum`` and ``_count`` series.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.RLock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, lock)
        if not buckets or list(buckets) != sorted(buckets):
            raise InvalidParameterError(
                f"histogram {name!r} buckets must be a sorted non-empty "
                f"sequence, got {buckets!r}"
            )
        self.buckets = tuple(float(b) for b in buckets)
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._sums.clear()
            self._totals.clear()

    def series(self) -> Dict[LabelKey, float]:
        """``_count`` per label series (the headline number)."""
        with self._lock:
            return {key: float(total) for key, total in self._totals.items()}

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._totals.get(_label_key(labels), 0))

    def sum(self, **labels: object) -> float:
        """Sum of observed values for one label series."""
        with self._lock:
            return self._sums.get(_label_key(labels), 0.0)

    def bucket_counts(self, **labels: object) -> Tuple[int, ...]:
        """Cumulative per-bucket counts (``+Inf`` bucket excluded)."""
        with self._lock:
            return tuple(
                self._counts.get(_label_key(labels), [0] * len(self.buckets))
            )

    def quantile(self, q: float, **labels: object) -> float:
        """Estimated ``q``-quantile for one label series (see
        :func:`estimate_quantile` for the interpolation rules)."""
        with self._lock:
            key = _label_key(labels)
            counts = tuple(self._counts.get(key, ()))
            total = self._totals.get(key, 0)
        return estimate_quantile(self.buckets, counts, total, q)


class MetricsRegistry:
    """Named instruments plus the exporters; see the module docstring."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: "OrderedDict[str, _Instrument]" = OrderedDict()

    def _register(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise InvalidParameterError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            instrument = cls(name, help_text, self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create a counter."""
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._register(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._register(Histogram, name, help_text, buckets=buckets)

    def instruments(self) -> Tuple[_Instrument, ...]:
        """Every registered instrument, in registration order."""
        with self._lock:
            return tuple(self._instruments.values())

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under ``name`` (None if absent)."""
        with self._lock:
            return self._instruments.get(name)

    def reset(self) -> None:
        """Zero every instrument's values; registrations survive."""
        for instrument in self.instruments():
            instrument.reset()

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{"name{labels}": value}`` view of every series.

        Histograms contribute their ``name_count`` and ``name_sum``
        series (buckets are an export detail, not a diffable quantity).
        """
        flat: Dict[str, float] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                with self._lock:
                    for key, total in instrument._totals.items():
                        suffix = _label_suffix(key)
                        flat[f"{instrument.name}_count{suffix}"] = float(total)
                        flat[f"{instrument.name}_sum{suffix}"] = (
                            instrument._sums.get(key, 0.0)
                        )
                continue
            for key, value in instrument.series().items():
                flat[f"{instrument.name}{_label_suffix(key)}"] = value
        return flat

    def to_prometheus_text(self) -> str:
        """Classic Prometheus text exposition of every instrument.

        Every registered instrument gets its ``# HELP`` / ``# TYPE``
        header even when it has no samples yet; unlabeled instruments
        additionally always render a ``name 0`` sample, so a metrics
        dump proves which instruments exist, not just which fired.
        """
        lines: List[str] = []
        for instrument in self.instruments():
            help_text = instrument.help or instrument.name
            lines.append(f"# HELP {instrument.name} {help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                with self._lock:
                    keys = list(instrument._totals)
                    for key in keys:
                        suffix_pairs = list(key)
                        counts = instrument._counts[key]
                        for bound, count in zip(instrument.buckets, counts):
                            le_key = tuple(suffix_pairs + [("le", repr(bound))])
                            lines.append(
                                f"{instrument.name}_bucket"
                                f"{_label_suffix(le_key)} {count}"
                            )
                        inf_key = tuple(suffix_pairs + [("le", "+Inf")])
                        lines.append(
                            f"{instrument.name}_bucket"
                            f"{_label_suffix(inf_key)} "
                            f"{instrument._totals[key]}"
                        )
                        lines.append(
                            f"{instrument.name}_sum{_label_suffix(key)} "
                            f"{_format_value(instrument._sums[key])}"
                        )
                        lines.append(
                            f"{instrument.name}_count{_label_suffix(key)} "
                            f"{instrument._totals[key]}"
                        )
                continue
            series = instrument.series()
            if not series:
                lines.append(f"{instrument.name} 0")
                continue
            for key, value in series.items():
                lines.append(
                    f"{instrument.name}{_label_suffix(key)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + "\n"

    def to_jsonable(self) -> Dict[str, object]:
        """Structured export mirroring the Prometheus text content."""
        out: Dict[str, object] = {
            "schema": METRICS_SCHEMA,
            "metrics": [],
        }
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                # Histogram series carry the sum and estimated
                # p50/p95/p99 alongside the count, so JSON consumers
                # never redo bucket math by hand.
                with instrument._lock:
                    series = [
                        {
                            "labels": dict(key),
                            "value": float(total),
                            "sum": instrument._sums.get(key, 0.0),
                            "quantiles": _quantile_entry(
                                instrument.buckets,
                                instrument._counts.get(key, ()),
                                total,
                            ),
                        }
                        for key, total in instrument._totals.items()
                    ]
                entry: Dict[str, object] = {
                    "name": instrument.name,
                    "kind": instrument.kind,
                    "help": instrument.help,
                    "series": series,
                    "buckets": list(instrument.buckets),
                }
            else:
                entry = {
                    "name": instrument.name,
                    "kind": instrument.kind,
                    "help": instrument.help,
                    "series": [
                        {"labels": dict(key), "value": value}
                        for key, value in instrument.series().items()
                    ],
                }
            out["metrics"].append(entry)  # type: ignore[union-attr]
        return out

    def to_json(self, indent: int = 2) -> str:
        """JSON text of :meth:`to_jsonable`."""
        return json.dumps(self.to_jsonable(), indent=indent, sort_keys=True)

    def write_prometheus(self, path: str) -> None:
        """Write the Prometheus text exposition to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_prometheus_text())


#: Schema marker for the JSON metrics export (``ttm-cas obs`` sniffs it).
METRICS_SCHEMA = "repro.obs/metrics@1"

#: The process-wide registry every instrumented module reports into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def metrics_delta(
    before: Mapping[str, float], after: Mapping[str, float]
) -> Dict[str, float]:
    """Per-series ``after - before`` over :meth:`MetricsRegistry.snapshot`.

    Series absent from ``before`` count from zero; series that did not
    move are dropped, so the delta names exactly what one run did.
    """
    delta: Dict[str, float] = {}
    for name, value in after.items():
        moved = value - before.get(name, 0.0)
        if moved != 0.0:
            delta[name] = moved
    return delta


def _parse_series(series: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split one sample's series into (metric name, label pairs)."""
    if series.endswith("}") and "{" in series:
        name, inner = series[:-1].split("{", 1)
        pairs = [
            (match.group(1), match.group(2))
            for match in _LABEL_PAIR.finditer(inner)
        ]
        return name, pairs
    return series, []


def relabel_prometheus_line(line: str, labels: Mapping[str, str]) -> str:
    """Inject ``labels`` into one exposition line (comments pass through).

    Existing labels win on collision — a sample already carrying a
    ``worker`` label (say, from a nested aggregation) is not rewritten.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#") or not labels:
        return line
    series, _, value = stripped.rpartition(" ")
    if not series:
        return line
    name, pairs = _parse_series(series)
    present = {pair_name for pair_name, _ in pairs}
    merged = pairs + [
        (str(k), str(v)) for k, v in labels.items() if str(k) not in present
    ]
    merged.sort()
    return f"{name}{_label_suffix(tuple(merged))} {value}"


def relabel_prometheus_text(text: str, **labels: object) -> str:
    """Inject ``labels`` into every sample line of exposition ``text``."""
    wanted = {str(k): str(v) for k, v in labels.items()}
    return (
        "\n".join(
            relabel_prometheus_line(line, wanted)
            for line in text.splitlines()
        )
        + "\n"
    )


def merge_prometheus_texts(
    parts: Iterable[Tuple[Mapping[str, str], str]],
) -> str:
    """Merge several exposition dumps into one, tagging each part.

    ``parts`` is ``(extra_labels, text)`` per source (the shard
    supervisor passes one part per worker plus its own registry, each
    tagged ``worker="N"`` / ``worker="router"``). Samples of the same
    metric from every part are grouped under a single ``# HELP`` /
    ``# TYPE`` header (first part's wording wins), so the aggregate is
    valid exposition text a Prometheus scraper accepts as-is.

    Identical series landing from *different* parts merge instead of
    colliding — the respawn case: a worker dies mid-scrape and its
    replacement reuses the slot, so two parts both carry
    ``worker="N"``. Counter and histogram samples sum (both processes
    really did that work); gauge and untyped samples take the last
    value seen (a gauge is a statement of current state, and the later
    part is the survivor).
    """
    metrics: "OrderedDict[str, Dict[str, object]]" = OrderedDict()

    def _entry(name: str) -> Dict[str, object]:
        entry = metrics.get(name)
        if entry is None:
            entry = {"help": None, "type": None, "samples": []}
            metrics[name] = entry
        return entry

    for labels, text in parts:
        wanted = {str(k): str(v) for k, v in labels.items()}
        current: Optional[str] = None
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("# HELP ") or stripped.startswith(
                "# TYPE "
            ):
                kind = stripped[2:6]
                rest = stripped[7:]
                name, _, detail = rest.partition(" ")
                current = name
                entry = _entry(name)
                field = "help" if kind == "HELP" else "type"
                if entry[field] is None:
                    entry[field] = detail
                continue
            if stripped.startswith("#"):
                continue
            series, _, _value = stripped.rpartition(" ")
            name, _pairs = _parse_series(series)
            owner = current
            if owner is None or not name.startswith(owner):
                owner = name
            entry = _entry(owner)
            entry["samples"].append(  # type: ignore[union-attr]
                relabel_prometheus_line(stripped, wanted)
            )

    lines: List[str] = []
    for name, entry in metrics.items():
        if entry["help"] is not None:
            lines.append(f"# HELP {name} {entry['help']}")
        if entry["type"] is not None:
            lines.append(f"# TYPE {name} {entry['type']}")
        lines.extend(
            _merge_duplicate_samples(
                entry["samples"], str(entry["type"] or "untyped")
            )
        )
    return "\n".join(lines) + "\n"


def _merge_duplicate_samples(samples: List[str], kind: str) -> List[str]:
    """Collapse repeated series within one family (first-seen order)."""
    summing = kind in ("counter", "histogram")
    merged: "OrderedDict[str, Optional[float]]" = OrderedDict()
    for line in samples:
        series, _, value = line.rpartition(" ")
        try:
            numeric = float(value)
        except ValueError:
            merged[line] = None  # unparseable: pass through verbatim
            continue
        if series in merged and merged[series] is not None:
            previous = merged[series]
            merged[series] = previous + numeric if summing else numeric
        else:
            merged[series] = numeric
    return [
        series if value is None else f"{series} {_format_value(value)}"
        for series, value in merged.items()
    ]


def iter_prometheus_samples(text: str) -> Iterable[Tuple[str, float]]:
    """Parse ``(series, value)`` pairs back out of exposition text.

    Round-trip helper for tests and ``ttm-cas obs``; comment and blank
    lines are skipped.
    """
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        yield series, float(value)


def histogram_quantiles_from_text(
    text: str, qs: Sequence[float] = EXPORT_QUANTILES
) -> List[Tuple[str, Dict[str, float]]]:
    """Estimate quantiles for every histogram series in exposition text.

    Pairs ``_bucket{le=...}`` samples with their ``_count`` totals per
    base series (``le`` stripped, other labels kept) and interpolates —
    the ``ttm-cas obs`` summarizer uses this so a raw ``.prom`` dump
    reads as p50/p95/p99 instead of bucket math homework.
    """
    buckets: Dict[Tuple[str, LabelKey], List[Tuple[float, float]]] = {}
    totals: Dict[Tuple[str, LabelKey], float] = {}
    for series, value in iter_prometheus_samples(text):
        name, pairs = _parse_series(series)
        if name.endswith("_bucket"):
            bound_text = dict(pairs).get("le")
            if bound_text is None:
                continue
            rest = tuple(sorted(p for p in pairs if p[0] != "le"))
            try:
                bound = (
                    float("inf") if bound_text == "+Inf"
                    else float(bound_text)
                )
            except ValueError:
                continue
            buckets.setdefault((name[: -len("_bucket")], rest), []).append(
                (bound, value)
            )
        elif name.endswith("_count"):
            totals[(name[: -len("_count")], tuple(sorted(pairs)))] = value
    out: List[Tuple[str, Dict[str, float]]] = []
    for (base, rest), entries in sorted(buckets.items()):
        total = totals.get((base, rest), 0.0)
        finite = sorted(
            (bound, cum) for bound, cum in entries if bound != float("inf")
        )
        if total <= 0 or not finite:
            continue
        bounds = [bound for bound, _ in finite]
        counts = [cum for _, cum in finite]
        out.append(
            (
                f"{base}{_label_suffix(rest)}",
                _quantile_entry(bounds, counts, total, qs),
            )
        )
    return out


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EXPORT_QUANTILES",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "estimate_quantile",
    "get_registry",
    "histogram_quantiles_from_text",
    "iter_prometheus_samples",
    "merge_prometheus_texts",
    "metrics_delta",
    "relabel_prometheus_line",
    "relabel_prometheus_text",
]
