"""Run manifests: per-run provenance written alongside outputs.

A :class:`RunManifest` records everything needed to trust — and to
re-run — one experiment or Monte Carlo study: the configuration and
seeds, the sampling/factor specs, the git revision (when the working
tree is a checkout), library versions, a metrics delta attributing
engine activity (cache hits, kernel calls, fallbacks) to the run, the
wall duration, and a SHA-256 digest of the structured result. Re-running
with the recorded seeds must reproduce the digest bit-for-bit; the
determinism suite (``tests/obs/test_manifest_determinism.py``) pins
that two identically-seeded runs differ only in the
:data:`TIMING_FIELDS`.

Manifests are plain JSON with a ``schema`` tag, so ``ttm-cas obs`` (and
any downstream tooling) can sniff and summarize them.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..errors import InvalidParameterError

#: Schema marker for manifest JSON files.
MANIFEST_SCHEMA = "repro.obs/run-manifest@1"

#: Fields that legitimately differ between two identical seeded runs.
TIMING_FIELDS = ("created_unix", "duration_seconds")


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The checkout's HEAD SHA, or None outside a git work tree."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def environment_fingerprint() -> Dict[str, str]:
    """Library/interpreter versions plus active engine configuration."""
    import numpy

    from .. import __version__
    from ..engine.compiled import backend_label
    from ..engine.shm import shm_enabled

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": __version__,
        "engine_backend": backend_label(),
        "engine_shm": "available" if shm_enabled() else "unavailable",
    }


def result_digest(result: Any) -> str:
    """SHA-256 of the result's canonical JSON export.

    Deterministic results (fixed seeds) produce a fixed digest, which is
    how a manifest proves its seeds reproduce the run bit-for-bit.
    """
    from ..analysis.export import to_json

    return hashlib.sha256(to_json(result).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """Provenance for one run; see the module docstring.

    ``metrics`` is the run's metrics *delta* (what the run itself did),
    not the process-cumulative registry state — two identical runs in
    one process therefore record identical metrics.
    """

    kind: str
    key: str
    created_unix: float
    duration_seconds: float
    config: Mapping[str, Any] = field(default_factory=dict)
    seeds: Mapping[str, int] = field(default_factory=dict)
    metrics: Mapping[str, float] = field(default_factory=dict)
    environment: Mapping[str, str] = field(default_factory=dict)
    git_sha: Optional[str] = None
    result_digest: Optional[str] = None
    schema: str = MANIFEST_SCHEMA

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(self, "seeds", dict(self.seeds))
        object.__setattr__(self, "metrics", dict(self.metrics))
        object.__setattr__(self, "environment", dict(self.environment))

    def to_jsonable(self) -> Dict[str, Any]:
        from ..analysis.export import to_jsonable

        return {
            "schema": self.schema,
            "kind": self.kind,
            "key": self.key,
            "created_unix": self.created_unix,
            "duration_seconds": self.duration_seconds,
            "config": to_jsonable(dict(self.config)),
            "seeds": to_jsonable(dict(self.seeds)),
            "metrics": to_jsonable(dict(self.metrics)),
            "environment": dict(self.environment),
            "git_sha": self.git_sha,
            "result_digest": self.result_digest,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the manifest as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def without_timing(self) -> Dict[str, Any]:
        """The JSON form minus :data:`TIMING_FIELDS` (for comparisons)."""
        data = self.to_jsonable()
        for name in TIMING_FIELDS:
            data.pop(name, None)
        return data

    def equal_except_timing(self, other: "RunManifest") -> bool:
        """True when the runs match in everything but when/how long."""
        return self.without_timing() == other.without_timing()

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "RunManifest":
        if data.get("schema") != MANIFEST_SCHEMA:
            raise InvalidParameterError(
                f"not a run manifest (schema {data.get('schema')!r}, "
                f"expected {MANIFEST_SCHEMA!r})"
            )
        return cls(
            kind=data["kind"],
            key=data["key"],
            created_unix=float(data["created_unix"]),
            duration_seconds=float(data["duration_seconds"]),
            config=dict(data.get("config", {})),
            seeds=dict(data.get("seeds", {})),
            metrics=dict(data.get("metrics", {})),
            environment=dict(data.get("environment", {})),
            git_sha=data.get("git_sha"),
            result_digest=data.get("result_digest"),
        )

    @classmethod
    def read(cls, path: str) -> "RunManifest":
        """Load a manifest previously written with :meth:`write`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_jsonable(json.load(handle))


__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "TIMING_FIELDS",
    "environment_fingerprint",
    "git_revision",
    "result_digest",
]
