"""Structured JSON-lines request logs for the serve stack.

Zero-dependency by design: one :class:`RequestLogger` per process
appends one JSON object per completed request — request id, trace id,
endpoint, status, the latency breakdown the batcher stamped
(queue / batch-wait / compute / serialize), batch size, backend, and
outcome — so router and worker logs from a prefork fleet interleave
safely in a single shared file (each ``write`` is one line under the
process's own lock; POSIX appends of one small buffered line do not
tear in practice and every line is self-describing regardless).

The logger always keeps an in-memory ring of recent records (the
``/debug/obs`` "recent requests" feed); writing to disk is opt-in via
``path`` (the serve ``--log-json FILE`` flag).  ``ttm-cas obs tail``
pretty-prints the last N lines of such a file.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import IO, Any, Deque, Dict, Iterable, List, Optional

__all__ = [
    "LOG_SCHEMA",
    "RequestLogger",
    "format_record",
    "read_request_log",
    "tail_records",
]

LOG_SCHEMA = "repro.obs/request-log@1"

#: Keys every record carries (others ride along untouched).
_CORE_KEYS = ("ts_unix_ns", "role", "request_id", "trace_id", "endpoint", "status")


class RequestLogger:
    """Per-process request log: bounded ring always, JSONL file opt-in.

    Thread-safe; the file (if any) is opened lazily on first write so
    constructing a server never creates artifacts, and line-buffered so
    a tail sees records as they land.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        role: str = "server",
        ring_size: int = 256,
    ) -> None:
        self.path = path or None
        self.role = role
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=max(1, ring_size))
        self._lock = threading.Lock()
        self._file: Optional[IO[str]] = None
        self._closed = False

    @property
    def active(self) -> bool:
        """True when records are written to disk (not just the ring)."""
        return self.path is not None and not self._closed

    def log(self, record: Dict[str, Any]) -> None:
        record = dict(record)
        record.setdefault("schema", LOG_SCHEMA)
        record.setdefault("role", self.role)
        line = None
        if self.path is not None and not self._closed:
            line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._ring.append(record)
            if line is not None:
                if self._file is None:
                    self._file = open(self.path, "a", buffering=1)
                self._file.write(line + "\n")

    def recent(self, limit: int = 50) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._ring)
        return records[-max(0, limit):]

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._file is not None:
                self._file.close()
                self._file = None


def read_request_log(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL request log, skipping blank/corrupt lines (a line
    torn by an unclean shutdown must not hide the rest of the file)."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _fmt_ms(value: Any) -> str:
    try:
        return f"{float(value):.1f}"
    except (TypeError, ValueError):
        return "-"


def format_record(record: Dict[str, Any]) -> str:
    """One human-scannable line per record for ``ttm-cas obs tail``."""
    breakdown = record.get("breakdown") or {}
    parts = [
        f"{record.get('role', '?'):>6}",
        f"{record.get('endpoint', '?'):<10}",
        f"{record.get('status', '?'):>3}",
        f"{_fmt_ms(record.get('latency_ms')):>8}ms",
        f"batch={record.get('batch_size', 0)}",
        "q/w/c/s="
        + "/".join(
            _fmt_ms(breakdown.get(key))
            for key in ("queue_ms", "batch_wait_ms", "compute_ms", "serialize_ms")
        ),
    ]
    if record.get("backend"):
        parts.append(f"backend={record['backend']}")
    if record.get("outcome") and record["outcome"] != "ok":
        parts.append(f"outcome={record['outcome']}")
    rid = record.get("request_id") or "-"
    tid = record.get("trace_id") or "-"
    parts.append(f"rid={rid}")
    parts.append(f"trace={tid}")
    return "  ".join(parts)


def tail_records(
    records: Iterable[Dict[str, Any]], limit: int = 20
) -> List[Dict[str, Any]]:
    """Last ``limit`` records ordered by timestamp (stable for ties),
    so interleaved router+worker lines come out chronologically."""
    ordered = sorted(
        records, key=lambda r: r.get("ts_unix_ns", 0)
    )
    return ordered[-max(0, limit):]
