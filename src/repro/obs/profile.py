"""Stdlib sampling profiler: where does serve wall time actually go?

A daemon thread wakes at ``hz`` and snapshots every other thread's
Python stack via :func:`sys._current_frames`, folding each into a
``module:function;module:function;...`` collapsed stack (flamegraph
input format).  Sampling — rather than ``sys.setprofile`` event
tracing — is the right trade for a serving process: a tracer taxes
*every* call in every request (blowing the ≤2% instrumentation-overhead
budget by orders of magnitude), while a 97 Hz sampler costs a bounded
~100 stack walks per second regardless of load and still attributes
wall time to the engine kernels that dominate a batch.

Opt-in via ``ttm-cas serve --profile-hz N [--profile-out FILE]``; the
collapsed output feeds any flamegraph renderer, and
:meth:`SamplingProfiler.hotspots` gives a quick in-repo leaf
attribution (which kernel frames the samples landed in).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler"]

#: Default sample rate: prime, so it can't phase-lock with periodic
#: work like the batcher's flush timer.
DEFAULT_HZ = 97.0


class SamplingProfiler:
    """Thread-sampling wall-time profiler with collapsed-stack export."""

    def __init__(self, hz: float = DEFAULT_HZ, max_depth: int = 64) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.interval_s = 1.0 / float(hz)
        self.max_depth = int(max_depth)
        self.samples = 0
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self.sample_once(skip_thread=own_id)

    def sample_once(self, skip_thread: Optional[int] = None) -> int:
        """Take one sample of every live thread (the profiler thread
        itself excluded); public for deterministic tests."""
        taken = 0
        frames = sys._current_frames()
        for thread_id, frame in frames.items():
            if thread_id == skip_thread:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                module = frame.f_globals.get("__name__", "?")
                stack.append(f"{module}:{code.co_name}")
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()  # root-first, flamegraph order
            key = tuple(stack)
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
                self.samples += 1
            taken += 1
        return taken

    # -- export --------------------------------------------------------------

    def counts(self) -> Dict[Tuple[str, ...], int]:
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """Brendan-Gregg collapsed stacks: ``a;b;c count`` per line,
        heaviest first."""
        items = sorted(
            self.counts().items(), key=lambda kv: (-kv[1], kv[0])
        )
        return "\n".join(f"{';'.join(stack)} {count}" for stack, count in items)

    def write_collapsed(self, path: str) -> None:
        text = self.collapsed()
        with open(path, "w") as handle:
            handle.write(text + ("\n" if text else ""))

    def hotspots(
        self, prefix: str = "repro.", limit: int = 10
    ) -> List[Tuple[str, int]]:
        """Leaf attribution: for each sample, the *deepest* frame whose
        module matches ``prefix`` gets the tick — under serve load this
        surfaces the engine kernels where wall time actually lands."""
        leaves: Dict[str, int] = {}
        for stack, count in self.counts().items():
            for frame in reversed(stack):
                if frame.startswith(prefix):
                    leaves[frame] = leaves.get(frame, 0) + count
                    break
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[: max(0, limit)]


def _profile_smoke(duration_s: float = 0.2) -> str:  # pragma: no cover
    """Tiny self-check harness (manual): profile a spin loop."""
    profiler = SamplingProfiler(hz=200.0).start()
    deadline = time.monotonic() + duration_s
    while time.monotonic() < deadline:
        sum(i * i for i in range(1000))
    profiler.stop()
    return profiler.collapsed()
