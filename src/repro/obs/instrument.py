"""Instrumentation hooks the engine and montecarlo layers call.

This module is the only obs surface the hot paths touch. It pre-registers
the standard instrument set on the process-wide registry (so a metrics
dump always shows the full set, fired or not) and exposes:

* :func:`observed_kernel` — a decorator counting kernel invocations and
  element throughput (labelled by the active engine backend), and
  spanning the call when a tracer is installed;
* :func:`set_backend_label_provider` — how :mod:`repro.engine.compiled`
  tells this module which backend label to stamp on kernel metrics,
  without the hot wrapper importing any engine module;
* :func:`record_shm` — shared-memory publish/attach/fallback counters
  for the zero-copy process workers;
* :func:`record_fallback` — the ``parallel_map`` degradation counter;
* :func:`guard_trip` — non-finite guard trips (Sobol, metric summaries);
* :func:`cache_counters` — the invariant-LRU hit/miss/eviction counters
  (the public home of what used to be private module ints);
* :func:`disabled` — a context manager switching every hook to a pure
  pass-through, used by ``scripts/bench_engine.py --check`` to measure
  that the default (no-tracer) instrumentation overhead stays within
  its 2% budget.

Overhead contract: with no tracer installed the per-call cost is one
module-global check, one counter lookup and two locked float adds —
nanoseconds against kernels that do milliseconds of array math. With
:func:`disabled` active it is one check and the undecorated call.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Optional, Tuple, TypeVar

from . import trace
from .metrics import Counter, Gauge, get_registry

F = TypeVar("F", bound=Callable[..., Any])

#: Master switch; flipping it off makes every hook a pass-through.
_ENABLED = True


def enabled() -> bool:
    """Whether instrumentation hooks are live (see :func:`disabled`)."""
    return _ENABLED


@contextmanager
def disabled():
    """Temporarily bypass every hook (for overhead measurement)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


_registry = get_registry()

#: Invariant-LRU counters, promoted from the cache's private ints.
CACHE_HITS = _registry.counter(
    "invariant_cache_hits_total", "Invariant-LRU lookups served from cache"
)
CACHE_MISSES = _registry.counter(
    "invariant_cache_misses_total", "Invariant-LRU lookups that recomputed"
)
CACHE_EVICTIONS = _registry.counter(
    "invariant_cache_evictions_total",
    "Entries dropped by the invariant-LRU size bound",
)
CACHE_ENTRIES = _registry.gauge(
    "invariant_cache_entries", "Entries currently held by the invariant LRU"
)

KERNEL_INVOCATIONS = _registry.counter(
    "engine_kernel_invocations_total",
    "Vectorized kernel calls, labelled by kernel",
)
KERNEL_ELEMENTS = _registry.counter(
    "engine_kernel_elements_total",
    "Result elements produced by vectorized kernels, labelled by kernel",
)

EXECUTOR_FALLBACKS = _registry.counter(
    "executor_fallback_total",
    "parallel_map degradations, labelled by requested/chosen executor",
)

GUARD_TRIPS = _registry.counter(
    "nonfinite_guard_trips_total",
    "NaN/inf guard rejections, labelled by guard site",
)

SHM_SEGMENTS = _registry.counter(
    "engine_shm_segments_total",
    "Shared-memory tensor events, labelled by event "
    "(publish/attach/fallback)",
)
SHM_BYTES = _registry.counter(
    "engine_shm_bytes_total",
    "Bytes published into shared-memory tensor segments",
)


#: The ``serve_*`` family: the repro.serve request/batcher instruments.
#: Pre-registered like everything else so ``/metrics`` always exposes
#: the full family, traffic or not. The coalesce ratio is derivable as
#: ``serve_batched_requests_total / serve_batches_total``.
SERVE_REQUESTS = _registry.counter(
    "serve_requests_total",
    "HTTP requests handled, labelled by endpoint and status code",
)
SERVE_REQUEST_SECONDS = _registry.histogram(
    "serve_request_seconds",
    "End-to-end request latency (admission to response), by endpoint",
    buckets=(
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
        0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    ),
)
SERVE_QUEUE_DEPTH = _registry.gauge(
    "serve_queue_depth",
    "Requests admitted by the batcher and not yet completed",
)
SERVE_BATCHES = _registry.counter(
    "serve_batches_total",
    "Fused batch executions, labelled by endpoint",
)
SERVE_BATCHED_REQUESTS = _registry.counter(
    "serve_batched_requests_total",
    "Requests carried by fused batches, labelled by endpoint",
)
SERVE_BATCH_SIZE = _registry.histogram(
    "serve_batch_size",
    "Requests coalesced per fused batch, labelled by endpoint",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
)
SERVE_BATCH_FILL = _registry.histogram(
    "serve_batch_fill",
    "Fraction of max_batch each fused batch filled, labelled by "
    "endpoint (mass near the lowest buckets means the window closes "
    "before company arrives; mass at 1.0 means max_batch caps fusion)",
    buckets=(0.0625, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0),
)
SERVE_REJECTED = _registry.counter(
    "serve_rejected_total",
    "Requests refused before evaluation, labelled by reason "
    "(queue_full/deadline/draining)",
)
SERVE_ROUTED = _registry.counter(
    "serve_routed_total",
    "Requests the shard router forwarded, labelled by worker slot",
)
SERVE_WORKERS_ALIVE = _registry.gauge(
    "serve_workers_alive",
    "Shard worker processes currently alive (supervisor view)",
)
SERVE_WORKER_RESPAWNS = _registry.counter(
    "serve_worker_respawns_total",
    "Dead shard workers replaced by the supervisor, labelled by worker",
)

SERVE_SLO_ERROR_BURN = _registry.gauge(
    "serve_slo_error_burn_rate",
    "Sliding-window error burn rate per endpoint (>1 = out of budget)",
)

SERVE_SLO_LATENCY_BURN = _registry.gauge(
    "serve_slo_latency_burn_rate",
    "Sliding-window latency burn rate per endpoint (>1 = out of budget)",
)

SERVE_SLO_OK = _registry.gauge(
    "serve_slo_ok",
    "1 when the endpoint is inside both SLO budgets, else 0",
)


def _default_backend_label() -> str:
    return "numpy"


#: Callable returning the active engine-backend label for kernel
#: metrics. Overridden by repro.engine.compiled at import; the default
#: keeps this module importable (and correct) without the engine.
_BACKEND_LABEL_PROVIDER: Callable[[], str] = _default_backend_label


def set_backend_label_provider(provider: Callable[[], str]) -> None:
    """Install the callable that names the active engine backend."""
    global _BACKEND_LABEL_PROVIDER
    _BACKEND_LABEL_PROVIDER = provider


def backend_label() -> str:
    """The active engine-backend label (request logs tag records with it)."""
    return _BACKEND_LABEL_PROVIDER()


def cache_counters() -> Tuple[Counter, Counter, Counter, Gauge]:
    """The (hits, misses, evictions, entries) cache instruments."""
    return CACHE_HITS, CACHE_MISSES, CACHE_EVICTIONS, CACHE_ENTRIES


def record_kernel(kernel: str, elements: int) -> None:
    """Count one kernel invocation producing ``elements`` result cells."""
    if not _ENABLED:
        return
    backend = _BACKEND_LABEL_PROVIDER()
    KERNEL_INVOCATIONS.inc(backend=backend, kernel=kernel)
    KERNEL_ELEMENTS.inc(float(elements), backend=backend, kernel=kernel)


def record_shm(event: str, nbytes: int = 0) -> None:
    """Count one shared-memory event (``publish``/``attach``/``fallback``).

    ``nbytes`` (publish only) feeds the published-bytes counter.
    """
    if not _ENABLED:
        return
    SHM_SEGMENTS.inc(event=event)
    if nbytes:
        SHM_BYTES.inc(float(nbytes))


def record_fallback(requested: str, chosen: str) -> None:
    """Count one executor degradation (requested -> chosen)."""
    if not _ENABLED:
        return
    EXECUTOR_FALLBACKS.inc(requested=requested, chosen=chosen)


def record_request(endpoint: str, status: int, seconds: float) -> None:
    """Count one finished HTTP request and observe its latency."""
    if not _ENABLED:
        return
    SERVE_REQUESTS.inc(endpoint=endpoint, status=str(status))
    SERVE_REQUEST_SECONDS.observe(float(seconds), endpoint=endpoint)


def record_batch(
    endpoint: str, size: int, max_batch: Optional[int] = None
) -> None:
    """Count one fused batch execution of ``size`` coalesced requests.

    When ``max_batch`` is given, also observes the batch *fill ratio*
    (``size / max_batch``) — the signal for tuning the coalescing
    window: ratios stuck near ``1/max_batch`` say the window closes
    too early to collect company, ratios pinned at 1.0 say
    ``max_batch`` is the binding constraint.
    """
    if not _ENABLED:
        return
    SERVE_BATCHES.inc(endpoint=endpoint)
    SERVE_BATCHED_REQUESTS.inc(float(size), endpoint=endpoint)
    SERVE_BATCH_SIZE.observe(float(size), endpoint=endpoint)
    if max_batch is not None and max_batch > 0:
        SERVE_BATCH_FILL.observe(
            float(size) / float(max_batch), endpoint=endpoint
        )


def record_rejection(reason: str) -> None:
    """Count one admission-control rejection (``reason`` names why)."""
    if not _ENABLED:
        return
    SERVE_REJECTED.inc(reason=reason)


def record_route(worker: int) -> None:
    """Count one request the shard router forwarded to ``worker``."""
    if not _ENABLED:
        return
    SERVE_ROUTED.inc(worker=str(worker))


def record_respawn(worker: int) -> None:
    """Count one dead worker the supervisor replaced."""
    if not _ENABLED:
        return
    SERVE_WORKER_RESPAWNS.inc(worker=str(worker))


def set_workers_alive(count: int) -> None:
    """Publish the supervisor's live-worker gauge."""
    if not _ENABLED:
        return
    SERVE_WORKERS_ALIVE.set(float(count))


def record_slo(
    endpoint: str, error_burn: float, latency_burn: float, ok: bool
) -> None:
    """Publish one endpoint's SLO burn rates (refreshed at scrape time
    by :meth:`repro.obs.slo.SLOTracker.publish`, never per-request)."""
    if not _ENABLED:
        return
    SERVE_SLO_ERROR_BURN.set(float(error_burn), endpoint=endpoint)
    SERVE_SLO_LATENCY_BURN.set(float(latency_burn), endpoint=endpoint)
    SERVE_SLO_OK.set(1.0 if ok else 0.0, endpoint=endpoint)


def set_queue_depth(depth: int) -> None:
    """Publish the batcher's admitted-but-uncompleted request count."""
    if not _ENABLED:
        return
    SERVE_QUEUE_DEPTH.set(float(depth))


def guard_trip(guard: str) -> None:
    """Count one non-finite guard rejection at ``guard``."""
    if not _ENABLED:
        return
    GUARD_TRIPS.inc(guard=guard)


def observed_kernel(kernel: str, elements: Callable[[Any], int]):
    """Decorate a batch kernel with invocation/throughput accounting.

    ``elements`` maps the kernel's result to its element count (e.g.
    ``lambda r: r.total_weeks.size``). With a tracer installed the call
    also runs under a span named after the kernel, with the element
    count and result shape attached; with no tracer the only cost is
    the two counter adds (and with :func:`disabled`, nothing at all).
    """

    def decorate(function: F) -> F:
        # Label keys are cached per backend label (a process sees at
        # most a couple), so the no-tracer fast path stays a global
        # check, one provider call, one small-dict lookup, and two dict
        # updates under one shared lock (the registry's). The key tuple
        # is pre-sorted to match Counter._label_key's sorted order.
        name = str(kernel)
        keys: dict = {}
        lock = KERNEL_INVOCATIONS._lock
        invocations = KERNEL_INVOCATIONS._values
        element_totals = KERNEL_ELEMENTS._values

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return function(*args, **kwargs)
            backend = _BACKEND_LABEL_PROVIDER()
            key = keys.get(backend)
            if key is None:
                key = (("backend", backend), ("kernel", name))
                keys[backend] = key
            tracer = trace._INSTALLED
            if tracer is None:
                result = function(*args, **kwargs)
                count = float(elements(result))
                with lock:
                    invocations[key] = invocations.get(key, 0.0) + 1.0
                    element_totals[key] = (
                        element_totals.get(key, 0.0) + count
                    )
                return result
            with tracer.span(kernel) as active:
                result = function(*args, **kwargs)
                count = float(elements(result))
                active.set("elements", int(count))
                active.set("backend", backend)
            KERNEL_INVOCATIONS._inc_key(key)
            KERNEL_ELEMENTS._inc_key(key, count)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


__all__ = [
    "CACHE_ENTRIES",
    "CACHE_EVICTIONS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "EXECUTOR_FALLBACKS",
    "GUARD_TRIPS",
    "KERNEL_ELEMENTS",
    "KERNEL_INVOCATIONS",
    "SERVE_BATCHED_REQUESTS",
    "SERVE_BATCHES",
    "SERVE_BATCH_SIZE",
    "SERVE_QUEUE_DEPTH",
    "SERVE_REJECTED",
    "SERVE_REQUESTS",
    "SERVE_REQUEST_SECONDS",
    "SERVE_ROUTED",
    "SERVE_SLO_ERROR_BURN",
    "SERVE_SLO_LATENCY_BURN",
    "SERVE_SLO_OK",
    "SERVE_WORKERS_ALIVE",
    "SERVE_WORKER_RESPAWNS",
    "SHM_BYTES",
    "SHM_SEGMENTS",
    "backend_label",
    "cache_counters",
    "disabled",
    "enabled",
    "guard_trip",
    "observed_kernel",
    "record_batch",
    "record_fallback",
    "record_kernel",
    "record_rejection",
    "record_request",
    "record_respawn",
    "record_route",
    "record_shm",
    "record_slo",
    "set_backend_label_provider",
    "set_queue_depth",
    "set_workers_alive",
]
