"""Declarative SLOs with sliding-window burn rates for the serve stack.

An :class:`SLObjective` states, per endpoint, what "good" means:
a latency threshold that some fraction of requests must beat, and a
tolerated server-error fraction.  The :class:`SLOTracker` keeps a
sliding window of observations (endpoint, status, latency) and turns
them into *burn rates* — the observed bad fraction divided by the
error budget, the standard Google-SRE framing:

* burn < 1  — inside budget; sustaining this forever is fine;
* burn = 1  — spending the budget exactly as fast as it accrues;
* burn > 1  — out of budget if sustained; alertable.

The tracker is embedded in :class:`~repro.serve.server.EvalServer`
(per-worker view) and in the shard router (end-to-end view); gauges are
refreshed into the metrics registry at ``/metrics`` scrape time and the
live snapshot feeds ``GET /debug/obs`` and ``ttm-cas obs slo``.

Error definition: HTTP 5xx only.  4xx are the caller's fault (bad
JSON, over-limit bodies) and must not burn the operator's budget —
except 429/503, which *are* the server refusing work, but those are
capacity signals tracked separately by ``serve_rejected_total``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, Optional, Tuple

from . import instrument

__all__ = [
    "DEFAULT_OBJECTIVES",
    "SLOTracker",
    "SLObjective",
    "report_from_records",
]


@dataclass(frozen=True)
class SLObjective:
    """``latency_objective`` of requests under ``latency_ms``; at most
    ``error_objective`` of requests may be server errors."""

    endpoint: str
    latency_ms: float
    latency_objective: float = 0.99
    error_objective: float = 0.01

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        for name in ("latency_objective", "error_objective"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1)")


#: Per-endpoint defaults scaled to each workload's weight: a point
#: evaluation is interactive; an MC ensemble or a scenario cube is not.
DEFAULT_OBJECTIVES: Tuple[SLObjective, ...] = (
    SLObjective("evaluate", latency_ms=500.0),
    SLObjective("mc", latency_ms=5_000.0),
    SLObjective("splits", latency_ms=30_000.0),
    SLObjective("scenarios", latency_ms=30_000.0),
)

_FALLBACK = SLObjective("default", latency_ms=1_000.0)


def _objective_map(
    objectives: Iterable[SLObjective],
) -> Dict[str, SLObjective]:
    return {o.endpoint: o for o in objectives}


def _burn(bad: int, total: int, budget: float) -> float:
    if total <= 0:
        return 0.0
    return (bad / total) / budget


def _status_entry(
    objective: SLObjective,
    total: int,
    errors: int,
    slow: int,
    window_s: float,
) -> Dict[str, Any]:
    error_burn = _burn(errors, total, objective.error_objective)
    latency_burn = _burn(slow, total, 1.0 - objective.latency_objective)
    return {
        "window_s": window_s,
        "requests": total,
        "errors": errors,
        "slow": slow,
        "latency_ms": objective.latency_ms,
        "latency_objective": objective.latency_objective,
        "error_objective": objective.error_objective,
        "error_burn_rate": round(error_burn, 6),
        "latency_burn_rate": round(latency_burn, 6),
        "ok": error_burn <= 1.0 and latency_burn <= 1.0,
    }


class SLOTracker:
    """Sliding-window SLO accounting; thread-safe, O(1) per request."""

    def __init__(
        self,
        objectives: Iterable[SLObjective] = DEFAULT_OBJECTIVES,
        window_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.objectives = _objective_map(objectives)
        self.window_s = float(window_s)
        self._clock = clock
        self._lock = threading.Lock()
        # (t, endpoint, is_error, is_slow)
        self._events: Deque[Tuple[float, str, bool, bool]] = deque()

    def objective_for(self, endpoint: str) -> SLObjective:
        return self.objectives.get(endpoint, _FALLBACK)

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        objective = self.objective_for(endpoint)
        is_error = status >= 500
        is_slow = (seconds * 1000.0) > objective.latency_ms
        now = self._clock()
        with self._lock:
            self._events.append((now, endpoint, is_error, is_slow))
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        events = self._events
        while events and events[0][0] < horizon:
            events.popleft()

    def status(self) -> Dict[str, Dict[str, Any]]:
        """Per-endpoint burn rates over the live window."""
        with self._lock:
            self._prune(self._clock())
            events = list(self._events)
        totals: Dict[str, list] = {}
        for _, endpoint, is_error, is_slow in events:
            entry = totals.setdefault(endpoint, [0, 0, 0])
            entry[0] += 1
            entry[1] += int(is_error)
            entry[2] += int(is_slow)
        return {
            endpoint: _status_entry(
                self.objective_for(endpoint), total, errors, slow, self.window_s
            )
            for endpoint, (total, errors, slow) in sorted(totals.items())
        }

    def publish(self) -> None:
        """Refresh the ``serve_slo_*`` gauges (called at scrape time so
        idle servers cost nothing between scrapes)."""
        for endpoint, entry in self.status().items():
            instrument.record_slo(
                endpoint,
                error_burn=entry["error_burn_rate"],
                latency_burn=entry["latency_burn_rate"],
                ok=entry["ok"],
            )


def report_from_records(
    records: Iterable[Dict[str, Any]],
    objectives: Iterable[SLObjective] = DEFAULT_OBJECTIVES,
    window_s: Optional[float] = None,
) -> Dict[str, Dict[str, Any]]:
    """Offline SLO report from request-log records (``ttm-cas obs slo``).

    ``window_s`` restricts to the trailing window ending at the newest
    record's timestamp; ``None`` scores the whole file.
    """
    objective_map = _objective_map(objectives)
    records = [r for r in records if "endpoint" in r and "status" in r]
    if window_s is not None and records:
        newest = max(r.get("ts_unix_ns", 0) for r in records)
        horizon = newest - window_s * 1e9
        records = [r for r in records if r.get("ts_unix_ns", 0) >= horizon]
    totals: Dict[str, list] = {}
    for record in records:
        endpoint = str(record["endpoint"])
        objective = objective_map.get(endpoint, _FALLBACK)
        try:
            status = int(record["status"])
        except (TypeError, ValueError):
            continue
        latency_ms = float(record.get("latency_ms") or 0.0)
        entry = totals.setdefault(endpoint, [0, 0, 0])
        entry[0] += 1
        entry[1] += int(status >= 500)
        entry[2] += int(latency_ms > objective.latency_ms)
    span = window_s if window_s is not None else 0.0
    return {
        endpoint: _status_entry(
            objective_map.get(endpoint, _FALLBACK), total, errors, slow, span
        )
        for endpoint, (total, errors, slow) in sorted(totals.items())
    }
