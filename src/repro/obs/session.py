"""One CLI invocation's observability session.

:class:`ObsSession` bundles the three export surfaces the CLI offers
(``--trace FILE``, ``--metrics FILE``, ``--manifest-dir DIR``) into one
context manager: entering installs a tracer when a trace was requested
and clears the invariant cache (so recorded metrics are run-intrinsic —
a cold start makes two identical seeded invocations produce identical
manifests); exiting writes the Chrome-trace file and the
Prometheus-text metrics dump.

Per-run manifests are captured with :meth:`ObsSession.run_manifest`,
which snapshots the metrics registry around the run, diffs it, digests
the result, and writes ``<dir>/<key>.manifest.json``. With no obs flag
set the session is inert and costs nothing.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Mapping, Optional

from .manifest import (
    RunManifest,
    environment_fingerprint,
    git_revision,
    result_digest,
)
from .metrics import get_registry, metrics_delta
from .trace import Tracer, install_tracer, uninstall_tracer


class ManifestSink:
    """Collects what the run wants recorded (result, seeds, config)."""

    def __init__(self) -> None:
        self.result: Any = None
        self.seeds: Dict[str, int] = {}
        self.config: Dict[str, Any] = {}
        self.path: Optional[str] = None
        self.manifest: Optional[RunManifest] = None

    def set_result(self, result: Any) -> None:
        """The run's result object (digested into the manifest)."""
        self.result = result

    def add_seeds(self, seeds: Mapping[str, int]) -> None:
        self.seeds.update(seeds)

    def add_config(self, config: Mapping[str, Any]) -> None:
        self.config.update(config)


class ObsSession:
    """See the module docstring. Inert unless an obs flag was given."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        manifest_dir: Optional[str] = None,
    ) -> None:
        self.trace_path = trace_path or None
        self.metrics_path = metrics_path or None
        self.manifest_dir = manifest_dir or None
        self.tracer: Optional[Tracer] = None

    @classmethod
    def from_args(cls, args: Any) -> "ObsSession":
        """Build from an argparse namespace (missing attrs = off)."""
        return cls(
            trace_path=getattr(args, "trace", None),
            metrics_path=getattr(args, "metrics", None),
            manifest_dir=getattr(args, "manifest_dir", None),
        )

    @property
    def active(self) -> bool:
        return bool(self.trace_path or self.metrics_path or self.manifest_dir)

    def __enter__(self) -> "ObsSession":
        if not self.active:
            return self
        # Start cold so the metrics a run records describe the run, not
        # whatever this process happened to have cached beforehand.
        from ..engine.invariants import clear_invariant_cache

        clear_invariant_cache()
        if self.trace_path:
            self.tracer = install_tracer()
        if self.manifest_dir:
            os.makedirs(self.manifest_dir, exist_ok=True)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.tracer is not None:
            uninstall_tracer()
            self.tracer.write_chrome_trace(self.trace_path)
        if self.metrics_path:
            # A .json target gets the structured export (histogram
            # series with estimated p50/p95/p99); anything else gets
            # classic Prometheus text.
            if self.metrics_path.endswith(".json"):
                with open(self.metrics_path, "w", encoding="utf-8") as f:
                    f.write(get_registry().to_json() + "\n")
            else:
                get_registry().write_prometheus(self.metrics_path)
        return False

    @contextmanager
    def run_manifest(
        self,
        kind: str,
        key: str,
        config: Optional[Mapping[str, Any]] = None,
        seeds: Optional[Mapping[str, int]] = None,
    ):
        """Capture one run: yields a :class:`ManifestSink`, writes on exit.

        With no ``--manifest-dir`` the sink is still yielded (callers
        need not branch) but nothing is captured or written.
        """
        sink = ManifestSink()
        if config:
            sink.add_config(config)
        if seeds:
            sink.add_seeds(seeds)
        if not self.manifest_dir:
            yield sink
            return
        registry = get_registry()
        before = registry.snapshot()
        created = time.time()
        start = time.perf_counter()
        yield sink
        duration = time.perf_counter() - start
        manifest = RunManifest(
            kind=kind,
            key=key,
            created_unix=created,
            duration_seconds=duration,
            config=sink.config,
            seeds=sink.seeds,
            metrics=metrics_delta(before, registry.snapshot()),
            environment=environment_fingerprint(),
            git_sha=git_revision(),
            result_digest=(
                result_digest(sink.result)
                if sink.result is not None
                else None
            ),
        )
        sink.manifest = manifest
        sink.path = os.path.join(self.manifest_dir, f"{key}.manifest.json")
        manifest.write(sink.path)


__all__ = ["ManifestSink", "ObsSession"]
