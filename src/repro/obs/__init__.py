"""Observability: tracing, metrics, and run manifests (zero-dependency).

The engine stack (batch/split/portfolio kernels, the invariant LRU,
``parallel_map``, the Monte Carlo studies) is the hot path for every
figure and study; this package makes it inspectable without slowing it
down:

* :mod:`repro.obs.trace` — a :class:`Tracer` of nested spans (wall/CPU
  time, attributes, correct parents across ``parallel_map`` thread and
  process workers), exportable as JSON and as a Chrome-trace file that
  ``chrome://tracing`` / Perfetto load directly. No-op until
  :func:`install_tracer` is called.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters/gauges/histograms (invariant-cache hits/misses/evictions,
  kernel invocations and element throughput, executor fallbacks,
  non-finite guard trips) with Prometheus-text and JSON exporters.
* :mod:`repro.obs.manifest` — :class:`RunManifest`: per-run provenance
  (git SHA, config, seeds, factor specs, duration, metrics delta,
  result digest) written alongside outputs; identically-seeded runs
  reproduce the digest bit-for-bit.
* :mod:`repro.obs.instrument` — the hooks the engine layers call;
  compiled down to a module-global check when uninstrumented (the
  ``bench_engine.py --check`` guard pins the overhead at <= 2%).
* :mod:`repro.obs.session` — :class:`ObsSession`, the CLI glue behind
  ``--trace`` / ``--metrics`` / ``--manifest-dir`` and ``ttm-cas obs``.
* :mod:`repro.obs.distributed` — the ``traceparent``-style
  :class:`TraceContext` propagated over the serve stack's
  router→worker hop, plus :func:`stitch_trace`, which reassembles one
  request's spans across router, worker, batch, and engine kernels.
* :mod:`repro.obs.log` — :class:`RequestLogger`, the JSON-lines
  structured request log (``ttm-cas obs tail``).
* :mod:`repro.obs.slo` — declarative latency/error objectives with
  sliding-window burn rates (``/debug/obs``, ``ttm-cas obs slo``).
* :mod:`repro.obs.profile` — :class:`SamplingProfiler`, the stdlib
  thread-sampling wall-time profiler behind ``serve --profile-hz``.

Quickstart::

    from repro.obs import install_tracer, uninstall_tracer, get_registry

    tracer = install_tracer()
    ...  # run sweeps / studies
    uninstall_tracer()
    tracer.write_chrome_trace("trace.json")   # load in chrome://tracing
    print(get_registry().to_prometheus_text())
"""

from .distributed import (
    TraceContext,
    mint_request_id,
    mint_trace_context,
    parse_traceparent,
    stitch_trace,
)
from .instrument import disabled, observed_kernel
from .log import LOG_SCHEMA, RequestLogger, read_request_log
from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    TIMING_FIELDS,
    environment_fingerprint,
    git_revision,
    result_digest,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    METRICS_SCHEMA,
    MetricsRegistry,
    estimate_quantile,
    get_registry,
    histogram_quantiles_from_text,
    metrics_delta,
)
from .profile import SamplingProfiler
from .session import ManifestSink, ObsSession
from .slo import DEFAULT_OBJECTIVES, SLObjective, SLOTracker
from .trace import (
    SpanRecord,
    TRACE_SCHEMA,
    Tracer,
    chrome_trace_from_spans,
    current_tracer,
    install_tracer,
    span,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_OBJECTIVES",
    "Gauge",
    "Histogram",
    "LOG_SCHEMA",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "ManifestSink",
    "MetricsRegistry",
    "ObsSession",
    "RequestLogger",
    "RunManifest",
    "SLOTracker",
    "SLObjective",
    "SamplingProfiler",
    "SpanRecord",
    "TIMING_FIELDS",
    "TRACE_SCHEMA",
    "TraceContext",
    "Tracer",
    "chrome_trace_from_spans",
    "current_tracer",
    "disabled",
    "environment_fingerprint",
    "estimate_quantile",
    "get_registry",
    "git_revision",
    "histogram_quantiles_from_text",
    "install_tracer",
    "metrics_delta",
    "mint_request_id",
    "mint_trace_context",
    "observed_kernel",
    "parse_traceparent",
    "read_request_log",
    "result_digest",
    "span",
    "stitch_trace",
    "uninstall_tracer",
]
