"""Observability: tracing, metrics, and run manifests (zero-dependency).

The engine stack (batch/split/portfolio kernels, the invariant LRU,
``parallel_map``, the Monte Carlo studies) is the hot path for every
figure and study; this package makes it inspectable without slowing it
down:

* :mod:`repro.obs.trace` — a :class:`Tracer` of nested spans (wall/CPU
  time, attributes, correct parents across ``parallel_map`` thread and
  process workers), exportable as JSON and as a Chrome-trace file that
  ``chrome://tracing`` / Perfetto load directly. No-op until
  :func:`install_tracer` is called.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters/gauges/histograms (invariant-cache hits/misses/evictions,
  kernel invocations and element throughput, executor fallbacks,
  non-finite guard trips) with Prometheus-text and JSON exporters.
* :mod:`repro.obs.manifest` — :class:`RunManifest`: per-run provenance
  (git SHA, config, seeds, factor specs, duration, metrics delta,
  result digest) written alongside outputs; identically-seeded runs
  reproduce the digest bit-for-bit.
* :mod:`repro.obs.instrument` — the hooks the engine layers call;
  compiled down to a module-global check when uninstrumented (the
  ``bench_engine.py --check`` guard pins the overhead at <= 2%).
* :mod:`repro.obs.session` — :class:`ObsSession`, the CLI glue behind
  ``--trace`` / ``--metrics`` / ``--manifest-dir`` and ``ttm-cas obs``.

Quickstart::

    from repro.obs import install_tracer, uninstall_tracer, get_registry

    tracer = install_tracer()
    ...  # run sweeps / studies
    uninstall_tracer()
    tracer.write_chrome_trace("trace.json")   # load in chrome://tracing
    print(get_registry().to_prometheus_text())
"""

from .instrument import disabled, observed_kernel
from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    TIMING_FIELDS,
    environment_fingerprint,
    git_revision,
    result_digest,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    METRICS_SCHEMA,
    MetricsRegistry,
    get_registry,
    metrics_delta,
)
from .session import ManifestSink, ObsSession
from .trace import (
    SpanRecord,
    TRACE_SCHEMA,
    Tracer,
    current_tracer,
    install_tracer,
    span,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "ManifestSink",
    "MetricsRegistry",
    "ObsSession",
    "RunManifest",
    "SpanRecord",
    "TIMING_FIELDS",
    "TRACE_SCHEMA",
    "Tracer",
    "current_tracer",
    "disabled",
    "environment_fingerprint",
    "get_registry",
    "git_revision",
    "install_tracer",
    "metrics_delta",
    "observed_kernel",
    "result_digest",
    "span",
    "uninstall_tracer",
]
